//! The plan validator: proves partition soundness before a job runs.
//!
//! Given a fitted [`SpacePartitioner`] plus the runtime configuration it
//! will execute under, [`audit_plan`] emits structured diagnostics for
//! every soundness or sanity violation it can find *statically* — i.e.
//! without touching the dataset:
//!
//! - **interval reasoning** over the partitioner's [`BoundaryProfile`]:
//!   boundaries must be strictly monotonic and interior to their domain
//!   (`MRA003`, `MRA004`, `MRA010`), and the implied cell lattice must
//!   agree with the partitioner's own partition count without overflowing
//!   `usize` (`MRA005`);
//! - **exhaustive probing of the boundary lattice**: probe points are
//!   constructed on sector edges, on the `±ε` shoulders of every boundary,
//!   at interval midpoints, at domain corners, and outside the fitted
//!   domain, and the observed assignment is compared against an
//!   independently computed prediction from the profile (`MRA001`,
//!   `MRA002`, `MRA009`). For angular schemes the probes are built in
//!   angle space and pushed through the inverse hyperspherical transform,
//!   which also lets the audit verify radius invariance;
//! - **pruning conservativeness**: the dominance-based cell-pruning mask
//!   is re-derived geometrically from cell corners and any cell the
//!   partitioner would prune without a geometric dominator is flagged
//!   (`MRA006`, `MRA012`);
//! - **runtime cross-checks**: reducers vs partitions, cluster slot
//!   capacity, speculation thresholds, cost-model finiteness, reduce-wave
//!   explosion (`MRA007`, `MRA008`, `MRA011`).

use crate::diag::{AuditReport, Code, Diagnostic, Severity};
use mini_mapreduce::{ClusterConfig, CostModel, SpeculationConfig};
use skyline_algos::hypersphere::{to_cartesian, HyperPoint};
use skyline_algos::partition::{AxisProfile, BoundaryProfile, Bounds, PartitionSpace};
use skyline_algos::point::Point;
use skyline_algos::SpacePartitioner;

/// Everything the validator needs to know about a planned run.
pub struct PlanSpec<'a> {
    /// The fitted partition function job 1 will use.
    pub partitioner: &'a dyn SpacePartitioner,
    /// The data bounds the partitioner was fitted on.
    pub bounds: &'a Bounds,
    /// The simulated cluster the job runs on.
    pub cluster: &'a ClusterConfig,
    /// Straggler-speculation settings.
    pub speculation: &'a SpeculationConfig,
    /// The calibrated cost model.
    pub cost: &'a CostModel,
    /// Reducer count for job 1 (the pipeline uses one per partition).
    pub reducers_job1: usize,
    /// Whether MR-Grid dominance-based cell pruning is requested.
    pub grid_pruning: bool,
    /// Resolved filter-point broadcast size for this run (`0` = map-side
    /// filtering off).
    pub filter_k: usize,
    /// Whether sector-witness partition pruning is requested.
    pub sector_prune: bool,
    /// Host threads driving the simulation.
    pub threads: usize,
}

/// Hard cap on lattice probe combinations; beyond it the combinations are
/// deterministically subsampled (and the report says so via `probes`).
const PROBE_CAP: usize = 4096;
/// Cap on per-partition reachability probes.
const REACH_CAP: usize = 4096;
/// Cap on repeated diagnostics per code before summarising.
const EMIT_CAP: usize = 5;
/// Angular probes are kept this far from both hypersphere poles: at angle 0
/// the inverse transform collapses every later angle to 0, and at pi/2 the
/// cos factor underflows beneath the origin's ulp after translation into
/// data space — exact-pole probes cannot round-trip.
const ANGULAR_POLE_MARGIN: f64 = 1e-4;

/// Runs every check against `spec` and returns the findings.
pub fn audit_plan(spec: &PlanSpec<'_>) -> AuditReport {
    let mut report = AuditReport {
        scheme: spec.partitioner.name().to_string(),
        ..AuditReport::default()
    };
    let profile = spec.partitioner.boundary_profile();

    check_axes(&profile, &mut report);
    check_lattice(&profile, spec.partitioner, &mut report);
    check_runtime(spec, &mut report);
    check_pruning(spec, &profile, &mut report);
    check_filter(spec, &mut report);
    // Probing a lattice whose own description is inconsistent would drown
    // the report in derived mismatches; fix the profile errors first.
    if !report.has_errors() || profile.space == PartitionSpace::Opaque {
        probe_assignment(spec, &profile, &mut report);
    }
    report.sort();
    report
}

// ---------------------------------------------------------------- axes --

fn check_axes(profile: &BoundaryProfile, report: &mut AuditReport) {
    for (ai, axis) in profile.axes.iter().enumerate() {
        let subject = format!("axis {ai} (coord {})", axis.coord);
        let (lo, hi) = axis.domain;
        if !(lo.is_finite() && hi.is_finite()) || lo > hi {
            report.diagnostics.push(Diagnostic::new(
                Code::BoundaryOutsideDomain,
                Severity::Error,
                subject.clone(),
                format!("axis domain [{lo}, {hi}] is not a finite interval"),
            ));
            continue;
        }
        if lo == hi && !axis.boundaries.is_empty() {
            report.diagnostics.push(Diagnostic::new(
                Code::DegenerateAxis,
                Severity::Warning,
                subject.clone(),
                format!(
                    "domain is the single value {lo} but the axis is cut {} times",
                    axis.boundaries.len()
                ),
            ));
        }
        for (k, &b) in axis.boundaries.iter().enumerate() {
            if !b.is_finite() {
                report.diagnostics.push(Diagnostic::new(
                    Code::BoundaryOutsideDomain,
                    Severity::Error,
                    subject.clone(),
                    format!("boundary {k} is {b}"),
                ));
            } else if b < lo || b > hi {
                report.diagnostics.push(Diagnostic::new(
                    Code::BoundaryOutsideDomain,
                    Severity::Error,
                    subject.clone(),
                    format!("boundary {k} = {b} lies outside the domain [{lo}, {hi}]"),
                ));
            } else if b == lo || b == hi {
                report.diagnostics.push(Diagnostic::new(
                    Code::DegenerateAxis,
                    Severity::Warning,
                    subject.clone(),
                    format!(
                        "boundary {k} = {b} sits on the domain edge: an edge interval is empty"
                    ),
                ));
            }
        }
        for (k, w) in axis.boundaries.windows(2).enumerate() {
            if w[1] < w[0] {
                report.diagnostics.push(Diagnostic::new(
                    Code::NonMonotonicBoundaries,
                    Severity::Error,
                    subject.clone(),
                    format!(
                        "boundaries {k} and {} are out of order: {} > {}",
                        k + 1,
                        w[0],
                        w[1]
                    ),
                ));
            } else if w[1] == w[0] {
                report.diagnostics.push(Diagnostic::new(
                    Code::DegenerateAxis,
                    Severity::Warning,
                    subject.clone(),
                    format!(
                        "boundaries {k} and {} coincide at {}: the interval between them is empty",
                        k + 1,
                        w[0]
                    ),
                ));
            }
        }
    }
}

// ------------------------------------------------------------- lattice --

fn check_lattice(
    profile: &BoundaryProfile,
    partitioner: &dyn SpacePartitioner,
    report: &mut AuditReport,
) {
    let Some(implied) = profile.implied_partitions() else {
        return; // opaque: nothing to cross-check
    };
    if implied > usize::MAX as u128 {
        report.diagnostics.push(Diagnostic::new(
            Code::IndexOverflow,
            Severity::Error,
            "lattice",
            format!(
                "cell-index linearization needs {implied} cells, which overflows usize (max {})",
                usize::MAX
            ),
        ));
        return;
    }
    let actual = partitioner.num_partitions();
    if implied as usize != actual {
        report.diagnostics.push(Diagnostic::new(
            Code::IndexOverflow,
            Severity::Error,
            "lattice",
            format!(
                "boundary lattice implies {implied} partitions but the partitioner reports {actual}"
            ),
        ));
    }
}

// ------------------------------------------------------------- runtime --

fn check_runtime(spec: &PlanSpec<'_>, report: &mut AuditReport) {
    let np = spec.partitioner.num_partitions();
    if np == 0 {
        report.diagnostics.push(Diagnostic::new(
            Code::PartitionNotTotal,
            Severity::Error,
            "partitioner",
            "partitioner reports zero partitions: no point can be assigned",
        ));
    }
    if spec.reducers_job1 == 0 {
        report.diagnostics.push(Diagnostic::new(
            Code::ReducerMismatch,
            Severity::Error,
            "job 1",
            "zero reducers: the shuffle has nowhere to deliver partitions",
        ));
    } else if spec.reducers_job1 > np.max(1) {
        report.diagnostics.push(Diagnostic::new(
            Code::ReducerMismatch,
            Severity::Warning,
            "job 1",
            format!(
                "{} reducers for {np} partitions: {} reducers receive no input",
                spec.reducers_job1,
                spec.reducers_job1 - np
            ),
        ));
    }
    if let Err(problems) = spec.cluster.validate() {
        for p in problems {
            report.diagnostics.push(Diagnostic::new(
                Code::ZeroCapacityCluster,
                Severity::Error,
                "cluster",
                p,
            ));
        }
    }
    if let Err(p) = spec.speculation.validate() {
        report.diagnostics.push(Diagnostic::new(
            Code::ZeroCapacityCluster,
            Severity::Error,
            "speculation",
            p,
        ));
    }
    if let Err(problems) = spec.cost.validate() {
        for p in problems {
            report.diagnostics.push(Diagnostic::new(
                Code::ZeroCapacityCluster,
                Severity::Error,
                "cost model",
                p,
            ));
        }
    }
    if spec.threads == 0 {
        report.diagnostics.push(Diagnostic::new(
            Code::ZeroCapacityCluster,
            Severity::Error,
            "driver",
            "zero host threads: the simulation pool cannot run",
        ));
    }
    let reduce_slots = spec.cluster.reduce_slots();
    if reduce_slots > 0 && np > 4 * reduce_slots {
        report.diagnostics.push(Diagnostic::new(
            Code::ExcessPartitionWaves,
            Severity::Warning,
            "job 1",
            format!(
                "{np} partitions on {reduce_slots} reduce slots runs {} reduce waves; \
                 per-task startup will dominate (paper policy is 2 × nodes)",
                np.div_ceil(reduce_slots)
            ),
        ));
    }
}

// ------------------------------------------------------------- pruning --

/// Interval `[inf, sup)` of cell `k` on an axis, extended to ±∞ at the
/// edges because out-of-domain points clamp into the edge cells.
fn cell_interval(axis: &AxisProfile, k: usize) -> (f64, f64) {
    let inf = if k == 0 {
        f64::NEG_INFINITY
    } else {
        axis.boundaries[k - 1]
    };
    let sup = if k == axis.boundaries.len() {
        f64::INFINITY
    } else {
        axis.boundaries[k]
    };
    (inf, sup)
}

fn check_pruning(spec: &PlanSpec<'_>, profile: &BoundaryProfile, report: &mut AuditReport) {
    let np = spec.partitioner.num_partitions();
    if np == 0 {
        return;
    }
    let splits: Vec<usize> = profile.axes.iter().map(AxisProfile::intervals).collect();
    let geometric_full = profile.space == PartitionSpace::Cartesian
        && !profile.axes.is_empty()
        && profile.axes.len() == spec.partitioner.dim()
        && splits.iter().product::<usize>() == np;

    // Scenario A: every cell populated. Scenario B: only cell 0 populated —
    // checks that the mask respects emptiness, not just geometry.
    let all_ones = vec![1usize; np];
    let mut only_first = vec![0usize; np];
    only_first[0] = 1;

    for (scenario, counts) in [
        ("all cells populated", &all_ones),
        ("only cell 0 populated", &only_first),
    ] {
        let mask = spec.partitioner.prunable(counts);
        if mask.len() != np {
            report.diagnostics.push(Diagnostic::new(
                Code::UnsoundPruning,
                Severity::Error,
                "prunable()",
                format!("mask has {} entries for {np} partitions", mask.len()),
            ));
            return;
        }
        let pruned: Vec<usize> = mask
            .iter()
            .enumerate()
            .filter_map(|(i, &p)| p.then_some(i))
            .collect();
        if pruned.is_empty() {
            continue;
        }
        if !geometric_full {
            report.diagnostics.push(Diagnostic::new(
                Code::UnsoundPruning,
                Severity::Error,
                format!("scenario: {scenario}"),
                format!(
                    "partitioner prunes {} cell(s) but exposes no full-dimension Cartesian \
                     lattice to justify dominance",
                    pruned.len()
                ),
            ));
            continue;
        }
        for h in pruned {
            let h_idx = delinearize(h, &splits);
            let dominated = (0..np).any(|g| {
                if g == h || counts[g] == 0 {
                    return false;
                }
                let g_idx = delinearize(g, &splits);
                profile.axes.iter().enumerate().all(|(a, axis)| {
                    let (_, g_sup) = cell_interval(axis, g_idx[a]);
                    let (h_inf, _) = cell_interval(axis, h_idx[a]);
                    g_sup <= h_inf
                })
            });
            if !dominated {
                report.diagnostics.push(Diagnostic::new(
                    Code::UnsoundPruning,
                    Severity::Error,
                    format!("cell {h} (scenario: {scenario})"),
                    "cell is pruned but no populated cell strictly dominates its every point"
                        .to_string(),
                ));
            }
        }
    }

    if spec.grid_pruning {
        let mask = spec.partitioner.prunable(&all_ones);
        if mask.iter().all(|&p| !p) {
            report.diagnostics.push(Diagnostic::new(
                Code::PruningUnavailable,
                Severity::Warning,
                "job 1",
                format!(
                    "grid pruning requested but the `{}` fit can never prune a cell \
                     (non-grid scheme or prefix grid with unconstrained dimensions)",
                    profile.scheme
                ),
            ));
        }
    }
}

// -------------------------------------------------------------- filter --

/// Number of deterministic probe points for the filter soundness check.
const FILTER_PROBES: usize = 256;

/// `a` strictly dominates `b`: the validator's own dominance oracle,
/// deliberately independent of the kernels the pipeline runs.
fn strictly_dominates(a: &[f64], b: &[f64]) -> bool {
    let mut any_lt = false;
    for (x, y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        any_lt |= x < y;
    }
    any_lt
}

/// Dynamically proves, on a deterministic probe cloud inside the fitted
/// bounds, that the filter/witness-pruning configuration cannot drop a
/// true skyline point: no skyline probe may be dominated by a selected
/// filter point (the filter is *exact*, not approximate), and no skyline
/// probe may sit in a witness-pruned partition. Violations are `MRA013`
/// errors — they mean the run would silently return a wrong skyline.
fn check_filter(spec: &PlanSpec<'_>, report: &mut AuditReport) {
    if spec.filter_k == 0 && !spec.sector_prune {
        return;
    }
    let d = spec.partitioner.dim();
    let np = spec.partitioner.num_partitions();
    if d == 0 || np == 0 || spec.bounds.dim() < d {
        return;
    }
    if spec.sector_prune && spec.filter_k == 0 {
        report.diagnostics.push(Diagnostic::new(
            Code::UnsoundFilter,
            Severity::Warning,
            "job 1",
            "witness pruning is on while map-side filtering is off: the pipeline \
             falls back to automatically selected witness points",
        ));
    }

    // Deterministic probe cloud inside the fitted bounds (the same
    // SplitMix64 hash the lattice subsampler uses).
    let mut points: Vec<Point> = Vec::with_capacity(FILTER_PROBES);
    for id in 0..FILTER_PROBES {
        let coords: Vec<f64> = (0..d)
            .map(|i| {
                let h = splitmix64(0x5eed_f11e ^ ((id as u64) << 16) ^ i as u64);
                let u = (h >> 11) as f64 / (1u64 << 53) as f64;
                spec.bounds.min(i) + u * spec.bounds.width(i)
            })
            .collect();
        points.push(Point::new(id as u64, coords));
    }
    let Ok(block) = skyline_algos::block::PointBlock::from_points(&points) else {
        return;
    };
    // The validator's own skyline of the probe cloud.
    let skyline: Vec<&Point> = points
        .iter()
        .filter(|p| {
            !points
                .iter()
                .any(|q| strictly_dominates(q.coords(), p.coords()))
        })
        .collect();

    // Mirrors the pipeline's fallback: with the filter off it still picks
    // `auto_filter_points(d)` witnesses for sector pruning.
    let witness_k = if spec.filter_k > 0 {
        spec.filter_k
    } else {
        (8 * d).max(16)
    };
    let filter = skyline_algos::filter::select_filter_points(&block, witness_k);

    if spec.filter_k > 0 {
        let mut emitted = 0usize;
        for p in &skyline {
            if skyline_algos::filter::filtered_out(&filter, p.coords()) && emitted < EMIT_CAP {
                emitted += 1;
                report.diagnostics.push(Diagnostic::new(
                    Code::UnsoundFilter,
                    Severity::Error,
                    format!("probe {}", p.id()),
                    format!(
                        "skyline probe {:?} is dropped by a broadcast filter point",
                        p.coords()
                    ),
                ));
            }
        }
    }

    if spec.sector_prune {
        let mut observed_min: Vec<Option<Vec<f64>>> = vec![None; np];
        for p in &points {
            let h = spec.partitioner.partition_of(p);
            match &mut observed_min[h] {
                Some(m) => {
                    for (mi, &v) in m.iter_mut().zip(p.coords()) {
                        *mi = mi.min(v);
                    }
                }
                None => observed_min[h] = Some(p.coords().to_vec()),
            }
        }
        let witnesses: Vec<(usize, Vec<f64>)> = filter
            .iter()
            .map(|(id, row)| (spec.partitioner.partition_of_row(id, row), row.to_vec()))
            .collect();
        let mask =
            skyline_algos::partition::witness_prunable(spec.partitioner, &observed_min, &witnesses);
        let mut emitted = 0usize;
        for p in &skyline {
            let h = spec.partitioner.partition_of(p);
            if mask.get(h).copied().unwrap_or(false) && emitted < EMIT_CAP {
                emitted += 1;
                report.diagnostics.push(Diagnostic::new(
                    Code::UnsoundFilter,
                    Severity::Error,
                    format!("partition {h}"),
                    format!(
                        "skyline probe {:?} sits in a witness-pruned partition",
                        p.coords()
                    ),
                ));
            }
        }
    }
    report.probes += FILTER_PROBES;
}

// ------------------------------------------------------------- probing --

/// One probe value on an axis with its independently predicted interval.
#[derive(Clone, Copy)]
struct ProbeValue {
    v: f64,
    /// `true` when the value sits on (or within ε of) a boundary: assignment
    /// mismatches become `MRA009` instead of `MRA001`, and for angular axes
    /// the prediction tolerates either side of the boundary.
    on_boundary: bool,
}

/// Predicted interval for `v` by the right-closed convention, computed from
/// the profile alone (independent of `partition_point`).
fn predicted_interval(axis: &AxisProfile, v: f64) -> usize {
    axis.boundaries.iter().filter(|&&b| b <= v).count()
}

fn axis_probe_values(axis: &AxisProfile, angular: bool) -> Vec<ProbeValue> {
    let (lo, hi) = axis.domain;
    let width = (hi - lo).abs().max(1e-9);
    let mut out = Vec::new();
    // Domain corners and, for data axes, out-of-domain clamp probes.
    out.push(ProbeValue {
        v: lo,
        on_boundary: false,
    });
    out.push(ProbeValue {
        v: hi,
        on_boundary: false,
    });
    if !angular {
        out.push(ProbeValue {
            v: lo - 0.1 * width,
            on_boundary: false,
        });
        out.push(ProbeValue {
            v: hi + 0.1 * width,
            on_boundary: false,
        });
    }
    // Interval midpoints (lattice interior).
    let mut cuts = Vec::with_capacity(axis.boundaries.len() + 2);
    cuts.push(lo);
    cuts.extend_from_slice(&axis.boundaries);
    cuts.push(hi);
    for w in cuts.windows(2) {
        if w[1] > w[0] {
            out.push(ProbeValue {
                v: 0.5 * (w[0] + w[1]),
                on_boundary: false,
            });
        }
    }
    // The boundary lattice itself plus ±ε shoulders. The angular ε is
    // coarser because probes round-trip through the hyperspherical
    // transform (atan2 of products of sines) before being re-assigned.
    for &b in &axis.boundaries {
        let eps = if angular {
            1e-6
        } else {
            (b.abs() * 1e-9).max(1e-12)
        };
        out.push(ProbeValue {
            v: b,
            on_boundary: true,
        });
        out.push(ProbeValue {
            v: b - eps,
            on_boundary: true,
        });
        out.push(ProbeValue {
            v: b + eps,
            on_boundary: true,
        });
    }
    if angular {
        // Both hypersphere poles are unrecoverable through the transform
        // round-trip: at angle 0 every later angle collapses to 0 in the
        // inverse transform, and at angle pi/2 the cos factor (~6e-17)
        // underflows beneath the origin's ulp once the probe is translated
        // into data space. Nudge all angular probes off both poles; the
        // prediction is computed on the nudged value, so this stays exact.
        for pv in &mut out {
            pv.v = pv.v.clamp(
                ANGULAR_POLE_MARGIN,
                std::f64::consts::FRAC_PI_2 - ANGULAR_POLE_MARGIN,
            );
        }
    }
    out
}

/// Row-major linearisation matching the partition lattice convention.
fn linearize(index: &[usize], splits: &[usize]) -> usize {
    let mut out = 0usize;
    for (&ix, &s) in index.iter().zip(splits) {
        out = out * s + ix;
    }
    out
}

fn delinearize(mut linear: usize, splits: &[usize]) -> Vec<usize> {
    let mut out = vec![0usize; splits.len()];
    for i in (0..splits.len()).rev() {
        out[i] = linear % splits[i];
        linear /= splits[i];
    }
    out
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Caps diagnostics of one code, appending a summary line once exceeded.
struct Emitter2<'r> {
    report: &'r mut AuditReport,
    emitted: std::collections::BTreeMap<Code, usize>,
}

impl Emitter2<'_> {
    fn emit(&mut self, d: Diagnostic) {
        let n = self.emitted.entry(d.code).or_insert(0);
        *n += 1;
        match (*n).cmp(&(EMIT_CAP + 1)) {
            std::cmp::Ordering::Less => self.report.diagnostics.push(d),
            std::cmp::Ordering::Equal => self.report.diagnostics.push(Diagnostic::new(
                d.code,
                d.severity,
                "…",
                format!("further {} findings suppressed", d.code),
            )),
            std::cmp::Ordering::Greater => {}
        }
    }
}

fn probe_assignment(spec: &PlanSpec<'_>, profile: &BoundaryProfile, report: &mut AuditReport) {
    let np = spec.partitioner.num_partitions();
    if np == 0 {
        return;
    }
    let d = spec.partitioner.dim();
    if spec.bounds.dim() != d {
        report.diagnostics.push(Diagnostic::new(
            Code::PartitionNotTotal,
            Severity::Error,
            "plan",
            format!(
                "bounds are {}-dimensional but the partitioner expects {d} dimensions",
                spec.bounds.dim()
            ),
        ));
        return;
    }
    let mut seen = vec![false; np];
    let mut probes = 0usize;
    {
        let mut emitter = Emitter2 {
            report,
            emitted: std::collections::BTreeMap::new(),
        };
        match profile.space {
            PartitionSpace::Opaque => {
                probes += probe_opaque(spec, np, &mut seen, &mut emitter);
            }
            PartitionSpace::Cartesian | PartitionSpace::Angular => {
                probes += probe_lattice(spec, profile, np, &mut seen, &mut emitter);
            }
        }
        let unreachable: Vec<usize> = seen
            .iter()
            .enumerate()
            .filter_map(|(i, &s)| (!s).then_some(i))
            .collect();
        if !unreachable.is_empty() {
            emitter.emit(Diagnostic::new(
                Code::UnreachablePartition,
                Severity::Warning,
                "partition ids",
                format!(
                    "{} of {np} partition ids were never produced by any probe \
                     (first few: {:?}); those reducers will idle",
                    unreachable.len(),
                    &unreachable[..unreachable.len().min(8)]
                ),
            ));
        }
    }
    report.probes += probes;
}

fn probe_opaque(
    spec: &PlanSpec<'_>,
    np: usize,
    seen: &mut [bool],
    emitter: &mut Emitter2<'_>,
) -> usize {
    let d = spec.partitioner.dim();
    let n_probes = (64usize.saturating_mul(np)).clamp(1024, 65_536);
    for k in 0..n_probes {
        let coords: Vec<f64> = (0..d)
            .map(|i| {
                let u = splitmix64(k as u64 ^ ((i as u64) << 32)) as f64 / u64::MAX as f64;
                let (lo, hi) = (spec.bounds.min(i), spec.bounds.max(i));
                lo + (hi - lo) * u
            })
            .collect();
        let p = Point::new(k as u64, coords);
        let id = spec.partitioner.partition_of(&p);
        if id >= np {
            emitter.emit(Diagnostic::new(
                Code::PartitionNotTotal,
                Severity::Error,
                format!("probe {k}"),
                format!(
                    "point {:?} mapped to partition {id}, outside 0..{np}",
                    p.coords()
                ),
            ));
        } else {
            seen[id] = true;
        }
    }
    n_probes
}

#[allow(clippy::too_many_lines)]
fn probe_lattice(
    spec: &PlanSpec<'_>,
    profile: &BoundaryProfile,
    np: usize,
    seen: &mut [bool],
    emitter: &mut Emitter2<'_>,
) -> usize {
    let angular = profile.space == PartitionSpace::Angular;
    let splits: Vec<usize> = profile.axes.iter().map(AxisProfile::intervals).collect();
    let values: Vec<Vec<ProbeValue>> = profile
        .axes
        .iter()
        .map(|a| axis_probe_values(a, angular))
        .collect();

    // Assigns one probe, checking the observed partition id against the
    // profile's prediction.
    #[allow(clippy::too_many_arguments)] // plumbing fn local to probe_lattice
    fn run_probe(
        spec: &PlanSpec<'_>,
        profile: &BoundaryProfile,
        splits: &[usize],
        np: usize,
        combo: &[ProbeValue],
        label: &str,
        seen: &mut [bool],
        emitter: &mut Emitter2<'_>,
    ) {
        let angular = profile.space == PartitionSpace::Angular;
        let per_axis: Vec<usize> = combo
            .iter()
            .zip(&profile.axes)
            .map(|(pv, axis)| predicted_interval(axis, pv.v))
            .collect();
        let point = build_probe_point(spec, profile, combo, 1.0);
        let id = spec.partitioner.partition_of(&point);
        if id >= np {
            emitter.emit(Diagnostic::new(
                Code::PartitionNotTotal,
                Severity::Error,
                format!("probe {label}"),
                format!(
                    "point {:?} mapped to partition {id}, outside 0..{np}",
                    point.coords()
                ),
            ));
            return;
        }
        seen[id] = true;
        let on_boundary = combo.iter().any(|pv| pv.on_boundary);
        let predicted = linearize(&per_axis, splits);
        let acceptable = if angular {
            // The transform round-trip can move an angle by ~1 ulp, so a
            // probe sitting exactly on a boundary may legitimately land on
            // either side — and with *coincident* boundaries, several cells
            // away. Accept any cell adjacent to a boundary value within
            // tolerance of the probed angle, *at boundary values only*.
            let actual = delinearize(id, splits);
            actual
                .iter()
                .zip(&per_axis)
                .zip(combo.iter().zip(&profile.axes))
                .all(|((&a, &p), (pv, axis))| {
                    if a == p {
                        return true;
                    }
                    if !pv.on_boundary {
                        return false;
                    }
                    let tol = 2e-6;
                    let below = a.checked_sub(1).and_then(|j| axis.boundaries.get(j));
                    let above = axis.boundaries.get(a);
                    below.is_some_and(|b| (b - pv.v).abs() <= tol)
                        || above.is_some_and(|b| (b - pv.v).abs() <= tol)
                })
        } else {
            id == predicted
        };
        if !acceptable {
            let (code, what) = if on_boundary {
                (
                    Code::DisjointnessViolation,
                    "boundary ownership disagrees with the right-closed convention",
                )
            } else {
                (
                    Code::PartitionNotTotal,
                    "interior probe lands outside its lattice cell",
                )
            };
            emitter.emit(Diagnostic::new(
                code,
                Severity::Error,
                format!("probe {label}"),
                format!(
                    "{what}: point {:?} mapped to partition {id}, lattice predicts {predicted}",
                    point.coords()
                ),
            ));
        }
        // Angular partitioning must be radius-invariant: re-probe the same
        // angles at a different radius.
        if angular && !on_boundary {
            let far = build_probe_point(spec, profile, combo, 37.5);
            let far_id = spec.partitioner.partition_of(&far);
            if far_id != id {
                emitter.emit(Diagnostic::new(
                    Code::DisjointnessViolation,
                    Severity::Error,
                    format!("probe {label}"),
                    format!(
                        "sector assignment is not radius-invariant: r=1 maps to {id}, \
                         r=37.5 maps to {far_id}"
                    ),
                ));
            }
        }
    }

    let mut probes = 0usize;

    // Phase 1: the boundary-lattice product (capped, deterministic).
    if !values.is_empty() {
        let combos: u128 = values.iter().map(|v| v.len() as u128).product();
        let radices: Vec<usize> = values.iter().map(Vec::len).collect();
        let take = combos.min(PROBE_CAP as u128) as usize;
        for k in 0..take {
            let mut idx = if combos <= PROBE_CAP as u128 {
                k as u128
            } else {
                u128::from(splitmix64(k as u64)) % combos
            };
            let combo: Vec<ProbeValue> = radices
                .iter()
                .zip(&values)
                .rev()
                .map(|(&r, vals)| {
                    let i = (idx % r as u128) as usize;
                    idx /= r as u128;
                    vals[i]
                })
                .collect::<Vec<_>>()
                .into_iter()
                .rev()
                .collect();
            run_probe(
                spec,
                profile,
                &splits,
                np,
                &combo,
                &format!("lattice#{k}"),
                seen,
                emitter,
            );
            probes += 1;
        }
    } else {
        // No axes (1-D angular data): a couple of plain probes.
        let mid: Vec<f64> = (0..spec.partitioner.dim())
            .map(|i| 0.5 * (spec.bounds.min(i) + spec.bounds.max(i)))
            .collect();
        let id = spec.partitioner.partition_of(&Point::new(0, mid));
        if id >= np {
            emitter.emit(Diagnostic::new(
                Code::PartitionNotTotal,
                Severity::Error,
                "probe mid",
                format!("midpoint mapped to partition {id}, outside 0..{np}"),
            ));
        } else {
            seen[id] = true;
        }
        probes += 1;
    }

    // Phase 2: one midpoint probe per cell, so reachability is decided by
    // construction rather than by luck of the subsample.
    if !values.is_empty() && np <= REACH_CAP {
        for cell in 0..np {
            let cell_idx = delinearize(cell, &splits);
            let combo: Vec<ProbeValue> = cell_idx
                .iter()
                .zip(&profile.axes)
                .map(|(&k, axis)| {
                    let (inf, sup) = cell_interval(axis, k);
                    let (lo, hi) = axis.domain;
                    let inf = inf.max(lo);
                    let sup = sup.min(hi);
                    // An empty cell (coincident boundaries, or a boundary on
                    // the domain edge) has no interior: its "midpoint" sits
                    // on a boundary, so it needs boundary tolerance and no
                    // radius-invariance check.
                    let degenerate = sup - inf <= 1e-9 * (hi - lo).abs().max(1.0);
                    let mut v = 0.5 * (inf + sup);
                    if angular && hi - lo > 2.0 * ANGULAR_POLE_MARGIN {
                        v = v.clamp(lo + ANGULAR_POLE_MARGIN, hi - ANGULAR_POLE_MARGIN);
                    }
                    let near_boundary = axis.boundaries.iter().any(|&b| (b - v).abs() <= 1e-6);
                    ProbeValue {
                        v,
                        on_boundary: degenerate || near_boundary,
                    }
                })
                .collect();
            run_probe(
                spec,
                profile,
                &splits,
                np,
                &combo,
                &format!("cell#{cell}"),
                seen,
                emitter,
            );
            probes += 1;
        }
    }

    probes
}

/// Materialises a probe from per-axis values: directly as coordinates for
/// Cartesian profiles, through the inverse hyperspherical transform (at
/// radius `r`, translated back by the fitted origin) for angular ones.
fn build_probe_point(
    spec: &PlanSpec<'_>,
    profile: &BoundaryProfile,
    combo: &[ProbeValue],
    r: f64,
) -> Point {
    let d = spec.partitioner.dim();
    match profile.space {
        PartitionSpace::Angular => {
            let angles: Vec<f64> = combo
                .iter()
                .map(|pv| pv.v.clamp(0.0, std::f64::consts::FRAC_PI_2))
                .collect();
            debug_assert_eq!(angles.len(), d - 1);
            let h = HyperPoint {
                id: 0,
                r,
                angles: angles.into_boxed_slice(),
            };
            let cart = to_cartesian(&h);
            let fallback: Vec<f64> = (0..d).map(|i| spec.bounds.min(i)).collect();
            let origin = profile.origin.as_deref().unwrap_or(&fallback);
            let coords: Vec<f64> = cart
                .coords()
                .iter()
                .zip(origin)
                .map(|(&c, &o)| c + o)
                .collect();
            Point::new(0, coords)
        }
        _ => {
            // Unprofiled dimensions sit at the bounds midpoint; they must
            // not influence the assignment.
            let mut coords: Vec<f64> = (0..d)
                .map(|i| 0.5 * (spec.bounds.min(i) + spec.bounds.max(i)))
                .collect();
            for (pv, axis) in combo.iter().zip(&profile.axes) {
                coords[axis.coord] = pv.v;
            }
            Point::new(0, coords)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyline_algos::partition::{
        AnglePartitioner, DimPartitioner, GridPartitioner, RandomPartitioner,
    };

    fn spec_for<'a>(
        partitioner: &'a dyn SpacePartitioner,
        bounds: &'a Bounds,
        cluster: &'a ClusterConfig,
        speculation: &'a SpeculationConfig,
        cost: &'a CostModel,
    ) -> PlanSpec<'a> {
        PlanSpec {
            partitioner,
            bounds,
            cluster,
            speculation,
            cost,
            reducers_job1: partitioner.num_partitions(),
            grid_pruning: false,
            filter_k: 0,
            sector_prune: false,
            threads: 2,
        }
    }

    fn audit_default(partitioner: &dyn SpacePartitioner, bounds: &Bounds) -> AuditReport {
        let cluster = ClusterConfig::new(4);
        let speculation = SpeculationConfig::default();
        let cost = CostModel::default();
        audit_plan(&spec_for(
            partitioner,
            bounds,
            &cluster,
            &speculation,
            &cost,
        ))
    }

    #[test]
    fn all_four_schemes_pass_clean_on_valid_fits() {
        let bounds = Bounds::zero_to(10.0, 3);
        let dim = DimPartitioner::fit(&bounds, 8).unwrap();
        let grid = GridPartitioner::fit(&bounds, 8).unwrap();
        let angle = AnglePartitioner::fit(&bounds, 8).unwrap();
        let random = RandomPartitioner::with_seed(3, 8, 42).unwrap();
        for (name, report) in [
            ("dim", audit_default(&dim, &bounds)),
            ("grid", audit_default(&grid, &bounds)),
            ("angle", audit_default(&angle, &bounds)),
            ("random", audit_default(&random, &bounds)),
        ] {
            assert!(
                !report.has_errors(),
                "{name} fit should audit clean:\n{}",
                report.render_text()
            );
            assert!(report.probes > 0, "{name} audit must actually probe");
        }
    }

    #[test]
    fn filter_and_witness_pruning_audit_clean_on_every_scheme() {
        let bounds = Bounds::zero_to(10.0, 3);
        let dim = DimPartitioner::fit(&bounds, 8).unwrap();
        let grid = GridPartitioner::fit(&bounds, 8).unwrap();
        let angle = AnglePartitioner::fit(&bounds, 8).unwrap();
        let random = RandomPartitioner::with_seed(3, 8, 42).unwrap();
        let cluster = ClusterConfig::new(4);
        let speculation = SpeculationConfig::default();
        let cost = CostModel::default();
        for (name, p) in [
            ("dim", &dim as &dyn SpacePartitioner),
            ("grid", &grid),
            ("angle", &angle),
            ("random", &random),
        ] {
            let mut spec = spec_for(p, &bounds, &cluster, &speculation, &cost);
            spec.filter_k = 8;
            spec.sector_prune = true;
            let report = audit_plan(&spec);
            assert!(
                report.with_code(Code::UnsoundFilter).is_empty(),
                "{name}: exact filter + witness pruning must audit clean:\n{}",
                report.render_text()
            );
            assert!(!report.has_errors(), "{name}:\n{}", report.render_text());
        }
    }

    #[test]
    fn witness_pruning_without_filter_warns() {
        let bounds = Bounds::zero_to(10.0, 3);
        let grid = GridPartitioner::fit(&bounds, 8).unwrap();
        let cluster = ClusterConfig::new(4);
        let speculation = SpeculationConfig::default();
        let cost = CostModel::default();
        let mut spec = spec_for(&grid, &bounds, &cluster, &speculation, &cost);
        spec.filter_k = 0;
        spec.sector_prune = true;
        let report = audit_plan(&spec);
        let hits = report.with_code(Code::UnsoundFilter);
        assert_eq!(hits.len(), 1, "{}", report.render_text());
        assert_eq!(hits[0].severity, Severity::Warning);
        assert!(!report.has_errors());
    }

    #[test]
    fn reducer_and_cluster_misconfigurations_are_flagged() {
        let bounds = Bounds::zero_to(1.0, 2);
        let grid = GridPartitioner::fit(&bounds, 4).unwrap();
        let mut cluster = ClusterConfig::new(2);
        cluster.reduce_slots_per_server = 0;
        let speculation = SpeculationConfig {
            enabled: true,
            threshold: 0.2,
        };
        let cost = CostModel {
            task_startup: f64::NAN,
            ..CostModel::default()
        };
        let mut spec = spec_for(&grid, &bounds, &cluster, &speculation, &cost);
        spec.reducers_job1 = 0;
        spec.threads = 0;
        let report = audit_plan(&spec);
        assert!(!report.with_code(Code::ReducerMismatch).is_empty());
        assert!(report.with_code(Code::ZeroCapacityCluster).len() >= 3);
        assert!(report.has_errors());
    }

    #[test]
    fn excess_partitions_warn_about_reduce_waves() {
        let bounds = Bounds::zero_to(1.0, 2);
        let grid = GridPartitioner::fit(&bounds, 256).unwrap();
        let report = audit_default(&grid, &bounds);
        assert!(!report.with_code(Code::ExcessPartitionWaves).is_empty());
        assert!(!report.has_errors(), "waves are a warning, not an error");
    }

    #[test]
    fn prefix_grid_with_pruning_requested_warns_unavailable() {
        let bounds = Bounds::zero_to(1.0, 4);
        let grid = GridPartitioner::fit_on_dims(&bounds, 4, 2).unwrap();
        let cluster = ClusterConfig::new(4);
        let speculation = SpeculationConfig::default();
        let cost = CostModel::default();
        let mut spec = spec_for(&grid, &bounds, &cluster, &speculation, &cost);
        spec.grid_pruning = true;
        let report = audit_plan(&spec);
        assert!(!report.with_code(Code::PruningUnavailable).is_empty());
        assert!(!report.has_errors());
    }

    #[test]
    fn quantile_fits_audit_clean_on_skewed_data() {
        // Quantile boundaries on skewed data exercise the degenerate-axis
        // warnings without ever producing errors.
        let pts: Vec<Point> = (0..500)
            .map(|i| {
                let x = if i % 7 == 0 { 50.0 } else { f64::from(i % 13) };
                Point::new(i as u64, vec![x, f64::from(i % 11), 1.0 + f64::from(i % 3)])
            })
            .collect();
        let bounds = Bounds::from_points(&pts).unwrap();
        let angle = AnglePartitioner::fit_quantile(&pts, 8).unwrap();
        let grid = GridPartitioner::fit_quantile(&pts, 8, 3).unwrap();
        for (name, report) in [
            ("angle", audit_default(&angle, &bounds)),
            ("grid", audit_default(&grid, &bounds)),
        ] {
            assert!(
                !report.has_errors(),
                "{name} quantile fit should audit clean:\n{}",
                report.render_text()
            );
        }
    }
}
