//! CLI front-end for the audit layers.
//!
//! ```text
//! mrsky-audit lint [--root DIR] [--allowlist FILE] [--print-baseline]
//!                  [--enforce-ratchet] [--json]
//! mrsky-audit plan --scheme dim|grid|angle|random [--dims N] [--partitions N]
//!                  [--servers N] [--reducers N] [--grid-pruning]
//!                  [--filter-k N] [--sector-prune] [--json]
//! mrsky-audit codes
//! ```
//!
//! Exit code 0 when clean, 1 on violations/error diagnostics, 2 on usage
//! errors — so CI can gate directly on the process status.

use mini_mapreduce::{ClusterConfig, CostModel, SpeculationConfig};
use mrsky_audit::diag::Code;
use mrsky_audit::lint::{run_lint, LintConfig};
use mrsky_audit::plan::{audit_plan, PlanSpec};
use skyline_algos::partition::{
    AnglePartitioner, Bounds, DimPartitioner, GridPartitioner, RandomPartitioner,
};
use skyline_algos::SpacePartitioner;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => cmd_lint(&args[1..]),
        Some("plan") => cmd_plan(&args[1..]),
        Some("codes") => cmd_codes(),
        _ => {
            eprintln!("usage: mrsky-audit <lint|plan|codes> [options]");
            ExitCode::from(2)
        }
    }
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn flag_present(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn cmd_lint(args: &[String]) -> ExitCode {
    let root = PathBuf::from(flag_value(args, "--root").unwrap_or("."));
    let print_baseline = flag_present(args, "--print-baseline");
    // Baseline regeneration wants the raw findings, so it runs with no
    // allowances. Every other mode resolves an allowlist — explicit or
    // the workspace default — and a missing file is a hard usage error
    // inside run_lint, never a silent zero-allowance pass.
    let allowlist = if print_baseline {
        None
    } else {
        Some(
            flag_value(args, "--allowlist")
                .map(PathBuf::from)
                .unwrap_or_else(|| root.join("lint-baseline.txt")),
        )
    };
    let config = LintConfig { root, allowlist };
    let report = match run_lint(&config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lint failed: {e}");
            return ExitCode::from(2);
        }
    };
    if print_baseline {
        print!("{}", report.baseline());
        return ExitCode::SUCCESS;
    }
    print!("{}", report.render_text());
    let clean = if flag_present(args, "--enforce-ratchet") {
        report.is_clean_strict()
    } else {
        report.is_clean()
    };
    if clean {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_plan(args: &[String]) -> ExitCode {
    let scheme = flag_value(args, "--scheme").unwrap_or("angle");
    let dims: usize = flag_value(args, "--dims")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let partitions: usize = flag_value(args, "--partitions")
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let servers: usize = flag_value(args, "--servers")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let bounds = Bounds::zero_to(100.0, dims.max(1));

    let partitioner: Box<dyn SpacePartitioner> = match scheme {
        "dim" => match DimPartitioner::fit(&bounds, partitions) {
            Ok(p) => Box::new(p),
            Err(e) => return fit_error(e),
        },
        "grid" => match GridPartitioner::fit(&bounds, partitions) {
            Ok(p) => Box::new(p),
            Err(e) => return fit_error(e),
        },
        "angle" => match AnglePartitioner::fit(&bounds, partitions) {
            Ok(p) => Box::new(p),
            Err(e) => return fit_error(e),
        },
        "random" => match RandomPartitioner::new(dims.max(1), partitions) {
            Ok(p) => Box::new(p),
            Err(e) => return fit_error(e),
        },
        other => {
            eprintln!("unknown scheme `{other}` (expected dim|grid|angle|random)");
            return ExitCode::from(2);
        }
    };

    let cluster = ClusterConfig::new(servers.max(1));
    let speculation = SpeculationConfig::default();
    let cost = CostModel::default();
    let reducers = flag_value(args, "--reducers")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| partitioner.num_partitions());
    let spec = PlanSpec {
        partitioner: partitioner.as_ref(),
        bounds: &bounds,
        cluster: &cluster,
        speculation: &speculation,
        cost: &cost,
        reducers_job1: reducers,
        grid_pruning: flag_present(args, "--grid-pruning"),
        filter_k: flag_value(args, "--filter-k")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0),
        sector_prune: flag_present(args, "--sector-prune"),
        threads: 2,
    };
    let report = audit_plan(&spec);
    if flag_present(args, "--json") {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render_text());
    }
    if report.has_errors() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn fit_error(e: skyline_algos::SkylineError) -> ExitCode {
    eprintln!("partitioner fit failed: {e}");
    ExitCode::FAILURE
}

fn cmd_codes() -> ExitCode {
    println!("{:<8} description", "code");
    for c in Code::all() {
        println!("{:<8} {}", c.as_str(), c.description());
    }
    ExitCode::SUCCESS
}
