//! Dataset characterisation: summary statistics and correlation structure.
//!
//! Skyline behaviour is a function of the joint distribution — the
//! correlation matrix decides whether the skyline has 10 points or 10,000.
//! These helpers let examples, tests and EXPERIMENTS.md *show* the structure
//! of the data a measurement ran on instead of asserting it.

use crate::dataset::Dataset;

/// Per-dimension summary.
#[derive(Debug, Clone, PartialEq)]
pub struct DimensionStats {
    /// Sample mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Sample median.
    pub median: f64,
}

/// Summarises every dimension of `dataset`.
pub fn dimension_stats(dataset: &Dataset) -> Vec<DimensionStats> {
    let n = dataset.len() as f64;
    (0..dataset.dim())
        .map(|i| {
            let mut values: Vec<f64> = dataset.points().iter().map(|p| p.coord(i)).collect();
            values.sort_by(f64::total_cmp);
            let mean = values.iter().sum::<f64>() / n;
            let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
            DimensionStats {
                mean,
                std_dev: var.sqrt(),
                min: values[0],
                max: values[values.len() - 1],
                median: values[values.len() / 2],
            }
        })
        .collect()
}

/// Pearson correlation matrix of the dataset's dimensions (`d × d`,
/// symmetric, unit diagonal). Degenerate (constant) dimensions yield 0.0
/// off-diagonal.
pub fn correlation_matrix(dataset: &Dataset) -> Vec<Vec<f64>> {
    let d = dataset.dim();
    let n = dataset.len() as f64;
    let stats = dimension_stats(dataset);
    let mut matrix = vec![vec![0.0; d]; d];
    for i in 0..d {
        matrix[i][i] = 1.0;
        for j in (i + 1)..d {
            let cov = dataset
                .points()
                .iter()
                .map(|p| (p.coord(i) - stats[i].mean) * (p.coord(j) - stats[j].mean))
                .sum::<f64>()
                / n;
            let denom = stats[i].std_dev * stats[j].std_dev;
            let r = if denom > 0.0 { cov / denom } else { 0.0 };
            matrix[i][j] = r;
            matrix[j][i] = r;
        }
    }
    matrix
}

/// Mean pairwise (off-diagonal) correlation — a one-number summary of how
/// "collapsible" the skyline is: near +1 means tiny skylines, near −1 means
/// everything is a trade-off.
pub fn mean_pairwise_correlation(dataset: &Dataset) -> f64 {
    let d = dataset.dim();
    if d < 2 {
        return 0.0;
    }
    let m = correlation_matrix(dataset);
    let mut sum = 0.0;
    let mut count = 0usize;
    for (i, row) in m.iter().enumerate() {
        for &r in row.iter().skip(i + 1) {
            sum += r;
            count += 1;
        }
    }
    sum / count as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate_qws, QwsConfig};
    use crate::synthetic::{generate_synthetic, Distribution, SyntheticConfig};
    use skyline_algos::point::Point;

    #[test]
    fn dimension_stats_on_known_data() {
        let data = Dataset::new(
            "known",
            vec![
                Point::new(0, vec![1.0, 10.0]),
                Point::new(1, vec![2.0, 10.0]),
                Point::new(2, vec![3.0, 10.0]),
            ],
        );
        let s = dimension_stats(&data);
        assert_eq!(s[0].mean, 2.0);
        assert_eq!(s[0].min, 1.0);
        assert_eq!(s[0].max, 3.0);
        assert_eq!(s[0].median, 2.0);
        assert!((s[0].std_dev - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s[1].std_dev, 0.0, "constant dimension");
    }

    #[test]
    fn correlation_matrix_shape_and_symmetry() {
        let data = generate_qws(&QwsConfig::new(2000, 5));
        let m = correlation_matrix(&data);
        assert_eq!(m.len(), 5);
        for (i, row) in m.iter().enumerate() {
            assert!((row[i] - 1.0).abs() < 1e-12);
            for (j, &v) in row.iter().enumerate() {
                assert!((v - m[j][i]).abs() < 1e-12);
                assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&v));
            }
        }
    }

    #[test]
    fn perfect_correlation_detected() {
        let data = Dataset::new(
            "line",
            (0..50)
                .map(|i| Point::new(i, vec![i as f64, 2.0 * i as f64]))
                .collect::<Vec<_>>(),
        );
        let m = correlation_matrix(&data);
        assert!((m[0][1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn distribution_families_rank_as_expected() {
        let corr = mean_pairwise_correlation(&generate_synthetic(&SyntheticConfig::new(
            5000,
            3,
            Distribution::Correlated,
        )));
        let indep = mean_pairwise_correlation(&generate_synthetic(&SyntheticConfig::new(
            5000,
            3,
            Distribution::Independent,
        )));
        let anti = mean_pairwise_correlation(&generate_synthetic(&SyntheticConfig::new(
            5000,
            3,
            Distribution::AntiCorrelated,
        )));
        assert!(corr > 0.5, "correlated family: {corr}");
        assert!(indep.abs() < 0.1, "independent family: {indep}");
        assert!(anti < -0.1, "anti-correlated family: {anti}");
        assert!(corr > indep && indep > anti);
    }

    #[test]
    fn degenerate_dimension_gives_zero_correlation() {
        let data = Dataset::new(
            "flat",
            (0..10)
                .map(|i| Point::new(i, vec![i as f64, 7.0]))
                .collect::<Vec<_>>(),
        );
        let m = correlation_matrix(&data);
        assert_eq!(m[0][1], 0.0);
    }

    #[test]
    fn one_dimensional_mean_correlation_is_zero() {
        let data = Dataset::new(
            "one",
            vec![Point::new(0, vec![1.0]), Point::new(1, vec![2.0])],
        );
        assert_eq!(mean_pairwise_correlation(&data), 0.0);
    }
}
