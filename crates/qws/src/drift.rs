//! Time-varying QoS — the paper's second motivating problem.
//!
//! Section I: *"The QoS of selected service may get degraded rapidly, when
//! the Internet traffic becomes saturated or jammed with bottlenecks. This
//! may prevent the skyline solution from achieving the desired level of
//! QoS."* A skyline computed once is a snapshot; services drift.
//!
//! [`DriftModel`] evolves a dataset through discrete epochs: every epoch,
//! each service's *load-sensitive* attributes (times and throughput-style
//! axes) are scaled by a mean-reverting congestion factor, occasionally
//! spiked (a saturation event). Epochs are deterministic given the seed, and
//! each epoch is deliverable as a batch of `Remove` + `Add` updates so a
//! [`MaintainedRegistry`](https://docs.rs/mr-skyline) can track the moving
//! skyline incrementally.

use crate::dataset::{Dataset, Update};
use crate::rng::standard_normal;
use rand::{rngs::StdRng, Rng, SeedableRng};
use skyline_algos::point::Point;

/// Configuration of the congestion drift process.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftConfig {
    /// Indices of the load-sensitive attributes to drift (for QWS-ordered
    /// data: 0 = response time, 2 = latency…). Others stay fixed.
    pub drifting_dims: Vec<usize>,
    /// Mean-reversion strength per epoch (0 = random walk, 1 = memoryless).
    pub reversion: f64,
    /// Per-epoch volatility of the log-congestion factor.
    pub volatility: f64,
    /// Probability of a saturation spike per service per epoch.
    pub spike_prob: f64,
    /// Multiplier applied during a spike.
    pub spike_factor: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        Self {
            drifting_dims: vec![0],
            reversion: 0.3,
            volatility: 0.15,
            spike_prob: 0.01,
            spike_factor: 6.0,
            seed: 42,
        }
    }
}

/// Evolving registry state: base QoS plus a per-service log-congestion level.
pub struct DriftModel {
    base: Vec<Point>,
    /// Current log-congestion per service (0 = nominal).
    log_congestion: Vec<f64>,
    cfg: DriftConfig,
    rng: StdRng,
    epoch: u64,
}

impl DriftModel {
    /// Starts a drift process over `dataset` (epoch 0 = nominal QoS).
    ///
    /// # Panics
    ///
    /// Panics if a drifting dimension is out of range or parameters are
    /// outside their domains.
    pub fn new(dataset: &Dataset, cfg: DriftConfig) -> Self {
        assert!(
            cfg.drifting_dims.iter().all(|&d| d < dataset.dim()),
            "drifting dimension out of range"
        );
        assert!((0.0..=1.0).contains(&cfg.reversion), "reversion in [0,1]");
        assert!(cfg.volatility >= 0.0 && cfg.spike_prob >= 0.0 && cfg.spike_prob <= 1.0);
        assert!(cfg.spike_factor >= 1.0);
        let rng = StdRng::seed_from_u64(cfg.seed);
        Self {
            log_congestion: vec![0.0; dataset.len()],
            base: dataset.points().to_vec(),
            cfg,
            rng,
            epoch: 0,
        }
    }

    /// Current epoch number.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The current QoS vector of service index `i`.
    fn current_point(&self, i: usize, spiked: bool) -> Point {
        let base = &self.base[i];
        let factor =
            self.log_congestion[i].exp() * if spiked { self.cfg.spike_factor } else { 1.0 };
        let coords: Vec<f64> = (0..base.dim())
            .map(|d| {
                if self.cfg.drifting_dims.contains(&d) {
                    base.coord(d) * factor
                } else {
                    base.coord(d)
                }
            })
            .collect();
        Point::new(base.id(), coords)
    }

    /// Advances one epoch and returns the dataset snapshot plus the update
    /// batch (`Remove` old + `Add` new per changed service) for incremental
    /// maintenance.
    pub fn step(&mut self) -> (Dataset, Vec<Update>) {
        self.epoch += 1;
        let mut updates = Vec::new();
        let mut points = Vec::with_capacity(self.base.len());
        for i in 0..self.base.len() {
            // Ornstein-Uhlenbeck-style mean-reverting log congestion
            let z = standard_normal(&mut self.rng);
            self.log_congestion[i] =
                (1.0 - self.cfg.reversion) * self.log_congestion[i] + self.cfg.volatility * z;
            let spiked = self.rng.gen_bool(self.cfg.spike_prob);
            let next = self.current_point(i, spiked);
            let changed = self
                .cfg
                .drifting_dims
                .iter()
                .any(|&d| (next.coord(d) - self.base[i].coord(d)).abs() > 0.0)
                || spiked;
            if changed {
                updates.push(Update::Remove(next.id()));
                updates.push(Update::Add(next.clone()));
            }
            points.push(next);
        }
        (
            Dataset::new(format!("drift(epoch={})", self.epoch), points),
            updates,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate_qws, QwsConfig};

    fn model() -> DriftModel {
        let data = generate_qws(&QwsConfig::new(200, 4));
        DriftModel::new(&data, DriftConfig::default())
    }

    #[test]
    fn epochs_advance_and_are_deterministic() {
        let mut a = model();
        let mut b = model();
        for _ in 0..5 {
            let (da, ua) = a.step();
            let (db, ub) = b.step();
            assert_eq!(da.points().len(), db.points().len());
            for (x, y) in da.points().iter().zip(db.points()) {
                assert_eq!(x.coords(), y.coords());
            }
            assert_eq!(ua.len(), ub.len());
        }
        assert_eq!(a.epoch(), 5);
    }

    #[test]
    fn non_drifting_dims_never_change() {
        let data = generate_qws(&QwsConfig::new(100, 4));
        let mut m = DriftModel::new(&data, DriftConfig::default());
        for _ in 0..10 {
            let (snapshot, _) = m.step();
            for (orig, now) in data.points().iter().zip(snapshot.points()) {
                for d in 1..4 {
                    assert_eq!(orig.coord(d), now.coord(d), "dim {d} must be fixed");
                }
                assert!(now.coord(0) >= 0.0);
            }
        }
    }

    #[test]
    fn congestion_is_mean_reverting() {
        // with reversion, the average |log congestion| stays bounded over
        // many epochs rather than growing like a random walk
        let data = generate_qws(&QwsConfig::new(50, 2));
        let mut m = DriftModel::new(
            &data,
            DriftConfig {
                reversion: 0.5,
                volatility: 0.2,
                spike_prob: 0.0,
                ..DriftConfig::default()
            },
        );
        let mut max_mean_drift = 0.0f64;
        for _ in 0..200 {
            m.step();
            let mean_abs: f64 = m.log_congestion.iter().map(|v| v.abs()).sum::<f64>()
                / m.log_congestion.len() as f64;
            max_mean_drift = max_mean_drift.max(mean_abs);
        }
        // stationary sd = volatility / sqrt(1-(1-r)^2) ≈ 0.23; far below a
        // 200-step random walk's ~2.8
        assert!(max_mean_drift < 1.0, "drift diverged: {max_mean_drift}");
    }

    #[test]
    fn updates_replay_to_the_snapshot() {
        use std::collections::HashMap;
        let data = generate_qws(&QwsConfig::new(80, 3));
        let mut m = DriftModel::new(&data, DriftConfig::default());
        let mut live: HashMap<u64, Point> =
            data.points().iter().map(|p| (p.id(), p.clone())).collect();
        for _ in 0..5 {
            let (snapshot, updates) = m.step();
            for u in updates {
                match u {
                    Update::Remove(id) => {
                        live.remove(&id);
                    }
                    Update::Add(p) => {
                        live.insert(p.id(), p);
                    }
                }
            }
            for p in snapshot.points() {
                let l = &live[&p.id()];
                assert_eq!(l.coords(), p.coords());
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_drifting_dim_rejected() {
        let data = generate_qws(&QwsConfig::new(10, 2));
        let _ = DriftModel::new(
            &data,
            DriftConfig {
                drifting_dims: vec![5],
                ..DriftConfig::default()
            },
        );
    }
}
