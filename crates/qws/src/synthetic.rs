//! The three classic skyline benchmark distributions (Börzsönyi, Kossmann,
//! Stocker — ICDE 2001), used by the ablation benches and property tests.
//!
//! * **Independent** — uniform on `[0, 1]^d`; skyline ~ `Θ(ln^{d−1} n / (d−1)!)`.
//! * **Correlated** — attributes track a shared latent level; tiny skylines
//!   (one good point dominates almost everything).
//! * **Anti-correlated** — points near the simplex `Σ v_i ≈ c`; being good
//!   on one attribute means being bad on another, so skylines are huge.
//!   This is the adversarial case for partitioned skyline processing.

use crate::dataset::Dataset;
use crate::rng::standard_normal;
use rand::{rngs::StdRng, Rng, SeedableRng};
use skyline_algos::point::Point;

/// The benchmark distribution families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Distribution {
    /// Uniform independent coordinates.
    Independent,
    /// Positively correlated coordinates.
    Correlated,
    /// Anti-correlated coordinates (near-constant coordinate sum).
    AntiCorrelated,
}

impl Distribution {
    /// Short name for dataset labels.
    pub fn name(self) -> &'static str {
        match self {
            Distribution::Independent => "indep",
            Distribution::Correlated => "corr",
            Distribution::AntiCorrelated => "anti",
        }
    }
}

/// Configuration for [`generate_synthetic`].
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticConfig {
    /// Number of points.
    pub cardinality: usize,
    /// Dimensionality.
    pub dimensions: usize,
    /// Distribution family.
    pub distribution: Distribution,
    /// RNG seed.
    pub seed: u64,
}

impl SyntheticConfig {
    /// Convenience constructor.
    pub fn new(cardinality: usize, dimensions: usize, distribution: Distribution) -> Self {
        Self {
            cardinality,
            dimensions,
            distribution,
            seed: 42,
        }
    }

    /// Builder: sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Generates a dataset on `[0, 1]^d` from the configured family.
///
/// # Panics
///
/// Panics if cardinality or dimensions is zero.
pub fn generate_synthetic(cfg: &SyntheticConfig) -> Dataset {
    assert!(cfg.cardinality >= 1, "cardinality must be positive");
    assert!(cfg.dimensions >= 1, "dimensions must be positive");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let d = cfg.dimensions;
    let mut points = Vec::with_capacity(cfg.cardinality);
    for id in 0..cfg.cardinality {
        let coords: Vec<f64> = match cfg.distribution {
            Distribution::Independent => (0..d).map(|_| rng.gen_range(0.0..1.0)).collect(),
            Distribution::Correlated => {
                // shared level + small independent jitter, clamped to [0,1]
                let level: f64 = rng.gen_range(0.0..1.0);
                (0..d)
                    .map(|_| (level + 0.1 * standard_normal(&mut rng)).clamp(0.0, 1.0))
                    .collect()
            }
            Distribution::AntiCorrelated => {
                // coordinate total concentrated around d/2, spread across
                // dimensions by random (exponential) proportions
                let total = (d as f64 / 2.0 + 0.05 * d as f64 * standard_normal(&mut rng)).max(0.0);
                let weights: Vec<f64> = (0..d).map(|_| -f64::ln(1.0 - rng.gen::<f64>())).collect();
                let wsum: f64 = weights.iter().sum();
                weights
                    .iter()
                    .map(|w| (total * w / wsum).clamp(0.0, 1.0))
                    .collect()
            }
        };
        points.push(Point::new(id as u64, coords));
    }
    Dataset::new(
        format!(
            "{}(n={},d={},seed={})",
            cfg.distribution.name(),
            cfg.cardinality,
            d,
            cfg.seed
        ),
        points,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyline_algos::prelude::*;

    fn skyline_size(dist: Distribution, n: usize, d: usize) -> usize {
        let ds = generate_synthetic(&SyntheticConfig::new(n, d, dist));
        bnl_skyline(ds.points(), &BnlConfig::default()).len()
    }

    #[test]
    fn shapes_and_determinism() {
        let cfg = SyntheticConfig::new(100, 3, Distribution::Independent).with_seed(5);
        let a = generate_synthetic(&cfg);
        let b = generate_synthetic(&cfg);
        assert_eq!(a.len(), 100);
        assert_eq!(a.dim(), 3);
        assert_eq!(a.points()[7].coords(), b.points()[7].coords());
    }

    #[test]
    fn coordinates_in_unit_box() {
        for dist in [
            Distribution::Independent,
            Distribution::Correlated,
            Distribution::AntiCorrelated,
        ] {
            let ds = generate_synthetic(&SyntheticConfig::new(500, 4, dist));
            for p in ds.points() {
                assert!(
                    p.coords().iter().all(|&v| (0.0..=1.0).contains(&v)),
                    "{dist:?}"
                );
            }
        }
    }

    #[test]
    fn skyline_size_ordering_matches_theory() {
        // anti-correlated ≫ independent ≫ correlated
        let anti = skyline_size(Distribution::AntiCorrelated, 3000, 3);
        let indep = skyline_size(Distribution::Independent, 3000, 3);
        let corr = skyline_size(Distribution::Correlated, 3000, 3);
        assert!(
            anti > indep && indep > corr,
            "anti={anti} indep={indep} corr={corr}"
        );
        assert!(corr < 50, "correlated skyline should be tiny, got {corr}");
    }

    #[test]
    fn anti_correlation_is_negative() {
        let ds = generate_synthetic(&SyntheticConfig::new(
            20_000,
            2,
            Distribution::AntiCorrelated,
        ));
        let xs: Vec<f64> = ds.points().iter().map(|p| p.coord(0)).collect();
        let ys: Vec<f64> = ds.points().iter().map(|p| p.coord(1)).collect();
        let n = xs.len() as f64;
        let mx = xs.iter().sum::<f64>() / n;
        let my = ys.iter().sum::<f64>() / n;
        let cov = xs
            .iter()
            .zip(&ys)
            .map(|(x, y)| (x - mx) * (y - my))
            .sum::<f64>()
            / n;
        assert!(cov < -0.005, "covariance {cov} should be negative");
    }

    #[test]
    fn names_encode_provenance() {
        let ds = generate_synthetic(&SyntheticConfig::new(10, 2, Distribution::Correlated));
        assert!(ds.name.starts_with("corr(n=10,d=2"));
    }
}
