//! Ingestion of the **real QWS dataset file** for users who have it.
//!
//! The QWS v2 distribution (Al-Masri & Mahmoud) is a CSV with one service
//! per line:
//!
//! ```text
//! Response Time, Availability, Throughput, Successability, Reliability,
//! Compliance, Best Practices, Latency, Documentation, Service Name, WSDL Address
//! ```
//!
//! [`load_qws_file`] parses that layout, **orients** every attribute to the
//! workspace's lower-is-better convention via the catalogue in
//! [`attributes`](crate::attributes), and reorders columns to the canonical
//! attribute order (response time first, latency second…). The real file has
//! no price column, so the loaded dataset has the nine QWS attributes; the
//! synthetic generator's `price` axis is simply absent.
//!
//! Lines starting with `#` and blank lines are skipped; by default a
//! malformed line is an error (silently dropping services would bias every
//! measurement). [`IngestOptions::max_bad_records`] relaxes that: up to the
//! budget, malformed rows are diverted to a [`DeadLetter`] report — with
//! their line numbers and reasons — instead of aborting the load, and every
//! quarantined row is traced as a `record_quarantined` event. A chaos
//! [`FaultPlan`] can additionally poison rows at the `ingest-row` site to
//! exercise exactly that path.

use crate::attributes::QWS_ATTRIBUTES;
use crate::dataset::Dataset;
use mrsky_chaos::{DeadLetter, FaultPlan, FaultSite};
use mrsky_trace::{EventKind, Tracer};
use skyline_algos::block::PointBlock;
use std::io::BufRead;
use std::path::Path;

/// Column order of the raw QWS v2 file.
const QWS_FILE_COLUMNS: [&str; 9] = [
    "response_time",
    "availability",
    "throughput",
    "successability",
    "reliability",
    "compliance",
    "best_practices",
    "latency",
    "documentation",
];

/// The canonical attribute order of datasets produced by [`load_qws_file`]
/// (the workspace order minus the synthetic `price` axis).
pub const LOADED_ATTRIBUTE_ORDER: [&str; 9] = [
    "response_time",
    "latency",
    "availability",
    "throughput",
    "successability",
    "reliability",
    "compliance",
    "best_practices",
    "documentation",
];

/// How leniently the ingest treats malformed input, and what chaos it
/// injects while reading.
#[derive(Debug, Clone)]
pub struct IngestOptions {
    /// `None` (default): strict — the first malformed or non-finite row
    /// aborts the load with an error. `Some(n)`: up to `n` malformed rows
    /// are quarantined into the dead-letter report; row `n + 1` aborts.
    pub max_bad_records: Option<u64>,
    /// Seeded fault plan; rules at [`FaultSite::IngestRow`] poison
    /// otherwise-valid rows (one coordinate becomes NaN before
    /// validation), exercising the quarantine path deterministically.
    pub chaos: FaultPlan,
}

impl Default for IngestOptions {
    fn default() -> Self {
        Self {
            max_bad_records: None,
            chaos: FaultPlan::off(),
        }
    }
}

impl IngestOptions {
    /// Strict ingest (the default): any malformed row is an error.
    pub fn strict() -> Self {
        Self::default()
    }

    /// Lenient ingest: tolerate up to `budget` malformed rows.
    pub fn with_bad_record_budget(budget: u64) -> Self {
        Self {
            max_bad_records: Some(budget),
            chaos: FaultPlan::off(),
        }
    }
}

/// Everything a (possibly lenient) ingest produced.
#[derive(Debug, Clone)]
pub struct IngestReport {
    /// The loaded, oriented dataset.
    pub dataset: Dataset,
    /// Service names, index-aligned with point ids.
    pub names: Vec<String>,
    /// Quarantined rows (empty on a strict or fully-clean load).
    pub dead_letter: DeadLetter,
}

/// Loads a QWS-format CSV file into an oriented [`Dataset`]. Returns the
/// dataset and the service names, index-aligned with point ids.
pub fn load_qws_file(path: &Path) -> std::io::Result<(Dataset, Vec<String>)> {
    load_qws_file_traced(path, &Tracer::disabled())
}

/// [`load_qws_file`] with ingestion tracing: emits
/// [`IngestStarted`](EventKind::IngestStarted)/[`IngestFinished`](EventKind::IngestFinished)
/// events on `tracer` and records `qws.ingest.*` counters (service count,
/// skipped comment/blank lines, values clamped into catalogue range) into
/// the process-global metrics registry.
///
/// This entry point is strict — a malformed or non-finite row aborts the
/// load with an error rather than being skipped — so
/// `IngestFinished.rejected` is 0 on every successful load. Use
/// [`load_qws_file_with`] with [`IngestOptions::max_bad_records`] for the
/// lenient, quarantining loader.
pub fn load_qws_file_traced(
    path: &Path,
    tracer: &Tracer,
) -> std::io::Result<(Dataset, Vec<String>)> {
    let report = load_qws_file_with(path, tracer, &IngestOptions::strict())?;
    Ok((report.dataset, report.names))
}

/// The full-control loader behind [`load_qws_file`]: tracing, optional
/// malformed-row quarantine, and chaos row poisoning (see
/// [`IngestOptions`]).
///
/// # Errors
///
/// I/O errors; any malformed row under strict options; or the
/// `max_bad_records + 1`-th malformed row under lenient options (the
/// dead-letter budget is exhausted — by then the report names every
/// offender, but the load still refuses to succeed).
pub fn load_qws_file_with(
    path: &Path,
    tracer: &Tracer,
    opts: &IngestOptions,
) -> std::io::Result<IngestReport> {
    // Services accumulate straight into one columnar block: a single flat
    // coordinate buffer for the whole file instead of one heap row per
    // service. Ids are row indices, so they are stable across any
    // block/point round-trip.
    let mut block = PointBlock::new(LOADED_ATTRIBUTE_ORDER.len());
    let mut names = Vec::new();
    let dead = ingest_rows(path, tracer, opts, |id, coords, name| {
        block
            .push(id, coords)
            .expect("parse_row validated dimension and finiteness");
        names.push(name);
    })?;
    if block.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "QWS file contains no services",
        ));
    }
    let n = block.len();
    Ok(IngestReport {
        dataset: Dataset::new(format!("qws-file(n={n})"), block.to_points()),
        names,
        dead_letter: dead,
    })
}

/// One bounded chunk of a streamed ingest: `chunk_rows` services (fewer in
/// the final chunk) as a columnar block whose ids continue the file's
/// 0-based row numbering from `first_id`.
#[derive(Debug, Clone)]
pub struct IngestChunk {
    /// The chunk's services, columnar.
    pub block: PointBlock,
    /// Service names, index-aligned with the block's rows.
    pub names: Vec<String>,
    /// Id of the chunk's first service (= services seen before it).
    pub first_id: u64,
}

/// Streaming ingest: parses the file exactly like [`load_qws_file_with`]
/// but hands services to `sink` in bounded [`IngestChunk`]s of at most
/// `chunk_rows` services, so peak memory is one chunk (plus the reader's
/// line buffer) instead of the whole file. Returns the dead-letter report.
///
/// # Errors
///
/// Same as [`load_qws_file_with`], plus `chunk_rows == 0` and empty files
/// are `InvalidData` errors.
pub fn load_qws_file_chunked(
    path: &Path,
    tracer: &Tracer,
    opts: &IngestOptions,
    chunk_rows: usize,
    sink: &mut dyn FnMut(IngestChunk),
) -> std::io::Result<DeadLetter> {
    if chunk_rows == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "chunk_rows must be at least 1",
        ));
    }
    let mut block = PointBlock::new(LOADED_ATTRIBUTE_ORDER.len());
    let mut names: Vec<String> = Vec::with_capacity(chunk_rows);
    let mut first_id = 0u64;
    let mut total = 0u64;
    let dead = ingest_rows(path, tracer, opts, |id, coords, name| {
        block
            .push(id, coords)
            .expect("parse_row validated dimension and finiteness");
        names.push(name);
        total += 1;
        if block.len() >= chunk_rows {
            sink(IngestChunk {
                block: std::mem::replace(&mut block, PointBlock::new(LOADED_ATTRIBUTE_ORDER.len())),
                names: std::mem::take(&mut names),
                first_id,
            });
            first_id = id + 1;
        }
    })?;
    if !block.is_empty() {
        sink(IngestChunk {
            block,
            names,
            first_id,
        });
    }
    if total == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "QWS file contains no services",
        ));
    }
    Ok(dead)
}

/// The shared row pump behind the whole-file and chunked loaders: opens the
/// file, streams it line by line through **one reused buffer** (no per-line
/// `String` allocation), parses/orients/validates each row, and calls
/// `on_row(id, coords, name)` for every accepted service. Emits the ingest
/// trace events and `qws.ingest.*` counters.
fn ingest_rows(
    path: &Path,
    tracer: &Tracer,
    opts: &IngestOptions,
    mut on_row: impl FnMut(u64, &[f64], String),
) -> std::io::Result<DeadLetter> {
    let source = path.display().to_string();
    tracer.emit(|| EventKind::IngestStarted {
        source: source.clone(),
    });
    let strict = opts.max_bad_records.is_none();
    let mut dead = DeadLetter::with_budget(opts.max_bad_records.unwrap_or(0) as usize);
    let mut skipped = 0u64;
    let mut clamped = 0u64;
    let mut services = 0u64;
    let file = std::fs::File::open(path)?;
    // attribute specs in raw-file column order, then an output permutation
    let file_specs: Vec<&crate::attributes::AttributeSpec> = QWS_FILE_COLUMNS
        .iter()
        .map(|name| {
            QWS_ATTRIBUTES
                .iter()
                .find(|a| a.name == *name)
                .expect("catalogue covers every QWS column")
        })
        .collect();
    let out_of: Vec<usize> = LOADED_ATTRIBUTE_ORDER
        .iter()
        .map(|name| {
            QWS_FILE_COLUMNS
                .iter()
                .position(|c| c == name)
                .expect("orders cover the same attributes")
        })
        .collect();

    let mut reader = std::io::BufReader::new(file);
    let mut buf = String::with_capacity(256);
    let mut lineno = 0usize;
    loop {
        buf.clear();
        if reader.read_line(&mut buf)? == 0 {
            break;
        }
        let lineno_here = lineno;
        lineno += 1;
        let trimmed = buf.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            skipped += 1;
            continue;
        }
        let poison = opts
            .chaos
            .decide(FaultSite::IngestRow, &source, lineno_here as u64, 0);
        if let Some(kind) = poison {
            tracer.emit(|| EventKind::FaultInjected {
                site: FaultSite::IngestRow.as_str().to_string(),
                fault: kind.as_str().to_string(),
                scope: source.clone(),
                index: lineno_here as u64,
                attempt: 0,
            });
        }
        match parse_row(
            trimmed,
            &file_specs,
            &out_of,
            poison.is_some(),
            &mut clamped,
        ) {
            Ok((coords, name)) => {
                on_row(services, &coords, name);
                services += 1;
            }
            Err(reason) if strict => return Err(bad_line(lineno_here, &reason)),
            Err(reason) => {
                tracer.emit(|| EventKind::RecordQuarantined {
                    source: source.clone(),
                    line: (lineno_here + 1) as u64,
                    reason: reason.clone(),
                });
                if !dead.push(&source, (lineno_here + 1) as u64, &reason) {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!(
                            "too many bad records (budget {}):\n{}",
                            dead.max_bad_records,
                            dead.render()
                        ),
                    ));
                }
            }
        }
    }
    let registry = mrsky_trace::metrics();
    registry.incr("qws.ingest.services", services);
    registry.incr("qws.ingest.lines_skipped", skipped);
    registry.incr("qws.ingest.values_clamped", clamped);
    registry.incr("qws.ingest.quarantined", dead.len() as u64);
    tracer.emit(|| EventKind::IngestFinished {
        services,
        rejected: dead.len() as u64,
    });
    Ok(dead)
}

/// Parses, clamps, orients, and validates one CSV row. `Err` is the
/// human-readable rejection reason (strict loads turn it into an error,
/// lenient loads into a dead-letter record). When `poison` is set a chaos
/// fault corrupts the first QoS value before validation, so the row is
/// rejected exactly as a genuinely corrupt one would be.
fn parse_row(
    trimmed: &str,
    file_specs: &[&crate::attributes::AttributeSpec],
    out_of: &[usize],
    poison: bool,
    clamped: &mut u64,
) -> Result<([f64; 9], String), String> {
    let fields: Vec<&str> = trimmed.split(',').map(str::trim).collect();
    if fields.len() < 10 {
        return Err("fewer than 10 fields".to_string());
    }
    let mut raw = [0.0f64; 9];
    for (i, slot) in raw.iter_mut().enumerate() {
        *slot = fields[i]
            .parse::<f64>()
            .map_err(|_| "non-numeric QoS field".to_string())?;
    }
    if poison {
        raw[0] = f64::NAN;
    }
    let mut coords = [0.0f64; 9];
    for (slot, &file_col) in coords.iter_mut().zip(out_of) {
        let spec = file_specs[file_col];
        // clamp into the catalogue range first: the real file has a
        // handful of out-of-range artefacts
        let v = raw[file_col].clamp(spec.range.0, spec.range.1);
        *clamped += u64::from(v.is_finite() && v != raw[file_col]);
        *slot = spec.orient(v);
    }
    // "NaN" parses as a perfectly legal f64, and poisoning injects one:
    // reject either before the row reaches the block
    if coords.iter().any(|c| !c.is_finite()) {
        return Err("non-finite QoS field".to_string());
    }
    Ok((coords, fields[9].to_string()))
}

fn bad_line(lineno: usize, what: &str) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("malformed QWS line {}: {what}", lineno + 1),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn write_fixture(lines: &[&str]) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("qws-ingest-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!(
            "fixture-{}.csv",
            u64::from(std::process::id()) + lines.len() as u64 * 1000
        ));
        let mut f = std::fs::File::create(&path).unwrap();
        for l in lines {
            writeln!(f, "{l}").unwrap();
        }
        path
    }

    // RT, Avail, Thr, Succ, Rel, Compl, BP, Lat, Doc, Name, WSDL
    const GOOD: &str =
        "120.5, 95.0, 10.2, 96.0, 73.0, 80.0, 60.0, 30.5, 50.0, FastWeather, http://x/a?wsdl";
    const SLOW: &str =
        "2500.0, 40.0, 1.0, 45.0, 40.0, 50.0, 40.0, 900.0, 10.0, SlowWeather, http://x/b?wsdl";

    #[test]
    fn loads_orients_and_reorders() {
        let path = write_fixture(&["# header comment", GOOD, "", SLOW]);
        let (data, names) = load_qws_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(data.len(), 2);
        assert_eq!(data.dim(), 9);
        assert_eq!(names, vec!["FastWeather", "SlowWeather"]);
        // column 0 = oriented response time = raw - 37
        assert!((data.points()[0].coord(0) - (120.5 - 37.0)).abs() < 1e-9);
        // column 2 = oriented availability = 100 - raw
        assert!((data.points()[0].coord(2) - (100.0 - 95.0)).abs() < 1e-9);
        // the fast service dominates the slow one on every axis
        assert!(skyline_algos::dominance::dominates(
            &data.points()[0],
            &data.points()[1]
        ));
    }

    #[test]
    fn attribute_order_matches_catalogue_names() {
        for name in LOADED_ATTRIBUTE_ORDER {
            assert!(
                QWS_ATTRIBUTES.iter().any(|a| a.name == name),
                "{name} missing from catalogue"
            );
        }
    }

    #[test]
    fn out_of_range_values_are_clamped() {
        let line = "10.0, 150.0, 10.0, 96.0, 73.0, 80.0, 60.0, 30.0, 50.0, Weird, http://x?wsdl";
        let path = write_fixture(&[line]);
        let (data, _) = load_qws_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        // availability clamped to 100 → oriented 0; response time clamped to 37 → 0
        assert_eq!(data.points()[0].coord(2), 0.0);
        assert_eq!(data.points()[0].coord(0), 0.0);
    }

    #[test]
    fn malformed_lines_are_errors() {
        for bad in [
            "1,2,3",                                                  // too few fields
            "a, 95, 10, 96, 73, 80, 60, 30, 50, Name, http://x?wsdl", // non-numeric
        ] {
            let path = write_fixture(&[GOOD, bad]);
            assert!(load_qws_file(&path).is_err(), "{bad}");
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn non_finite_values_are_errors() {
        let line = "NaN, 95.0, 10.0, 96.0, 73.0, 80.0, 60.0, 30.0, 50.0, NanSvc, http://x?wsdl";
        let path = write_fixture(&[GOOD, line]);
        let err = load_qws_file(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(err.to_string().contains("non-finite"), "{err}");
    }

    #[test]
    fn ids_are_stable_across_block_round_trip() {
        let path = write_fixture(&[GOOD, SLOW, GOOD, SLOW]);
        let (data, names) = load_qws_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        // ids are 0-based file order, aligned with names, and survive a
        // block round-trip verbatim
        let block = PointBlock::from_points(data.points()).unwrap();
        assert_eq!(block.ids(), &[0, 1, 2, 3]);
        assert_eq!(block.to_points(), data.points());
        assert_eq!(names.len(), block.len());
        for (i, p) in data.points().iter().enumerate() {
            assert_eq!(p.id(), i as u64);
        }
    }

    #[test]
    fn traced_load_emits_ingest_events_and_counters() {
        let path = write_fixture(&["# header", GOOD, "", SLOW]);
        let before = mrsky_trace::metrics().snapshot();
        mrsky_trace::metrics().set_enabled(true);
        let tracer = Tracer::in_memory();
        let (data, _) = load_qws_file_traced(&path, &tracer).unwrap();
        mrsky_trace::metrics().set_enabled(false);
        let after = mrsky_trace::metrics().snapshot();
        std::fs::remove_file(&path).ok();
        assert_eq!(data.len(), 2);
        let events = tracer.drain();
        assert!(matches!(
            events.first().map(|e| &e.kind),
            Some(EventKind::IngestStarted { source }) if source.contains("fixture")
        ));
        assert!(matches!(
            events.last().map(|e| &e.kind),
            Some(EventKind::IngestFinished {
                services: 2,
                rejected: 0
            })
        ));
        let delta = |name: &str| {
            after.counters.get(name).copied().unwrap_or(0)
                - before.counters.get(name).copied().unwrap_or(0)
        };
        // other tests may ingest concurrently while the flag is up: assert >=
        assert!(delta("qws.ingest.services") >= 2);
        assert!(delta("qws.ingest.lines_skipped") >= 2, "comment + blank");
    }

    #[test]
    fn untraced_load_emits_nothing() {
        let path = write_fixture(&[GOOD]);
        let tracer = Tracer::disabled();
        let (data, _) = load_qws_file_traced(&path, &tracer).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(data.len(), 1);
        assert!(tracer.drain().is_empty());
    }

    #[test]
    fn empty_file_is_an_error() {
        let path = write_fixture(&["# only a comment"]);
        assert!(load_qws_file(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    fn write_named_fixture(tag: &str, lines: &[&str]) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("qws-ingest-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("fixture-{tag}-{}.csv", std::process::id()));
        let mut f = std::fs::File::create(&path).unwrap();
        for l in lines {
            writeln!(f, "{l}").unwrap();
        }
        path
    }

    const BAD_SHORT: &str = "1,2,3";
    const BAD_NAN: &str =
        "NaN, 95.0, 10.0, 96.0, 73.0, 80.0, 60.0, 30.0, 50.0, NanSvc, http://x?wsdl";

    #[test]
    fn lenient_load_quarantines_bad_rows_and_reports_them() {
        let path = write_named_fixture("lenient", &[GOOD, BAD_SHORT, SLOW, BAD_NAN]);
        let tracer = Tracer::in_memory();
        let opts = IngestOptions::with_bad_record_budget(5);
        let report = load_qws_file_with(&path, &tracer, &opts).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(report.dataset.len(), 2);
        assert_eq!(report.names, vec!["FastWeather", "SlowWeather"]);
        // the dead letter names both offenders with 1-based line numbers
        let recs = report.dead_letter.records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].line, 2);
        assert!(
            recs[0].reason.contains("fewer than 10"),
            "{}",
            recs[0].reason
        );
        assert_eq!(recs[1].line, 4);
        assert!(recs[1].reason.contains("non-finite"), "{}", recs[1].reason);
        assert!(!report.dead_letter.over_budget());
        // every quarantine is traced, and the finish event counts them
        let events = tracer.drain();
        let quarantined: Vec<_> = events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::RecordQuarantined { line, .. } => Some(*line),
                _ => None,
            })
            .collect();
        assert_eq!(quarantined, vec![2, 4]);
        assert!(events.iter().any(|e| matches!(
            e.kind,
            EventKind::IngestFinished {
                services: 2,
                rejected: 2
            }
        )));
    }

    #[test]
    fn blown_bad_record_budget_aborts_with_a_dead_letter_report() {
        let path = write_named_fixture("budget", &[GOOD, BAD_SHORT, BAD_NAN]);
        let opts = IngestOptions::with_bad_record_budget(1);
        let err = load_qws_file_with(&path, &Tracer::disabled(), &opts).unwrap_err();
        std::fs::remove_file(&path).ok();
        let msg = err.to_string();
        assert!(msg.contains("too many bad records"), "{msg}");
        // the report still names every offender, including the one over budget
        assert!(msg.contains(":2: fewer than 10"), "{msg}");
        assert!(msg.contains(":3: non-finite"), "{msg}");
    }

    #[test]
    fn default_options_are_strict() {
        let path = write_named_fixture("strict", &[GOOD, BAD_SHORT]);
        let err =
            load_qws_file_with(&path, &Tracer::disabled(), &IngestOptions::default()).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(err.to_string().contains("malformed QWS line 2"), "{err}");
    }

    #[test]
    fn chaos_row_poisoning_is_deterministic_and_traced() {
        use mrsky_chaos::{FaultKind, SiteRule};
        // 30 valid rows differing only in response time (GOOD minus its
        // leading "120.5")
        let lines: Vec<String> = (0..30)
            .map(|i| format!("{}{}", 100 + i, &GOOD[5..]))
            .collect();
        let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
        let path = write_named_fixture("poison", &refs);
        let opts = IngestOptions {
            max_bad_records: Some(30),
            chaos: FaultPlan {
                seed: 11,
                rules: vec![SiteRule {
                    site: FaultSite::IngestRow,
                    kind: FaultKind::PoisonRow,
                    permille: 400,
                }],
                ..FaultPlan::off()
            },
        };
        let tracer = Tracer::in_memory();
        let first = load_qws_file_with(&path, &tracer, &opts).unwrap();
        let second = load_qws_file_with(&path, &Tracer::disabled(), &opts).unwrap();
        std::fs::remove_file(&path).ok();
        // some rows poisoned, some survive; every row is accounted for
        assert!(!first.dead_letter.is_empty(), "seed 11 should poison rows");
        assert_ne!(first.dataset.len(), 0);
        assert_eq!(first.dataset.len() + first.dead_letter.len(), 30);
        // the same plan over the same file quarantines the same rows
        assert_eq!(first.dead_letter, second.dead_letter);
        assert_eq!(first.dataset.points(), second.dataset.points());
        // each poisoned row traced a fault injection and a quarantine
        let events = tracer.drain();
        let faults = events
            .iter()
            .filter(|e| {
                matches!(&e.kind, EventKind::FaultInjected { site, fault, .. }
                    if site == "ingest-row" && fault == "poison-row")
            })
            .count();
        let quarantines = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::RecordQuarantined { .. }))
            .count();
        assert_eq!(faults, first.dead_letter.len());
        assert_eq!(quarantines, first.dead_letter.len());
    }

    #[test]
    fn strict_load_fails_on_a_poisoned_row() {
        use mrsky_chaos::{FaultKind, SiteRule};
        let path = write_named_fixture("poison-strict", &[GOOD, SLOW]);
        let opts = IngestOptions {
            max_bad_records: None,
            chaos: FaultPlan {
                seed: 3,
                rules: vec![SiteRule {
                    site: FaultSite::IngestRow,
                    kind: FaultKind::PoisonRow,
                    permille: 999,
                }],
                ..FaultPlan::off()
            },
        };
        let err = load_qws_file_with(&path, &Tracer::disabled(), &opts).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(err.to_string().contains("non-finite"), "{err}");
    }

    #[test]
    fn loaded_data_runs_through_the_skyline_stack() {
        use skyline_algos::prelude::*;
        let lines: Vec<String> = (0..40)
            .map(|i| {
                format!(
                    "{}, {}, 5.0, 80.0, 60.0, 70.0, 55.0, {}, 40.0, Svc{}, http://x/{i}?wsdl",
                    100.0 + 70.0 * f64::from(i % 7),
                    60.0 + 4.0 * f64::from(i % 9),
                    10.0 + 30.0 * f64::from(i % 5),
                    i
                )
            })
            .collect();
        let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
        let path = write_fixture(&refs);
        let (data, _) = load_qws_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let sky = bnl_skyline(data.points(), &BnlConfig::default());
        assert!(!sky.is_empty() && sky.len() < data.len());
    }

    #[test]
    fn chunked_ingest_concatenates_to_the_whole_file() {
        let lines: Vec<String> = (0..13)
            .map(|i| format!("{}{}", 100 + i, &GOOD[5..]))
            .collect();
        let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
        let path = write_named_fixture("chunked", &refs);
        let whole =
            load_qws_file_with(&path, &Tracer::disabled(), &IngestOptions::default()).unwrap();
        let mut chunks = Vec::new();
        let dead = load_qws_file_chunked(
            &path,
            &Tracer::disabled(),
            &IngestOptions::default(),
            5,
            &mut |c| chunks.push(c),
        )
        .unwrap();
        std::fs::remove_file(&path).ok();
        assert!(dead.is_empty());
        // bounded chunks: 13 rows at 5/chunk → 5, 5, 3, ids contiguous
        assert_eq!(
            chunks.iter().map(|c| c.block.len()).collect::<Vec<_>>(),
            vec![5, 5, 3]
        );
        assert_eq!(
            chunks.iter().map(|c| c.first_id).collect::<Vec<_>>(),
            vec![0, 5, 10]
        );
        let mut names = Vec::new();
        let mut points = Vec::new();
        for c in &chunks {
            assert!(c.block.len() <= 5, "chunk exceeds its bound");
            assert_eq!(c.block.len(), c.names.len());
            names.extend(c.names.iter().cloned());
            points.extend(c.block.to_points());
        }
        assert_eq!(names, whole.names);
        assert_eq!(points, whole.dataset.points());
    }

    #[test]
    fn chunked_ingest_matches_whole_file_under_chaos_quarantine() {
        use mrsky_chaos::{FaultKind, SiteRule};
        let lines: Vec<String> = (0..30)
            .map(|i| format!("{}{}", 100 + i, &GOOD[5..]))
            .collect();
        let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
        let path = write_named_fixture("chunked-chaos", &refs);
        let opts = IngestOptions {
            max_bad_records: Some(30),
            chaos: FaultPlan {
                seed: 11,
                rules: vec![SiteRule {
                    site: FaultSite::IngestRow,
                    kind: FaultKind::PoisonRow,
                    permille: 400,
                }],
                ..FaultPlan::off()
            },
        };
        let whole = load_qws_file_with(&path, &Tracer::disabled(), &opts).unwrap();
        let mut streamed = Vec::new();
        let dead = load_qws_file_chunked(&path, &Tracer::disabled(), &opts, 4, &mut |c| {
            streamed.extend(c.block.to_points());
        })
        .unwrap();
        std::fs::remove_file(&path).ok();
        // the same rows are poisoned either way: ids, coords, and the
        // dead-letter report are identical
        assert_eq!(dead, whole.dead_letter);
        assert_eq!(streamed, whole.dataset.points());
    }

    #[test]
    fn chunked_ingest_rejects_zero_rows_and_empty_files() {
        let path = write_named_fixture("chunked-bad", &[GOOD]);
        let err = load_qws_file_chunked(
            &path,
            &Tracer::disabled(),
            &IngestOptions::default(),
            0,
            &mut |_| {},
        )
        .unwrap_err();
        assert!(err.to_string().contains("at least 1"), "{err}");
        std::fs::remove_file(&path).ok();
        let empty = write_named_fixture("chunked-empty", &["# nothing"]);
        let err = load_qws_file_chunked(
            &empty,
            &Tracer::disabled(),
            &IngestOptions::default(),
            8,
            &mut |_| {},
        )
        .unwrap_err();
        assert!(err.to_string().contains("no services"), "{err}");
        std::fs::remove_file(&empty).ok();
    }
}
