//! # qws-data
//!
//! Dataset substrate for the IPDPSW 2012 skyline reproduction: a synthetic
//! re-creation of the **QWS dataset** (Al-Masri & Mahmoud — measurements of
//! nine QoS attributes over ~10,000 real web services) plus the three
//! standard skyline benchmark distributions of Börzsönyi et al.
//!
//! ## The substitution, stated plainly
//!
//! The paper evaluates on QWS *extended by the authors themselves to 100,000
//! services with 10 attributes by "randomly generating QoS values … following
//! the distribution of the QWS dataset"*. The original file is not
//! redistributable here, so this crate regenerates services from the
//! **published per-attribute summary statistics** of QWS v2 (mean, spread,
//! range, direction), with a controllable quality correlation between
//! attributes — the same resampling methodology the authors used, applied
//! one step earlier. Skyline sizes and partition behaviour depend on the
//! marginal ranges and the correlation structure, both of which are
//! preserved.
//!
//! * [`attributes`] — the nine QWS attributes + a price attribute, their
//!   published statistics, units and directions.
//! * [`generator`] — the QWS-like sampler ([`QwsConfig`], [`generate_qws`]).
//! * [`synthetic`] — independent / correlated / anti-correlated benchmark
//!   generators.
//! * [`dataset`] — the [`Dataset`] container, CSV persistence, and an update
//!   stream for incremental experiments.
//! * [`registry`] — a UDDI-style service registry (names, providers,
//!   functional categories) feeding the skyline pipeline per category.
//! * [`rng`] — small self-contained normal/log-normal samplers (the `rand`
//!   crate's distributions live in `rand_distr`, which is outside this
//!   workspace's dependency budget).
//!
//! All generators are seeded and fully deterministic.

#![warn(missing_docs)]

pub mod attributes;
pub mod dataset;
pub mod drift;
pub mod generator;
pub mod ingest;
pub mod registry;
pub mod rng;
pub mod stats;
pub mod synthetic;

pub use attributes::{AttributeSpec, Direction, QWS_ATTRIBUTES};
pub use dataset::Dataset;
pub use drift::{DriftConfig, DriftModel};
pub use generator::{extend_qws, generate_qws, QwsConfig};
pub use ingest::{load_qws_file, load_qws_file_chunked, IngestChunk};
pub use registry::{Category, Registry, ServiceEntry};
pub use stats::{correlation_matrix, dimension_stats, mean_pairwise_correlation};
pub use synthetic::{generate_synthetic, Distribution, SyntheticConfig};
