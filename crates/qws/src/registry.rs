//! A web-service registry — the UDDI stand-in of the paper's application
//! layer.
//!
//! The paper's introduction frames everything around service discovery: a
//! search engine (Seekda) returns *"100 weather forecast providers or 200
//! stock-query answering providers"*, and the skyline machinery picks the
//! best by QoS. [`Registry`] models that world: services carry a name, a
//! provider and a functional [`Category`]; discovery filters by category and
//! hands the matching QoS vectors to the skyline pipeline as a
//! [`Dataset`](crate::Dataset).

use crate::dataset::Dataset;
use crate::generator::{generate_qws, QwsConfig};
use rand::{rngs::StdRng, Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use skyline_algos::point::Point;

/// Functional categories, after the paper's own examples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Category {
    /// Weather forecast providers (the paper's first example).
    Weather,
    /// Stock-quote providers (the paper's second example).
    StockQuotes,
    /// Currency conversion.
    CurrencyExchange,
    /// Geocoding / maps.
    Geocoding,
    /// E-mail validation and delivery.
    Email,
    /// SMS gateways.
    Sms,
}

impl Category {
    /// All categories, for enumeration.
    pub const ALL: [Category; 6] = [
        Category::Weather,
        Category::StockQuotes,
        Category::CurrencyExchange,
        Category::Geocoding,
        Category::Email,
        Category::Sms,
    ];

    /// Short label.
    pub fn name(self) -> &'static str {
        match self {
            Category::Weather => "weather",
            Category::StockQuotes => "stock-quotes",
            Category::CurrencyExchange => "currency",
            Category::Geocoding => "geocoding",
            Category::Email => "email",
            Category::Sms => "sms",
        }
    }
}

/// One registered service: identity plus its QoS vector.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServiceEntry {
    /// Stable id (matches the QoS point id).
    pub id: u64,
    /// Service display name.
    pub name: String,
    /// Provider organisation.
    pub provider: String,
    /// Functional category.
    pub category: Category,
    /// Oriented QoS vector (lower is better on every attribute).
    pub qos: Point,
}

/// An in-memory service registry.
#[derive(Debug, Clone)]
pub struct Registry {
    entries: Vec<ServiceEntry>,
    dims: usize,
}

impl Registry {
    /// Builds a synthetic registry of `n` services with `dims` QoS
    /// attributes, deterministically from `seed`. Categories and providers
    /// are assigned pseudo-randomly; QoS vectors come from the QWS-like
    /// generator.
    ///
    /// # Examples
    ///
    /// ```
    /// use qws_data::registry::{Category, Registry};
    ///
    /// let registry = Registry::synthetic(500, 4, 42);
    /// let weather = registry.discover(Category::Weather);
    /// assert!(!weather.is_empty());
    /// let data = registry.category_dataset(Category::Weather).unwrap();
    /// assert_eq!(data.len(), weather.len());
    /// ```
    pub fn synthetic(n: usize, dims: usize, seed: u64) -> Self {
        let data = generate_qws(&QwsConfig::new(n, dims).with_seed(seed));
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
        let entries = data
            .points()
            .iter()
            .map(|p| {
                let category = Category::ALL[rng.gen_range(0..Category::ALL.len())];
                let provider = format!("provider-{:03}", rng.gen_range(0..120));
                ServiceEntry {
                    id: p.id(),
                    name: format!("{}-svc-{}", category.name(), p.id()),
                    provider,
                    category,
                    qos: p.clone(),
                }
            })
            .collect();
        Self { entries, dims }
    }

    /// Number of registered services.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no services are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// QoS dimensionality.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// All entries.
    pub fn entries(&self) -> &[ServiceEntry] {
        &self.entries
    }

    /// Looks up a service by id (the skyline pipeline reports ids).
    pub fn get(&self, id: u64) -> Option<&ServiceEntry> {
        self.entries.iter().find(|e| e.id == id)
    }

    /// Services in `category` — the paper's "many providers competing for
    /// the similar services" discovery step.
    pub fn discover(&self, category: Category) -> Vec<&ServiceEntry> {
        self.entries
            .iter()
            .filter(|e| e.category == category)
            .collect()
    }

    /// The QoS dataset of one category, ready for a
    /// [`SkylineJob`](https://docs.rs/mr-skyline) run. Returns `None` when
    /// the category is empty.
    pub fn category_dataset(&self, category: Category) -> Option<Dataset> {
        let points: Vec<Point> = self
            .discover(category)
            .into_iter()
            .map(|e| e.qos.clone())
            .collect();
        if points.is_empty() {
            None
        } else {
            Some(Dataset::new(
                format!("registry:{}(n={})", category.name(), points.len()),
                points,
            ))
        }
    }

    /// The full registry as one dataset.
    pub fn full_dataset(&self) -> Dataset {
        Dataset::new(
            format!("registry:all(n={})", self.len()),
            self.entries.iter().map(|e| e.qos.clone()).collect(),
        )
    }

    /// Registers a new service, assigning the next free id. Returns the id.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        provider: impl Into<String>,
        category: Category,
        qos: Vec<f64>,
    ) -> u64 {
        assert_eq!(qos.len(), self.dims, "QoS vector dimensionality mismatch");
        let id = self.entries.iter().map(|e| e.id).max().map_or(0, |m| m + 1);
        self.entries.push(ServiceEntry {
            id,
            name: name.into(),
            provider: provider.into(),
            category,
            qos: Point::new(id, qos),
        });
        id
    }

    /// Deregisters a service by id. Returns `true` if it existed.
    pub fn deregister(&mut self, id: u64) -> bool {
        let before = self.entries.len();
        self.entries.retain(|e| e.id != id);
        self.entries.len() != before
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> Registry {
        Registry::synthetic(600, 4, 7)
    }

    #[test]
    fn synthetic_registry_shape() {
        let r = registry();
        assert_eq!(r.len(), 600);
        assert_eq!(r.dims(), 4);
        assert!(!r.is_empty());
        // determinism
        let r2 = Registry::synthetic(600, 4, 7);
        assert_eq!(r.entries()[17].name, r2.entries()[17].name);
        assert_eq!(r.entries()[17].qos.coords(), r2.entries()[17].qos.coords());
    }

    #[test]
    fn every_category_is_populated() {
        let r = registry();
        for c in Category::ALL {
            assert!(!r.discover(c).is_empty(), "{}", c.name());
        }
        let total: usize = Category::ALL.iter().map(|&c| r.discover(c).len()).sum();
        assert_eq!(total, r.len());
    }

    #[test]
    fn category_dataset_matches_discovery() {
        let r = registry();
        let weather = r.discover(Category::Weather);
        let data = r.category_dataset(Category::Weather).expect("non-empty");
        assert_eq!(data.len(), weather.len());
        assert_eq!(data.dim(), 4);
        for (e, p) in weather.iter().zip(data.points()) {
            assert_eq!(e.id, p.id());
        }
    }

    #[test]
    fn full_dataset_covers_everything() {
        let r = registry();
        assert_eq!(r.full_dataset().len(), r.len());
    }

    #[test]
    fn lookup_by_id() {
        let r = registry();
        let e = r.get(42).expect("id 42 exists");
        assert_eq!(e.id, 42);
        assert!(r.get(999_999).is_none());
    }

    #[test]
    fn register_and_deregister() {
        let mut r = registry();
        let id = r.register("acme-weather", "acme", Category::Weather, vec![1.0; 4]);
        assert_eq!(r.len(), 601);
        assert_eq!(r.get(id).unwrap().provider, "acme");
        assert!(r.deregister(id));
        assert!(!r.deregister(id), "double deregister is a no-op");
        assert_eq!(r.len(), 600);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn register_rejects_wrong_dims() {
        let mut r = registry();
        let _ = r.register("bad", "p", Category::Sms, vec![1.0; 3]);
    }

    #[test]
    fn skyline_of_a_category_works_end_to_end() {
        use skyline_algos::prelude::*;
        let r = registry();
        let data = r
            .category_dataset(Category::StockQuotes)
            .expect("non-empty");
        let sky = bnl_skyline(data.points(), &BnlConfig::default());
        assert!(!sky.is_empty());
        // every skyline id resolves back to a registry entry of the category
        for p in &sky {
            let e = r.get(p.id()).expect("skyline id resolves");
            assert_eq!(e.category, Category::StockQuotes);
        }
    }
}
