//! Self-contained samplers for the distributions the generators need.
//!
//! The workspace's dependency budget includes `rand` but not `rand_distr`,
//! so the handful of non-uniform samplers live here: Box–Muller normals, a
//! log-normal built on top, and clamped variants for bounded QoS attributes.

use rand::Rng;

/// Samples a standard normal via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1] to keep ln(u1) finite.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples `N(mean, sd²)`.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sd: f64) -> f64 {
    assert!(sd >= 0.0, "standard deviation must be non-negative");
    mean + sd * standard_normal(rng)
}

/// Samples `N(mean, sd²)` clamped into `[lo, hi]` — the pragmatic truncated
/// normal used for bounded percentage-style attributes. Clamping (rather
/// than rejection) slightly inflates the boundary mass, which mirrors real
/// QWS data where many services pin at 100 % availability.
pub fn clamped_normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sd: f64, lo: f64, hi: f64) -> f64 {
    assert!(lo <= hi, "invalid clamp range");
    normal(rng, mean, sd).clamp(lo, hi)
}

/// Samples a log-normal with the given parameters of the *underlying*
/// normal, clamped into `[lo, hi]` — for heavy-tailed attributes such as
/// response time and latency.
pub fn clamped_log_normal<R: Rng + ?Sized>(
    rng: &mut R,
    mu: f64,
    sigma: f64,
    lo: f64,
    hi: f64,
) -> f64 {
    assert!(lo <= hi, "invalid clamp range");
    normal(rng, mu, sigma).exp().clamp(lo, hi)
}

/// Transforms a standard-normal `z` through a correlation with a latent
/// factor `q`: returns `ρ·q + √(1−ρ²)·z`, still standard normal but with
/// correlation `ρ` to `q`. The QWS generator uses one latent "service
/// quality" factor per service to induce realistic cross-attribute
/// correlation.
pub fn correlate(q: f64, z: f64, rho: f64) -> f64 {
    assert!(
        (-1.0..=1.0).contains(&rho),
        "correlation must be in [-1, 1]"
    );
    rho * q + (1.0 - rho * rho).sqrt() * z
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn mean_sd(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        (mean, var.sqrt())
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let samples: Vec<f64> = (0..200_000).map(|_| standard_normal(&mut rng)).collect();
        let (mean, sd) = mean_sd(&samples);
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((sd - 1.0).abs() < 0.02, "sd {sd}");
    }

    #[test]
    fn normal_scales_and_shifts() {
        let mut rng = StdRng::seed_from_u64(2);
        let samples: Vec<f64> = (0..100_000).map(|_| normal(&mut rng, 10.0, 3.0)).collect();
        let (mean, sd) = mean_sd(&samples);
        assert!((mean - 10.0).abs() < 0.1);
        assert!((sd - 3.0).abs() < 0.1);
    }

    #[test]
    fn clamped_normal_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = clamped_normal(&mut rng, 90.0, 20.0, 0.0, 100.0);
            assert!((0.0..=100.0).contains(&v));
        }
    }

    #[test]
    fn log_normal_is_positive_and_skewed() {
        let mut rng = StdRng::seed_from_u64(4);
        let samples: Vec<f64> = (0..50_000)
            .map(|_| clamped_log_normal(&mut rng, 6.0, 0.9, 30.0, 5000.0))
            .collect();
        assert!(samples.iter().all(|&v| (30.0..=5000.0).contains(&v)));
        let (mean, _) = mean_sd(&samples);
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        assert!(mean > median, "right-skew: mean {mean} > median {median}");
    }

    #[test]
    fn correlate_produces_target_correlation() {
        let mut rng = StdRng::seed_from_u64(5);
        let rho = 0.7;
        let pairs: Vec<(f64, f64)> = (0..100_000)
            .map(|_| {
                let q = standard_normal(&mut rng);
                let z = standard_normal(&mut rng);
                (q, correlate(q, z, rho))
            })
            .collect();
        let n = pairs.len() as f64;
        let mq = pairs.iter().map(|p| p.0).sum::<f64>() / n;
        let mv = pairs.iter().map(|p| p.1).sum::<f64>() / n;
        let cov = pairs.iter().map(|p| (p.0 - mq) * (p.1 - mv)).sum::<f64>() / n;
        let sq = (pairs.iter().map(|p| (p.0 - mq).powi(2)).sum::<f64>() / n).sqrt();
        let sv = (pairs.iter().map(|p| (p.1 - mv).powi(2)).sum::<f64>() / n).sqrt();
        let got = cov / (sq * sv);
        assert!((got - rho).abs() < 0.02, "correlation {got} vs {rho}");
    }

    #[test]
    fn correlate_identity_edges() {
        assert_eq!(correlate(2.0, 5.0, 1.0), 2.0);
        assert_eq!(correlate(2.0, 5.0, 0.0), 5.0);
    }

    #[test]
    #[should_panic(expected = "correlation")]
    fn correlate_rejects_bad_rho() {
        let _ = correlate(0.0, 0.0, 1.5);
    }
}
