//! The QWS attribute catalogue.
//!
//! QWS v2 (Al-Masri & Mahmoud, WWW'07/ICCCN'07) publishes nine QoS
//! attributes measured over ~10,000 real web services. The summary
//! statistics below are modelled on the published dataset description —
//! heavy-tailed timing attributes, percentage attributes piling up near
//! their maxima — and drive the marginal distributions of the generator.
//! The paper's experiments "selected 10 QoS attributes"; the tenth here is a
//! service price, the cost axis of the paper's own Figure 1.
//!
//! Attribute order is chosen so that a `d`-dimensional projection takes the
//! first `d` attributes and `d = 2` reproduces Figure 1's axes
//! (response time, cost).

use serde::{Deserialize, Serialize};

/// Whether larger raw values are better or worse for the consumer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// Smaller raw value is better (times, cost).
    LowerIsBetter,
    /// Larger raw value is better (availability, reliability, …).
    HigherIsBetter,
}

/// Which marginal distribution family an attribute follows.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Marginal {
    /// Clamped log-normal with underlying `N(mu, sigma²)` — heavy-tailed
    /// timing/cost attributes.
    LogNormal {
        /// Mean of the underlying normal.
        mu: f64,
        /// Standard deviation of the underlying normal.
        sigma: f64,
    },
    /// Clamped normal — percentage-style attributes.
    Normal {
        /// Mean.
        mean: f64,
        /// Standard deviation.
        sd: f64,
    },
}

/// Static description of one QoS attribute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttributeSpec {
    /// Attribute name as in the QWS documentation.
    pub name: &'static str,
    /// Measurement unit.
    pub unit: &'static str,
    /// Better-direction of the raw value.
    pub direction: Direction,
    /// Hard range of raw values `[lo, hi]`.
    pub range: (f64, f64),
    /// Marginal distribution of raw values.
    pub marginal: Marginal,
    /// How strongly this attribute tracks the latent service-quality factor
    /// (sign: positive means good services score *better* on it).
    pub quality_loading: f64,
}

/// The 10-attribute catalogue: nine QWS attributes plus price.
pub const QWS_ATTRIBUTES: [AttributeSpec; 10] = [
    AttributeSpec {
        name: "response_time",
        unit: "ms",
        direction: Direction::LowerIsBetter,
        range: (37.0, 4989.0),
        // median ≈ 430 ms, long right tail
        marginal: Marginal::LogNormal {
            mu: 6.1,
            sigma: 0.8,
        },
        quality_loading: 0.68,
    },
    AttributeSpec {
        name: "price",
        unit: "USD/1k-calls",
        direction: Direction::LowerIsBetter,
        range: (0.1, 500.0),
        marginal: Marginal::LogNormal {
            mu: 2.3,
            sigma: 1.0,
        },
        quality_loading: -0.22, // better services tend to charge more
    },
    AttributeSpec {
        name: "latency",
        unit: "ms",
        direction: Direction::LowerIsBetter,
        range: (0.26, 4140.0),
        marginal: Marginal::LogNormal {
            mu: 3.4,
            sigma: 1.1,
        },
        // latency is a component of response time: nearly the same signal
        quality_loading: 0.68,
    },
    AttributeSpec {
        name: "availability",
        unit: "%",
        direction: Direction::HigherIsBetter,
        range: (7.0, 100.0),
        marginal: Marginal::Normal {
            mean: 82.0,
            sd: 16.0,
        },
        quality_loading: 0.78,
    },
    AttributeSpec {
        name: "throughput",
        unit: "req/s",
        direction: Direction::HigherIsBetter,
        range: (0.1, 43.1),
        marginal: Marginal::LogNormal {
            mu: 1.8,
            sigma: 0.8,
        },
        quality_loading: 0.58,
    },
    AttributeSpec {
        name: "successability",
        unit: "%",
        direction: Direction::HigherIsBetter,
        range: (8.0, 100.0),
        // successability is availability measured at the operation level
        marginal: Marginal::Normal {
            mean: 83.0,
            sd: 15.0,
        },
        quality_loading: 0.78,
    },
    AttributeSpec {
        name: "reliability",
        unit: "%",
        direction: Direction::HigherIsBetter,
        range: (33.0, 89.0),
        marginal: Marginal::Normal {
            mean: 65.0,
            sd: 9.0,
        },
        quality_loading: 0.68,
    },
    AttributeSpec {
        name: "compliance",
        unit: "%",
        direction: Direction::HigherIsBetter,
        range: (33.0, 100.0),
        marginal: Marginal::Normal {
            mean: 75.0,
            sd: 12.0,
        },
        quality_loading: 0.4,
    },
    AttributeSpec {
        name: "best_practices",
        unit: "%",
        direction: Direction::HigherIsBetter,
        range: (33.0, 95.0),
        marginal: Marginal::Normal {
            mean: 72.0,
            sd: 10.0,
        },
        quality_loading: 0.4,
    },
    AttributeSpec {
        name: "documentation",
        unit: "%",
        direction: Direction::HigherIsBetter,
        range: (1.0, 96.0),
        marginal: Marginal::Normal {
            mean: 32.0,
            sd: 21.0,
        },
        quality_loading: 0.28,
    },
];

impl AttributeSpec {
    /// Orients a raw attribute value so that **lower is better**, the
    /// convention every skyline kernel in this workspace assumes: raw values
    /// of `HigherIsBetter` attributes are reflected about the range maximum.
    /// The result is additionally shifted so the oriented range starts at 0,
    /// which anchors the angular transform at the origin (paper Eq. 1).
    pub fn orient(&self, raw: f64) -> f64 {
        let (lo, hi) = self.range;
        match self.direction {
            Direction::LowerIsBetter => raw - lo,
            Direction::HigherIsBetter => hi - raw,
        }
    }

    /// The oriented value range `[0, width]`.
    pub fn oriented_width(&self) -> f64 {
        self.range.1 - self.range.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_has_ten_distinct_attributes() {
        let mut names: Vec<&str> = QWS_ATTRIBUTES.iter().map(|a| a.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 10);
    }

    #[test]
    fn figure_one_axes_come_first() {
        assert_eq!(QWS_ATTRIBUTES[0].name, "response_time");
        assert_eq!(QWS_ATTRIBUTES[1].name, "price");
    }

    #[test]
    fn ranges_are_well_formed() {
        for a in &QWS_ATTRIBUTES {
            assert!(a.range.0 < a.range.1, "{}", a.name);
            assert!(a.oriented_width() > 0.0);
        }
    }

    #[test]
    fn orient_lower_is_better_shifts_to_zero() {
        let rt = &QWS_ATTRIBUTES[0]; // response_time, lower is better
        assert_eq!(rt.orient(37.0), 0.0, "best raw value maps to 0");
        assert_eq!(rt.orient(4989.0), rt.oriented_width());
    }

    #[test]
    fn orient_higher_is_better_reflects() {
        let av = QWS_ATTRIBUTES
            .iter()
            .find(|a| a.name == "availability")
            .unwrap();
        assert_eq!(av.orient(100.0), 0.0, "perfect availability maps to 0");
        assert_eq!(av.orient(7.0), av.oriented_width());
        // better raw availability → smaller oriented value
        assert!(av.orient(95.0) < av.orient(50.0));
    }

    #[test]
    fn oriented_values_are_nonnegative_over_range() {
        for a in &QWS_ATTRIBUTES {
            for t in 0..=10 {
                let raw = a.range.0 + (a.range.1 - a.range.0) * f64::from(t) / 10.0;
                assert!(a.orient(raw) >= 0.0, "{} at {raw}", a.name);
                assert!(a.orient(raw) <= a.oriented_width() + 1e-9);
            }
        }
    }
}
