//! The [`Dataset`] container, CSV persistence and an update stream for the
//! incremental-maintenance experiments.

use rand::{rngs::StdRng, Rng, SeedableRng};
use skyline_algos::partition::Bounds;
use skyline_algos::point::Point;
use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

/// A named collection of points with cached bounds.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Human-readable provenance, e.g. `"qws(n=100000,d=10,seed=42)"`.
    pub name: String,
    points: Vec<Point>,
    bounds: Bounds,
}

impl Dataset {
    /// Wraps points into a dataset, computing bounds.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty or mixes dimensionalities.
    pub fn new(name: impl Into<String>, points: Vec<Point>) -> Self {
        let bounds = Bounds::from_points(&points).expect("dataset must be non-empty and uniform");
        Self {
            name: name.into(),
            points,
            bounds,
        }
    }

    /// The points.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Number of services.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` if the dataset holds no points (unreachable by construction,
    /// present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.points[0].dim()
    }

    /// Cached bounding box.
    pub fn bounds(&self) -> &Bounds {
        &self.bounds
    }

    /// Projects every point onto its first `d` dimensions — the paper's
    /// dimensionality sweeps evaluate the *same* services at d ∈ {2,…,10}.
    pub fn project(&self, d: usize) -> Dataset {
        let points: Vec<Point> = self.points.iter().map(|p| p.project(d)).collect();
        Dataset {
            name: format!("{}|d={d}", self.name),
            bounds: self.bounds.project(d),
            points,
        }
    }

    /// Takes the first `n` services (datasets are generated in random order,
    /// so a prefix is an unbiased subsample).
    pub fn take(&self, n: usize) -> Dataset {
        assert!(n >= 1 && n <= self.len(), "invalid subsample size {n}");
        Dataset::new(format!("{}|n={n}", self.name), self.points[..n].to_vec())
    }

    /// Writes `id,coord0,coord1,…` rows.
    pub fn save_csv(&self, path: &Path) -> std::io::Result<()> {
        let mut w = BufWriter::new(std::fs::File::create(path)?);
        for p in &self.points {
            write!(w, "{}", p.id())?;
            for i in 0..p.dim() {
                write!(w, ",{}", p.coord(i))?;
            }
            writeln!(w)?;
        }
        w.flush()
    }

    /// Reads a file written by [`Dataset::save_csv`].
    pub fn load_csv(name: impl Into<String>, path: &Path) -> std::io::Result<Self> {
        let f = std::fs::File::open(path)?;
        let mut points = Vec::new();
        for (lineno, line) in std::io::BufReader::new(f).lines().enumerate() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let mut fields = line.split(',');
            let id: u64 = fields
                .next()
                .and_then(|s| s.trim().parse().ok())
                .ok_or_else(|| bad_line(lineno))?;
            let coords: Result<Vec<f64>, _> = fields.map(|s| s.trim().parse::<f64>()).collect();
            let coords = coords.map_err(|_| bad_line(lineno))?;
            points.push(Point::try_new(id, coords).map_err(|_| bad_line(lineno))?);
        }
        if points.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "CSV contains no points",
            ));
        }
        Ok(Dataset::new(name, points))
    }
}

fn bad_line(lineno: usize) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("malformed CSV line {}", lineno + 1),
    )
}

/// One event in a registry churn stream.
#[derive(Debug, Clone, PartialEq)]
pub enum Update {
    /// A new service appears.
    Add(Point),
    /// The service with this id disappears.
    Remove(u64),
}

/// Generates a deterministic churn stream against `base`: `steps` events,
/// with probability `add_prob` of an add (drawn by cloning a random template
/// from `base` and jittering it by ±`jitter` relative) and otherwise a
/// removal of a random still-live service. Used by the incremental example
/// and the churn integration tests.
pub fn update_stream(
    base: &Dataset,
    steps: usize,
    add_prob: f64,
    jitter: f64,
    seed: u64,
) -> Vec<Update> {
    assert!(
        (0.0..=1.0).contains(&add_prob),
        "add_prob must be a probability"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut live: Vec<u64> = base.points().iter().map(Point::id).collect();
    let mut next_id = live.iter().max().map(|m| m + 1).unwrap_or(0);
    let mut out = Vec::with_capacity(steps);
    for _ in 0..steps {
        if live.is_empty() || rng.gen_bool(add_prob) {
            let template = &base.points()[rng.gen_range(0..base.len())];
            let coords: Vec<f64> = template
                .coords()
                .iter()
                .map(|&v| {
                    let f = 1.0 + rng.gen_range(-jitter..=jitter);
                    (v * f).max(0.0)
                })
                .collect();
            let p = Point::new(next_id, coords);
            live.push(next_id);
            next_id += 1;
            out.push(Update::Add(p));
        } else {
            let k = rng.gen_range(0..live.len());
            out.push(Update::Remove(live.swap_remove(k)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        Dataset::new(
            "tiny",
            vec![
                Point::new(0, vec![1.0, 2.0, 3.0]),
                Point::new(1, vec![4.0, 5.0, 6.0]),
                Point::new(2, vec![0.5, 9.0, 1.0]),
            ],
        )
    }

    #[test]
    fn basic_accessors() {
        let d = tiny();
        assert_eq!(d.len(), 3);
        assert_eq!(d.dim(), 3);
        assert!(!d.is_empty());
        assert_eq!(d.bounds().min(0), 0.5);
        assert_eq!(d.bounds().max(1), 9.0);
    }

    #[test]
    fn project_truncates_coords_and_bounds() {
        let p = tiny().project(2);
        assert_eq!(p.dim(), 2);
        assert_eq!(p.len(), 3);
        assert_eq!(p.bounds().dim(), 2);
        assert_eq!(p.points()[0].coords(), &[1.0, 2.0]);
    }

    #[test]
    fn take_prefix() {
        let t = tiny().take(2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.points()[1].id(), 1);
    }

    #[test]
    #[should_panic(expected = "invalid subsample")]
    fn take_zero_rejected() {
        let _ = tiny().take(0);
    }

    #[test]
    fn csv_round_trip() {
        let dir = std::env::temp_dir().join("qws-data-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.csv");
        let d = tiny();
        d.save_csv(&path).unwrap();
        let back = Dataset::load_csv("tiny", &path).unwrap();
        assert_eq!(back.len(), d.len());
        for (a, b) in back.points().iter().zip(d.points()) {
            assert_eq!(a.id(), b.id());
            assert_eq!(a.coords(), b.coords());
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = std::env::temp_dir().join("qws-data-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.csv");
        std::fs::write(&path, "not,a,number\n").unwrap();
        assert!(Dataset::load_csv("bad", &path).is_err());
        std::fs::write(&path, "").unwrap();
        assert!(Dataset::load_csv("empty", &path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn update_stream_is_deterministic_and_consistent() {
        let d = tiny();
        let a = update_stream(&d, 50, 0.6, 0.1, 7);
        let b = update_stream(&d, 50, 0.6, 0.1, 7);
        assert_eq!(a, b);
        // removals only target live ids; replaying must never remove twice
        let mut live: std::collections::HashSet<u64> = d.points().iter().map(Point::id).collect();
        for u in &a {
            match u {
                Update::Add(p) => {
                    assert!(live.insert(p.id()), "duplicate id {}", p.id());
                    assert!(p.coords().iter().all(|&v| v >= 0.0));
                }
                Update::Remove(id) => {
                    assert!(live.remove(id), "removing dead id {id}");
                }
            }
        }
    }

    #[test]
    fn update_stream_all_adds() {
        let d = tiny();
        let s = update_stream(&d, 20, 1.0, 0.05, 1);
        assert!(s.iter().all(|u| matches!(u, Update::Add(_))));
    }
}
