//! The QWS-like service generator.
//!
//! Each service draws a latent *quality factor* `q ~ N(0,1)`; every
//! attribute then samples its marginal with a standard-normal input
//! correlated to `q` by the attribute's `quality_loading`. This reproduces
//! the structure of real QWS data: a good service tends to be good across
//! response time, availability and reliability at once, while price pulls
//! mildly the other way — which is exactly what keeps skylines non-trivial
//! (pure independence inflates the skyline, perfect correlation collapses
//! it to a handful of points).
//!
//! Raw values are then **oriented** (lower-is-better, minimum at 0, see
//! [`AttributeSpec::orient`]) so the points feed directly into the skyline
//! kernels and the angular transform of paper Eq. (1).

use crate::attributes::{AttributeSpec, Marginal, QWS_ATTRIBUTES};
use crate::dataset::Dataset;
use crate::rng::{correlate, standard_normal};
use rand::{rngs::StdRng, SeedableRng};
use skyline_algos::point::Point;

/// Configuration of a QWS-like dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct QwsConfig {
    /// Number of services (paper: 1,000 / 10,000 / 100,000).
    pub cardinality: usize,
    /// Number of attributes, 1–10 (paper sweeps 2–10).
    pub dimensions: usize,
    /// RNG seed.
    pub seed: u64,
    /// Strength multiplier on each attribute's quality loading: `1.0` keeps
    /// the catalogue's realistic correlation, `0.0` makes attributes
    /// independent.
    pub correlation_scale: f64,
}

impl Default for QwsConfig {
    fn default() -> Self {
        Self {
            cardinality: 10_000,
            dimensions: 10,
            seed: 42,
            correlation_scale: 1.0,
        }
    }
}

impl QwsConfig {
    /// Convenience constructor for the common (n, d) sweep.
    pub fn new(cardinality: usize, dimensions: usize) -> Self {
        Self {
            cardinality,
            dimensions,
            ..Self::default()
        }
    }

    /// Builder: sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

fn sample_raw(spec: &AttributeSpec, z: f64) -> f64 {
    // Feed the correlated standard normal through the marginal by reusing
    // the samplers with the pre-drawn z (they expect an RNG, so inline the
    // location/scale maths here instead).
    match spec.marginal {
        Marginal::Normal { mean, sd } => (mean + sd * z).clamp(spec.range.0, spec.range.1),
        Marginal::LogNormal { mu, sigma } => {
            (mu + sigma * z).exp().clamp(spec.range.0, spec.range.1)
        }
    }
}

/// Generates an oriented QWS-like dataset.
///
/// # Panics
///
/// Panics if `cardinality == 0` or `dimensions` is outside `1..=10`.
///
/// # Examples
///
/// ```
/// use qws_data::{generate_qws, QwsConfig};
///
/// let data = generate_qws(&QwsConfig::new(1000, 6).with_seed(7));
/// assert_eq!(data.len(), 1000);
/// assert_eq!(data.dim(), 6);
/// // lower-is-better orientation: all coordinates non-negative
/// assert!(data.points().iter().all(|p| p.coords().iter().all(|&v| v >= 0.0)));
/// ```
pub fn generate_qws(cfg: &QwsConfig) -> Dataset {
    assert!(cfg.cardinality >= 1, "cardinality must be positive");
    assert!(
        (1..=QWS_ATTRIBUTES.len()).contains(&cfg.dimensions),
        "dimensions must be 1..={}",
        QWS_ATTRIBUTES.len()
    );
    assert!(
        (0.0..=1.0).contains(&cfg.correlation_scale),
        "correlation_scale must be in [0, 1]"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let specs = &QWS_ATTRIBUTES[..cfg.dimensions];
    let mut points = Vec::with_capacity(cfg.cardinality);
    for id in 0..cfg.cardinality {
        let q = standard_normal(&mut rng);
        let coords: Vec<f64> = specs
            .iter()
            .map(|spec| {
                let z = standard_normal(&mut rng);
                // positive loading = good services get *better* raw values;
                // for LowerIsBetter that means a *negative* shift of the raw
                // marginal, handled by flipping the sign of the loading.
                let sign = match spec.direction {
                    crate::attributes::Direction::LowerIsBetter => -1.0,
                    crate::attributes::Direction::HigherIsBetter => 1.0,
                };
                let rho = (spec.quality_loading * cfg.correlation_scale * sign).clamp(-0.99, 0.99);
                let zc = correlate(q, z, rho);
                spec.orient(sample_raw(spec, zc))
            })
            .collect();
        points.push(Point::new(id as u64, coords));
    }
    Dataset::new(
        format!(
            "qws(n={},d={},seed={})",
            cfg.cardinality, cfg.dimensions, cfg.seed
        ),
        points,
    )
}

/// Extends a base dataset to `cardinality` points the way the paper extended
/// QWS to 100,000 services: *"randomly generating QoS values which are
/// limited to a narrow range following the distribution of the QWS
/// dataset"* — each synthetic service is a jittered copy of a uniformly
/// drawn real service, with every coordinate scaled by
/// `1 ± U(0, jitter)` and clamped non-negative.
///
/// The base points are kept verbatim (with their ids); synthetic points get
/// fresh sequential ids.
///
/// # Panics
///
/// Panics if `cardinality < base.len()` or `jitter` is not in `[0, 1)`.
pub fn extend_qws(base: &Dataset, cardinality: usize, jitter: f64, seed: u64) -> Dataset {
    assert!(
        cardinality >= base.len(),
        "extension target {cardinality} below base size {}",
        base.len()
    );
    assert!((0.0..1.0).contains(&jitter), "jitter must be in [0, 1)");
    use rand::Rng;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut points: Vec<Point> = base.points().to_vec();
    points.reserve(cardinality - points.len());
    let mut next_id = base.points().iter().map(Point::id).max().unwrap_or(0) + 1;
    while points.len() < cardinality {
        let template = &base.points()[rng.gen_range(0..base.len())];
        let coords: Vec<f64> = template
            .coords()
            .iter()
            .map(|&v| {
                let f = 1.0 + rng.gen_range(-jitter..=jitter);
                (v * f).max(0.0)
            })
            .collect();
        points.push(Point::new(next_id, coords));
        next_id += 1;
    }
    Dataset::new(
        format!("{}+ext(n={cardinality},j={jitter},seed={seed})", base.name),
        points,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_shape() {
        let d = generate_qws(&QwsConfig::new(500, 6));
        assert_eq!(d.len(), 500);
        assert_eq!(d.dim(), 6);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_qws(&QwsConfig::new(100, 4).with_seed(9));
        let b = generate_qws(&QwsConfig::new(100, 4).with_seed(9));
        let c = generate_qws(&QwsConfig::new(100, 4).with_seed(10));
        for (x, y) in a.points().iter().zip(b.points()) {
            assert_eq!(x.coords(), y.coords());
        }
        assert_ne!(
            a.points()[0].coords(),
            c.points()[0].coords(),
            "different seeds should differ"
        );
    }

    #[test]
    fn oriented_values_nonnegative_and_within_width() {
        let d = generate_qws(&QwsConfig::new(2000, 10));
        for p in d.points() {
            for (i, spec) in QWS_ATTRIBUTES.iter().enumerate() {
                let v = p.coord(i);
                assert!(v >= 0.0, "{} negative: {v}", spec.name);
                assert!(
                    v <= spec.oriented_width() + 1e-9,
                    "{} out of range: {v}",
                    spec.name
                );
            }
        }
    }

    #[test]
    fn quality_correlation_present() {
        // response_time (dim 0) and availability (dim 3) share the latent
        // quality factor; their oriented values must correlate positively.
        let d = generate_qws(&QwsConfig::new(20_000, 4));
        let xs: Vec<f64> = d.points().iter().map(|p| p.coord(0)).collect();
        let ys: Vec<f64> = d.points().iter().map(|p| p.coord(3)).collect();
        let r = pearson(&xs, &ys);
        assert!(r > 0.15, "expected positive correlation, got {r}");
    }

    #[test]
    fn correlation_scale_zero_decorrelates() {
        let mut cfg = QwsConfig::new(20_000, 4);
        cfg.correlation_scale = 0.0;
        let d = generate_qws(&cfg);
        let xs: Vec<f64> = d.points().iter().map(|p| p.coord(0)).collect();
        let ys: Vec<f64> = d.points().iter().map(|p| p.coord(3)).collect();
        let r = pearson(&xs, &ys);
        assert!(r.abs() < 0.05, "expected ~0 correlation, got {r}");
    }

    #[test]
    fn skyline_is_nontrivial_fraction() {
        use skyline_algos::prelude::*;
        let d = generate_qws(&QwsConfig::new(2000, 4));
        let sky = bnl_skyline(d.points(), &BnlConfig::default());
        assert!(
            sky.len() > 3 && sky.len() < d.len() / 2,
            "skyline size {} of {}",
            sky.len(),
            d.len()
        );
    }

    #[test]
    fn marginal_statistics_track_the_catalogue() {
        // generated (de-oriented) marginals should land near the catalogue's
        // location parameters — a guard against silently breaking the QWS
        // reconstruction when tuning correlations
        let d = generate_qws(&QwsConfig::new(30_000, 10));
        for (i, spec) in QWS_ATTRIBUTES.iter().enumerate() {
            let raws: Vec<f64> = d
                .points()
                .iter()
                .map(|p| match spec.direction {
                    crate::attributes::Direction::LowerIsBetter => p.coord(i) + spec.range.0,
                    crate::attributes::Direction::HigherIsBetter => spec.range.1 - p.coord(i),
                })
                .collect();
            let mean = raws.iter().sum::<f64>() / raws.len() as f64;
            match spec.marginal {
                crate::attributes::Marginal::Normal { mean: m, sd } => {
                    assert!(
                        (mean - m).abs() < sd,
                        "{}: sample mean {mean:.1} vs model {m}±{sd}",
                        spec.name
                    );
                }
                crate::attributes::Marginal::LogNormal { mu, sigma } => {
                    // compare medians (robust for clamped log-normals)
                    let mut sorted = raws.clone();
                    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
                    let median = sorted[sorted.len() / 2];
                    let model_median = mu.exp();
                    assert!(
                        median > model_median / (1.0 + sigma)
                            && median < model_median * (1.0 + sigma) * 1.5,
                        "{}: sample median {median:.1} vs model {model_median:.1}",
                        spec.name
                    );
                }
            }
            // all values inside the catalogue range
            assert!(raws
                .iter()
                .all(|&v| v >= spec.range.0 - 1e-9 && v <= spec.range.1 + 1e-9));
        }
    }

    #[test]
    fn extend_keeps_base_and_jitters_rest() {
        let base = generate_qws(&QwsConfig::new(100, 4));
        let ext = extend_qws(&base, 350, 0.05, 7);
        assert_eq!(ext.len(), 350);
        // base points kept verbatim
        for (a, b) in ext.points()[..100].iter().zip(base.points()) {
            assert_eq!(a.id(), b.id());
            assert_eq!(a.coords(), b.coords());
        }
        // synthetic points stay near some template and non-negative
        for p in &ext.points()[100..] {
            assert!(p.coords().iter().all(|&v| v >= 0.0));
        }
        // deterministic
        let ext2 = extend_qws(&base, 350, 0.05, 7);
        assert_eq!(ext.points()[349].coords(), ext2.points()[349].coords());
    }

    #[test]
    fn extension_inflates_high_dimensional_skylines() {
        // The reason the figure harnesses do NOT use jittered resampling for
        // big cardinalities: a multiplicative-jitter copy of a d-dimensional
        // template is dominated by it only when it loses on every dimension
        // at once (probability ~2^-d), so most copies of skyline templates
        // join the skyline themselves.
        use skyline_algos::prelude::*;
        let base = generate_qws(&QwsConfig::new(500, 6));
        let ext = extend_qws(&base, 5000, 0.05, 1);
        let sky_base = bnl_skyline(base.points(), &BnlConfig::default()).len();
        let sky_ext = bnl_skyline(ext.points(), &BnlConfig::default()).len();
        assert!(
            sky_ext > sky_base * 2,
            "expected skyline inflation under 10x jittered extension, got {sky_base} -> {sky_ext}"
        );
    }

    #[test]
    #[should_panic(expected = "below base size")]
    fn extend_rejects_shrinking() {
        let base = generate_qws(&QwsConfig::new(10, 2));
        let _ = extend_qws(&base, 5, 0.05, 1);
    }

    #[test]
    #[should_panic(expected = "dimensions")]
    fn rejects_eleven_dimensions() {
        let _ = generate_qws(&QwsConfig::new(10, 11));
    }

    fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
        let n = xs.len() as f64;
        let mx = xs.iter().sum::<f64>() / n;
        let my = ys.iter().sum::<f64>() / n;
        let cov = xs
            .iter()
            .zip(ys)
            .map(|(x, y)| (x - mx) * (y - my))
            .sum::<f64>()
            / n;
        let sx = (xs.iter().map(|x| (x - mx).powi(2)).sum::<f64>() / n).sqrt();
        let sy = (ys.iter().map(|y| (y - my).powi(2)).sum::<f64>() / n).sqrt();
        cov / (sx * sy)
    }
}
