//! Runtime local-kernel selection: a calibrated cost heuristic that picks
//! the cheapest skyline kernel for a block from three cheap statistics —
//! cardinality, dimensionality, and a sampled correlation estimate.
//!
//! The three kernels occupy different regimes:
//!
//! * [`block_bnl`](crate::kernel::block_bnl) pays no presort, so it wins
//!   wherever the expected skyline is tiny — small blocks, low
//!   dimensionality (d ≤ 3 under any distribution), and correlated data at
//!   moderate cardinality: the window holds the whole answer and every
//!   scan is short.
//! * [`block_salsa`](crate::salsa::block_salsa) wins when the scan volume
//!   is huge *and* its early-stop watermark fires, which needs a point
//!   with a small *maximum* coordinate — the signature of correlated data
//!   at large n and d ≥ 5.
//! * [`block_sfs`](crate::kernel::block_sfs) is the robust sort-based
//!   default for the regimes left over: independent and anti-correlated
//!   data at d ≥ 4–5, where skylines are large, BNL's bounded window
//!   thrashes through multiple passes, and no early-stop bound can fire.
//!
//! The decision statistic for correlated-vs-not is the **mean pairwise
//! Pearson correlation** across dimensions, estimated from a deterministic
//! stride sample via the variance identity
//! `Var(Σ X_k) = Σ Var(X_k) + 2 Σ_{j<k} Cov(X_j, X_k)`:
//! one pass over the sample yields per-column variances and the row-sum
//! variance, and the normalized excess
//! `ρ̂ = (Var(S) − Σ σ_k²) / (2 Σ_{j<k} σ_j σ_k)` falls in `[-1, 1]`.
//! No RNG is involved, so selection is deterministic and replay-stable.

use crate::block::PointBlock;
use crate::bnl::BnlConfig;
use crate::kernel::{block_bnl_stats, block_sfs_stats, KernelStats};
use crate::salsa::block_salsa_stats;

/// A concrete block-skyline kernel, the unit of runtime dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockKernel {
    /// Block-Nested-Loops with a self-organising window.
    Bnl,
    /// Sort-Filter-Skyline (entropy-score presort, single pass).
    Sfs,
    /// SaLSa (min-coordinate presort, early-stop watermark).
    Salsa,
}

impl BlockKernel {
    /// Stable lowercase name, used in trace events and metrics keys.
    pub fn name(self) -> &'static str {
        match self {
            BlockKernel::Bnl => "bnl",
            BlockKernel::Sfs => "sfs",
            BlockKernel::Salsa => "salsa",
        }
    }

    /// Runs this kernel on `block`. `bnl` configures the BNL window; the
    /// sort-based kernels have no knobs.
    pub fn run(self, block: &PointBlock, bnl: &BnlConfig) -> (PointBlock, KernelStats) {
        match self {
            BlockKernel::Bnl => block_bnl_stats(block, bnl),
            BlockKernel::Sfs => block_sfs_stats(block),
            BlockKernel::Salsa => block_salsa_stats(block),
        }
    }
}

/// Calibrated decision boundaries for [`KernelChoice::select`].
///
/// Defaults are fit to the `kernels` bench sweep (kernel × d ∈ {2,4,6,8} ×
/// n ∈ {10k,100k,1M} × distribution, see `BENCH_kernels.json`) on the
/// reference host; they are knobs rather than constants so the bench
/// harness can probe alternative boundaries without rebuilding.
#[derive(Debug, Clone)]
pub struct KernelChoice {
    /// Below this many rows the presort is not worth it: BNL.
    pub small_input: usize,
    /// Mean pairwise correlation at or above which the block counts as
    /// *correlated* — tiny skylines, and a good-everywhere point that can
    /// arm the SaLSa watermark.
    pub correlated_cutoff: f64,
    /// Mean pairwise correlation at or below which a d=4 block counts as
    /// *anti-correlated* enough for the SFS presort to pay (at d≥5 it
    /// always does, at d≤3 it never does).
    pub anti_cutoff: f64,
    /// At or below this many dimensions skylines stay small enough that
    /// BNL's window never thrashes — sorting is pure overhead.
    pub low_dims: usize,
    /// On correlated data BNL's window holds the handful of skyline points
    /// and every scan is short; only past this many rows does the scan
    /// volume itself justify a presort.
    pub salsa_min_rows: usize,
}

impl Default for KernelChoice {
    fn default() -> Self {
        Self {
            small_input: 1024,
            correlated_cutoff: 0.15,
            anti_cutoff: -0.20,
            low_dims: 3,
            salsa_min_rows: 300_000,
        }
    }
}

impl KernelChoice {
    /// Picks a kernel for a block of `rows` × `dims` whose sampled mean
    /// pairwise correlation is `correlation_estimate`.
    ///
    /// The boundary is a decision list fit to the measured sweep, not a
    /// cost formula. The governing quantity is the expected skyline size
    /// (it sets BNL's window length and pass count): small blocks, low
    /// dimensionality, and correlated data all keep it tiny — BNL. Large
    /// correlated blocks have huge scan volume but an early-stop point —
    /// SaLSa (except at d≤3, where the watermark arms too slowly and the
    /// entropy order wins — SFS; and at d = `low_dims + 1`, where BNL's
    /// window still holds the skyline — BNL). Independent/anti-correlated
    /// blocks at d≥4–5 grow skylines that thrash BNL's window — SFS.
    pub fn select(&self, rows: usize, dims: usize, correlation_estimate: f64) -> BlockKernel {
        if rows < self.small_input || dims < 2 {
            return BlockKernel::Bnl;
        }
        if correlation_estimate >= self.correlated_cutoff {
            if rows <= self.salsa_min_rows {
                BlockKernel::Bnl
            } else if dims <= self.low_dims {
                BlockKernel::Sfs
            } else if dims == self.low_dims + 1 {
                // The correlated crossover band mirrors the anti side: at
                // d = low_dims + 1 the skyline still fits BNL's window and
                // the watermark arms too late to beat a presort-free scan.
                BlockKernel::Bnl
            } else {
                BlockKernel::Salsa
            }
        } else if dims <= self.low_dims {
            BlockKernel::Bnl
        } else if dims > self.low_dims + 1 || correlation_estimate <= self.anti_cutoff {
            BlockKernel::Sfs
        } else {
            // d == low_dims + 1 and not anti enough: the crossover band —
            // measured margins here are under ~20% either way.
            BlockKernel::Bnl
        }
    }

    /// Samples `block` and selects a kernel for it — the `Auto` path used
    /// by the pipeline per partition.
    pub fn select_for_block(&self, block: &PointBlock) -> BlockKernel {
        self.select(block.len(), block.dim(), correlation_estimate(block))
    }
}

/// Rows examined by [`correlation_estimate`] — enough for a stable sign
/// and magnitude of ρ̂, cheap enough to be noise next to any kernel.
const SAMPLE_ROWS: usize = 256;

/// Estimates the mean pairwise Pearson correlation across dimensions from
/// a deterministic stride sample of at most [`SAMPLE_ROWS`] rows.
///
/// Returns a value clamped to `[-1, 1]`; degenerate blocks (under two
/// rows, one dimension, or zero variance in every column) report `0.0`.
pub fn correlation_estimate(block: &PointBlock) -> f64 {
    let n = block.len();
    let d = block.dim();
    if n < 2 || d < 2 {
        return 0.0;
    }
    let step = n.div_ceil(SAMPLE_ROWS).max(1);
    let mut count = 0.0f64;
    let mut col_sum = vec![0.0f64; d];
    let mut col_sq = vec![0.0f64; d];
    let mut row_sum_total = 0.0f64;
    let mut row_sum_sq = 0.0f64;
    let mut i = 0;
    while i < n {
        let row = block.row(i);
        let mut s = 0.0;
        for (k, &v) in row.iter().enumerate() {
            col_sum[k] += v;
            col_sq[k] += v * v;
            s += v;
        }
        row_sum_total += s;
        row_sum_sq += s * s;
        count += 1.0;
        i += step;
    }
    if count < 2.0 {
        return 0.0;
    }
    let var = |sum: f64, sq: f64| (sq / count - (sum / count).powi(2)).max(0.0);
    let col_vars: Vec<f64> = (0..d).map(|k| var(col_sum[k], col_sq[k])).collect();
    let var_sum: f64 = col_vars.iter().sum();
    let sigma_sum: f64 = col_vars.iter().map(|v| v.sqrt()).sum();
    // 2 Σ_{j<k} σ_j σ_k = (Σ σ_k)² − Σ σ_k²
    let denom = sigma_sum * sigma_sum - var_sum;
    if denom <= f64::EPSILON {
        return 0.0;
    }
    let total_var = var(row_sum_total, row_sum_sq);
    ((total_var - var_sum) / denom).clamp(-1.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn block_from(rows: &[Vec<f64>]) -> PointBlock {
        let mut b = PointBlock::new(rows[0].len());
        for (i, r) in rows.iter().enumerate() {
            b.push(i as u64, r).unwrap();
        }
        b
    }

    fn synthetic(n: usize, d: usize, rho: f64, seed: u64) -> PointBlock {
        // shared-level mixture: coordinate = sqrt(rho)*level + sqrt(1-rho)*noise
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = PointBlock::new(d);
        let (a, c) = (rho.max(0.0).sqrt(), (1.0 - rho.max(0.0)).sqrt());
        for i in 0..n {
            let level: f64 = rng.gen_range(0.0..1.0);
            let row: Vec<f64> = (0..d)
                .map(|_| a * level + c * rng.gen_range(0.0..1.0))
                .collect();
            b.push(i as u64, &row).unwrap();
        }
        b
    }

    #[test]
    fn correlated_blocks_read_high() {
        let rho = correlation_estimate(&synthetic(4000, 4, 0.9, 1));
        assert!(rho > 0.5, "rho = {rho}");
    }

    #[test]
    fn independent_blocks_read_near_zero() {
        let rho = correlation_estimate(&synthetic(4000, 4, 0.0, 2));
        assert!(rho.abs() < 0.15, "rho = {rho}");
    }

    #[test]
    fn anti_correlated_blocks_read_negative() {
        // two dimensions that sum to 1: perfectly anti-correlated
        let mut rng = StdRng::seed_from_u64(3);
        let mut b = PointBlock::new(2);
        for i in 0..4000 {
            let x: f64 = rng.gen_range(0.0..1.0);
            b.push(i as u64, &[x, 1.0 - x]).unwrap();
        }
        let rho = correlation_estimate(&b);
        assert!(rho < -0.9, "rho = {rho}");
    }

    #[test]
    fn degenerate_blocks_report_zero() {
        assert_eq!(correlation_estimate(&PointBlock::new(3)), 0.0);
        let constant = block_from(&[vec![1.0, 1.0], vec![1.0, 1.0]]);
        assert_eq!(correlation_estimate(&constant), 0.0);
        let single = block_from(&[vec![1.0, 2.0]]);
        assert_eq!(correlation_estimate(&single), 0.0);
    }

    #[test]
    fn estimate_is_deterministic() {
        let b = synthetic(10_000, 5, 0.4, 7);
        assert_eq!(correlation_estimate(&b), correlation_estimate(&b));
    }

    #[test]
    fn boundaries_route_to_the_expected_kernels() {
        let c = KernelChoice::default();
        assert_eq!(c.select(100, 4, 0.0), BlockKernel::Bnl, "small input");
        assert_eq!(
            c.select(100_000, 4, 0.9),
            BlockKernel::Bnl,
            "correlated at moderate n: tiny skyline, short scans"
        );
        assert_eq!(
            c.select(1_000_000, 6, 0.9),
            BlockKernel::Salsa,
            "correlated at scale: the watermark pays"
        );
        assert_eq!(
            c.select(1_000_000, 4, 0.9),
            BlockKernel::Bnl,
            "correlated crossover band: window beats any presort at d=4"
        );
        assert_eq!(
            c.select(1_000_000, 2, 0.9),
            BlockKernel::Sfs,
            "correlated 2-D at scale: entropy order beats the watermark"
        );
        assert_eq!(c.select(100_000, 6, -0.5), BlockKernel::Sfs, "anti");
        assert_eq!(c.select(100_000, 4, -0.3), BlockKernel::Sfs, "anti d=4");
        assert_eq!(c.select(100_000, 6, 0.0), BlockKernel::Sfs, "independent");
        assert_eq!(
            c.select(1_000_000, 4, 0.0),
            BlockKernel::Bnl,
            "independent d=4: skyline stays in one window"
        );
        assert_eq!(c.select(100_000, 2, -0.9), BlockKernel::Bnl, "2-D anti");
        assert_eq!(c.select(100_000, 1, 0.0), BlockKernel::Bnl, "1-D");
    }

    #[test]
    fn all_kernels_agree_through_the_dispatcher() {
        let b = synthetic(500, 3, 0.2, 11);
        let cfg = BnlConfig::default();
        let mut results: Vec<Vec<u64>> = [BlockKernel::Bnl, BlockKernel::Sfs, BlockKernel::Salsa]
            .iter()
            .map(|k| {
                let (sky, stats) = k.run(&b, &cfg);
                assert_eq!(stats.output_len, sky.len() as u64);
                let mut ids = sky.ids().to_vec();
                ids.sort_unstable();
                ids
            })
            .collect();
        let first = results.remove(0);
        for r in results {
            assert_eq!(r, first);
        }
    }

    #[test]
    fn select_for_block_uses_the_sampled_estimate() {
        let c = KernelChoice {
            salsa_min_rows: 4000,
            ..KernelChoice::default()
        };
        assert_eq!(
            c.select_for_block(&synthetic(5000, 6, 0.9, 13)),
            BlockKernel::Salsa,
            "reads as correlated, past the scan-volume bar"
        );
        assert_eq!(
            c.select_for_block(&synthetic(5000, 6, 0.0, 14)),
            BlockKernel::Sfs,
            "reads as independent at d=6"
        );
    }
}
