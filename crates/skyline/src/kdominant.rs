//! k-dominant skylines — Chan, Jagadish, Tan, Tung, Zhang (SIGMOD 2006).
//!
//! The paper measures what every practitioner hits: as the number of QoS
//! attributes grows, almost nothing dominates anything and the skyline
//! explodes (thousands of "optimal" services at `d = 10`). *k-dominance*
//! relaxes the order: `p` **k-dominates** `q` when there are `k` dimensions
//! on which `p` is no worse (and strictly better on at least one of them).
//! The k-dominant skyline — points not k-dominated by anyone — shrinks
//! rapidly as `k` drops below `d`, surfacing the services that are good
//! *almost everywhere*.
//!
//! Two structural caveats inherited from the definition, both tested below:
//!
//! * k-dominance is **not transitive**, so exclusion must be checked against
//!   the *whole* dataset, not against survivors;
//! * a point that is itself k-dominated can still k-dominate others
//!   (cyclic k-dominance is possible, and for small `k` the k-dominant
//!   skyline can even be empty).

use crate::point::Point;

/// Returns `true` iff `p` k-dominates `q`: there exist `k` dimensions on
/// which `p ≤ q`, with `p < q` on at least one of them.
///
/// Equivalent counting form (used here): `#{i : p_i ≤ q_i} ≥ k` and
/// `#{i : p_i < q_i} ≥ 1` — any `k`-subset of the `≤`-dimensions that
/// includes one strict dimension witnesses the relation.
///
/// # Panics
///
/// Panics (debug) on dimensionality mismatch; `k` must be in `1..=d`.
pub fn k_dominates(p: &Point, q: &Point, k: usize) -> bool {
    debug_assert_eq!(
        p.dim(),
        q.dim(),
        "k-dominance requires equal dimensionality"
    );
    assert!(k >= 1 && k <= p.dim(), "k must be in 1..=d");
    let mut le = 0usize;
    let mut lt = 0usize;
    for i in 0..p.dim() {
        let (a, b) = (p.coord(i), q.coord(i));
        if a <= b {
            le += 1;
            if a < b {
                lt += 1;
            }
        }
    }
    le >= k && lt >= 1
}

/// Computes the k-dominant skyline of `points`: every point not k-dominated
/// by any other point. `k = d` gives the ordinary skyline.
///
/// Quadratic by definition (non-transitivity forbids the usual pruning);
/// intended for post-processing skylines and moderate inputs.
///
/// # Examples
///
/// ```
/// use skyline_algos::kdominant::k_dominant_skyline;
/// use skyline_algos::point::Point;
///
/// // b wins on 2 of 3 attributes against a, so 2-dominates it
/// let a = Point::new(0, vec![1.0, 5.0, 5.0]);
/// let b = Point::new(1, vec![2.0, 1.0, 1.0]);
/// let kd = k_dominant_skyline(&[a, b], 2);
/// assert_eq!(kd.len(), 1);
/// assert_eq!(kd[0].id(), 1);
/// ```
pub fn k_dominant_skyline(points: &[Point], k: usize) -> Vec<Point> {
    if points.is_empty() {
        return Vec::new();
    }
    assert!(
        k >= 1 && k <= points[0].dim(),
        "k must be in 1..=d (d = {})",
        points[0].dim()
    );
    points
        .iter()
        .filter(|p| {
            !points
                .iter()
                .any(|q| q.id() != p.id() && k_dominates(q, p, k))
        })
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::naive_skyline_ids;

    fn p(id: u64, c: &[f64]) -> Point {
        Point::new(id, c.to_vec())
    }

    fn ids(v: &[Point]) -> Vec<u64> {
        let mut out: Vec<u64> = v.iter().map(Point::id).collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn full_k_equals_ordinary_skyline() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(61);
        for _ in 0..10 {
            let d = rng.gen_range(2..5);
            let pts: Vec<Point> = (0..100)
                .map(|i| {
                    Point::new(
                        i,
                        (0..d).map(|_| rng.gen_range(0.0..3.0)).collect::<Vec<_>>(),
                    )
                })
                .collect();
            assert_eq!(ids(&k_dominant_skyline(&pts, d)), naive_skyline_ids(&pts));
        }
    }

    #[test]
    fn k_dominance_counting_witness() {
        // p better on 2 of 3 dims, worse on 1
        let a = p(0, &[1.0, 1.0, 9.0]);
        let b = p(1, &[2.0, 2.0, 1.0]);
        assert!(k_dominates(&a, &b, 2));
        assert!(!k_dominates(&a, &b, 3));
        assert!(k_dominates(&b, &a, 1));
    }

    #[test]
    fn equal_points_never_k_dominate() {
        let a = p(0, &[1.0, 2.0]);
        let b = p(1, &[1.0, 2.0]);
        assert!(!k_dominates(&a, &b, 1));
        assert!(!k_dominates(&a, &b, 2));
    }

    #[test]
    fn k_dominant_skyline_shrinks_with_k() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(62);
        let pts: Vec<Point> = (0..300)
            .map(|i| {
                Point::new(
                    i,
                    (0..5).map(|_| rng.gen_range(0.0..1.0)).collect::<Vec<_>>(),
                )
            })
            .collect();
        let mut prev = usize::MAX;
        for k in (2..=5).rev() {
            let size = k_dominant_skyline(&pts, k).len();
            assert!(size <= prev, "k={k}: {size} > {prev}");
            prev = size;
        }
    }

    #[test]
    fn k_dominant_skyline_is_subset_of_skyline() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(63);
        let pts: Vec<Point> = (0..200)
            .map(|i| {
                Point::new(
                    i,
                    (0..4).map(|_| rng.gen_range(0.0..1.0)).collect::<Vec<_>>(),
                )
            })
            .collect();
        let sky = naive_skyline_ids(&pts);
        for k in 2..4 {
            for kd in ids(&k_dominant_skyline(&pts, k)) {
                assert!(sky.contains(&kd), "k={k}: {kd} not in the skyline");
            }
        }
    }

    #[test]
    fn cyclic_k_dominance_can_empty_the_result() {
        // classic 3-cycle under 2-dominance in 3-D: each point 2-dominates
        // the next, so nobody survives
        let pts = vec![
            p(0, &[1.0, 2.0, 3.0]),
            p(1, &[2.0, 3.0, 1.0]),
            p(2, &[3.0, 1.0, 2.0]),
        ];
        assert!(k_dominates(&pts[0], &pts[1], 2));
        assert!(k_dominates(&pts[1], &pts[2], 2));
        assert!(k_dominates(&pts[2], &pts[0], 2));
        assert!(k_dominant_skyline(&pts, 2).is_empty());
    }

    #[test]
    fn dominated_points_still_exclude_others() {
        // b is k-dominated by a, but b still k-dominates c — exclusion must
        // scan the whole dataset, not survivors only
        let a = p(0, &[0.0, 0.0, 5.0]);
        let b = p(1, &[1.0, 1.0, 0.0]);
        let c = p(2, &[2.0, 2.0, 0.5]);
        assert!(k_dominates(&a, &b, 2));
        assert!(k_dominates(&b, &c, 3));
        let kd = ids(&k_dominant_skyline(&[a, b, c], 2));
        assert!(!kd.contains(&2), "c must be excluded by the dominated b");
    }

    #[test]
    fn empty_input() {
        assert!(k_dominant_skyline(&[], 1).is_empty());
    }

    #[test]
    #[should_panic(expected = "k must be in")]
    fn k_zero_rejected() {
        let _ = k_dominant_skyline(&[p(0, &[1.0])], 0);
    }
}
