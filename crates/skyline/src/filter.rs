//! Filter-point selection for shuffle-side early pruning.
//!
//! Ciaccia & Martinenghi's parallel-skyline optimisation: pick a handful of
//! *strong* points before the partitioning job, broadcast them to every map
//! task, and drop any row one of them dominates before it is shuffled. A
//! point that is dominated by anything is not in the skyline, so discarding
//! dominated rows map-side is exact — the only question is how much of the
//! shuffle the chosen filter points can absorb.
//!
//! Selection here is deterministic (no sampling): the per-dimension minima
//! are unbeatable on their own axis and fence in the skyline contour, and
//! the smallest-L1 points sit near the origin where dominance regions are
//! widest. Ties break by L1 norm then id, so two runs over the same data
//! always broadcast the same block — a requirement for `mrsky-chaos` replay
//! and checkpoint resume.

use crate::block::PointBlock;
use crate::kernel::dominates_row;

/// Selects up to `k` filter points from `block`: first the per-dimension
/// minima (tie-break: smaller L1 norm, then smaller id), then the remaining
/// slots filled with the smallest-L1 rows not already chosen (same
/// tie-break). Returns a block in ascending-id order, so the selection is a
/// pure function of the data. `k = 0` or an empty input yields an empty
/// block.
pub fn select_filter_points(block: &PointBlock, k: usize) -> PointBlock {
    let mut out = PointBlock::new(block.dim());
    if k == 0 || block.is_empty() {
        return out;
    }
    let n = block.len();
    let d = block.dim();
    // (L1, id) keys once; both tie-breaks need them.
    let key = |i: usize| (block.l1_norm(i), block.id(i));
    let mut chosen: Vec<usize> = Vec::with_capacity(k);
    for dim in 0..d {
        if chosen.len() == k {
            break;
        }
        let mut best = 0usize;
        for i in 1..n {
            let (vb, vi) = (block.row(best)[dim], block.row(i)[dim]);
            if vi < vb || (vi == vb && key(i) < key(best)) {
                best = i;
            }
        }
        if !chosen.contains(&best) {
            chosen.push(best);
        }
    }
    if chosen.len() < k {
        let mut by_l1: Vec<usize> = (0..n).collect();
        by_l1.sort_by(|&a, &b| {
            key(a)
                .partial_cmp(&key(b))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        for i in by_l1 {
            if chosen.len() == k {
                break;
            }
            if !chosen.contains(&i) {
                chosen.push(i);
            }
        }
    }
    chosen.sort_by_key(|&i| block.id(i));
    for i in chosen {
        out.push_row_from(block, i);
    }
    out
}

/// `true` iff some filter row strictly dominates `coords` — the map-side
/// drop predicate. Equal rows never dominate, so a broadcast filter point is
/// never dropped by its own copy.
pub fn filtered_out(filter: &PointBlock, coords: &[f64]) -> bool {
    filter.iter().any(|(_, f)| dominates_row(f, coords))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn block(rows: &[(u64, &[f64])]) -> PointBlock {
        let pts: Vec<Point> = rows
            .iter()
            .map(|(id, c)| Point::new(*id, c.to_vec()))
            .collect();
        PointBlock::from_points(&pts).unwrap()
    }

    #[test]
    fn per_dimension_minima_always_selected() {
        let b = block(&[
            (0, &[0.1, 9.0]),
            (1, &[9.0, 0.1]),
            (2, &[5.0, 5.0]),
            (3, &[8.0, 8.0]),
        ]);
        let f = select_filter_points(&b, 2);
        assert_eq!(f.ids(), &[0, 1], "both axis minima chosen first");
    }

    #[test]
    fn fillers_are_smallest_l1() {
        let b = block(&[
            (0, &[0.1, 9.0]),
            (1, &[9.0, 0.1]),
            (2, &[1.0, 1.0]), // L1 = 2, the strongest filler
            (3, &[8.0, 8.0]),
        ]);
        let f = select_filter_points(&b, 3);
        assert_eq!(f.ids(), &[0, 1, 2]);
    }

    #[test]
    fn zero_k_and_empty_input_yield_empty_block() {
        let b = block(&[(0, &[1.0, 2.0])]);
        assert!(select_filter_points(&b, 0).is_empty());
        assert!(select_filter_points(&PointBlock::new(2), 4).is_empty());
    }

    #[test]
    fn k_larger_than_input_returns_everything() {
        let b = block(&[(7, &[1.0, 2.0]), (3, &[2.0, 1.0])]);
        let f = select_filter_points(&b, 10);
        assert_eq!(f.ids(), &[3, 7], "ascending id order");
    }

    #[test]
    fn selection_is_deterministic_under_ties() {
        // identical coordinates: the smaller id must win every time
        let b = block(&[(5, &[1.0, 1.0]), (2, &[1.0, 1.0]), (9, &[1.0, 1.0])]);
        for _ in 0..3 {
            let f = select_filter_points(&b, 1);
            assert_eq!(f.ids(), &[2]);
        }
    }

    #[test]
    fn filter_never_drops_a_skyline_point() {
        let mut rng = StdRng::seed_from_u64(41);
        let pts: Vec<Point> = (0..500)
            .map(|i| {
                Point::new(
                    i,
                    (0..3).map(|_| rng.gen_range(0.0..1.0)).collect::<Vec<_>>(),
                )
            })
            .collect();
        let b = PointBlock::from_points(&pts).unwrap();
        let f = select_filter_points(&b, 8);
        let sky = crate::seq::naive_skyline_ids(&pts);
        for (id, coords) in b.iter() {
            if filtered_out(&f, coords) {
                assert!(!sky.contains(&id), "skyline point {id} was filtered");
            }
        }
        // and the filter points themselves survive the sweep
        for (id, coords) in f.iter() {
            assert!(!filtered_out(&f, coords), "filter point {id} self-dropped");
        }
    }

    #[test]
    fn anti_correlated_data_filters_a_large_fraction() {
        // Anti-correlated band around x + y = 1: minima + small-L1 points
        // dominate most of the band's interior.
        let mut rng = StdRng::seed_from_u64(42);
        let pts: Vec<Point> = (0..2000)
            .map(|i| {
                let x: f64 = rng.gen_range(0.0..1.0);
                let noise: f64 = rng.gen_range(0.0..0.3);
                Point::new(i, vec![x, (1.0 - x) + noise])
            })
            .collect();
        let b = PointBlock::from_points(&pts).unwrap();
        let f = select_filter_points(&b, 8);
        let dropped = b.iter().filter(|(_, c)| filtered_out(&f, c)).count();
        assert!(
            dropped * 3 >= b.len(),
            "expected at least a third dropped, got {dropped}/{}",
            b.len()
        );
    }
}
