//! Divide-and-Conquer skyline — the second algorithm of Börzsönyi et al.
//! (ICDE 2001), included as a third independent kernel.
//!
//! The classic scheme recursively computes the skylines of two halves of the
//! input and merges them by eliminating the points of one half dominated by
//! the other. This implementation partitions by the median of the first
//! dimension (the "m-way partitioning" of the original paper specialised to
//! two ways), which yields the standard `O(n·log^{d-2} n)`-flavoured
//! behaviour on random data while staying simple enough to audit.
//!
//! After splitting on the median of dimension 0 into a *low* half `L` and a
//! *high* half `H`:
//!
//! * no point of `L` can be dominated by a point of `H` that beats it on
//!   dimension 0, so `skyline(L)` survives entirely;
//! * points of `skyline(H)` must additionally survive against `skyline(L)`.
//!
//! The cross-filter compares only against `skyline(L)`, which is sound
//! because dominance is transitive (anything dominated by a non-skyline
//! point of `L` is also dominated by a skyline point of `L`).

use crate::dominance::DomCounter;
use crate::point::Point;

/// Execution statistics of a D&C run.
#[derive(Debug, Default, Clone)]
pub struct DncStats {
    /// Pairwise dominance comparisons performed.
    pub counter: DomCounter,
    /// Input cardinality.
    pub input_len: u64,
    /// Output cardinality.
    pub output_len: u64,
    /// Maximum recursion depth reached.
    pub max_depth: u32,
}

/// Below this size the recursion bottoms out into a quadratic scan.
const BASE_CASE: usize = 32;

/// Computes the skyline of `points` by divide and conquer.
///
/// # Examples
///
/// ```
/// use skyline_algos::dnc::dnc_skyline;
/// use skyline_algos::point::Point;
///
/// let pts: Vec<Point> = (0..100)
///     .map(|i| Point::new(i, vec![i as f64, 99.0 - i as f64]))
///     .collect();
/// assert_eq!(dnc_skyline(&pts).len(), 100); // anti-correlated: all survive
/// ```
pub fn dnc_skyline(points: &[Point]) -> Vec<Point> {
    dnc_skyline_stats(points).0
}

/// Like [`dnc_skyline`] but also returns execution statistics.
pub fn dnc_skyline_stats(points: &[Point]) -> (Vec<Point>, DncStats) {
    let mut stats = DncStats {
        input_len: points.len() as u64,
        ..DncStats::default()
    };
    if points.is_empty() {
        return (Vec::new(), stats);
    }
    let mut work: Vec<Point> = points.to_vec();
    let out = recurse(&mut work, 0, &mut stats);
    crate::invariants::check_skyline("dnc", points, &out);
    stats.output_len = out.len() as u64;
    (out, stats)
}

fn base_case(points: &[Point], stats: &mut DncStats) -> Vec<Point> {
    let mut sky: Vec<Point> = Vec::with_capacity(points.len().min(BASE_CASE));
    'outer: for p in points {
        let mut i = 0;
        while i < sky.len() {
            use crate::dominance::DomRelation::*;
            match stats.counter.compare(&sky[i], p) {
                LeftDominates => continue 'outer,
                RightDominates => {
                    sky.swap_remove(i);
                }
                Equal | Incomparable => i += 1,
            }
        }
        sky.push(p.clone());
    }
    sky
}

fn recurse(points: &mut [Point], depth: u32, stats: &mut DncStats) -> Vec<Point> {
    stats.max_depth = stats.max_depth.max(depth);
    if points.len() <= BASE_CASE {
        return base_case(points, stats);
    }
    // Split by *value*, never through a run of dimension-0 ties: with ties
    // straddling the boundary, a high-half point tying on dimension 0 could
    // dominate a low-half point, breaking the "low skyline survives whole"
    // invariant of the merge. Sorting makes the value split a binary search.
    points.sort_unstable_by(|a, b| a.coord(0).total_cmp(&b.coord(0)).then(a.id().cmp(&b.id())));
    let pivot = points[points.len() / 2].coord(0);
    let mut split = points.partition_point(|p| p.coord(0) < pivot);
    if split == 0 {
        // pivot is the minimum value: put the whole tie-run low instead
        split = points.partition_point(|p| p.coord(0) <= pivot);
        if split == points.len() {
            // every point ties on dimension 0 — dominance is decided by the
            // remaining dimensions; fall back to the quadratic scan
            return base_case(points, stats);
        }
    }
    // invariant: every low point is strictly below every high point on
    // dimension 0, so no high point can dominate a low point
    let (lo, hi) = points.split_at_mut(split);
    debug_assert!(!lo.is_empty() && !hi.is_empty());

    let mut sky_lo = recurse(lo, depth + 1, stats);
    let sky_hi = recurse(hi, depth + 1, stats);

    // Cross-filter: keep the high-half skyline points not dominated by any
    // low-half skyline point.
    'candidates: for h in sky_hi {
        for l in &sky_lo {
            if stats.counter.dominates(l, &h) {
                continue 'candidates;
            }
        }
        sky_lo.push(h);
    }
    sky_lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::naive_skyline_ids;

    fn ids(mut v: Vec<Point>) -> Vec<u64> {
        let mut out: Vec<u64> = v.drain(..).map(|p| p.id()).collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert!(dnc_skyline(&[]).is_empty());
        let one = vec![Point::new(0, vec![1.0, 2.0])];
        assert_eq!(ids(dnc_skyline(&one)), vec![0]);
    }

    #[test]
    fn matches_oracle_on_random_data() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(31);
        for trial in 0..20 {
            let n = rng.gen_range(1..500);
            let d = rng.gen_range(1..6);
            let points: Vec<Point> = (0..n)
                .map(|i| {
                    Point::new(
                        i as u64,
                        (0..d).map(|_| rng.gen_range(0.0..4.0)).collect::<Vec<_>>(),
                    )
                })
                .collect();
            assert_eq!(
                ids(dnc_skyline(&points)),
                naive_skyline_ids(&points),
                "trial {trial} n={n} d={d}"
            );
        }
    }

    #[test]
    fn duplicate_coordinates_all_survive() {
        let points: Vec<Point> = (0..100).map(|i| Point::new(i, vec![1.0, 1.0])).collect();
        assert_eq!(dnc_skyline(&points).len(), 100);
    }

    #[test]
    fn anti_correlated_keeps_everything() {
        let points: Vec<Point> = (0..200)
            .map(|i| Point::new(i, vec![i as f64, 199.0 - i as f64]))
            .collect();
        let (sky, stats) = dnc_skyline_stats(&points);
        assert_eq!(sky.len(), 200);
        assert!(stats.max_depth >= 2, "must actually recurse");
    }

    #[test]
    fn correlated_chain_keeps_minimum() {
        let points: Vec<Point> = (0..200)
            .map(|i| Point::new(i, vec![i as f64, i as f64]))
            .collect();
        assert_eq!(ids(dnc_skyline(&points)), vec![0]);
    }

    #[test]
    fn fewer_comparisons_than_naive_on_big_correlated_input() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(33);
        let points: Vec<Point> = (0..2000)
            .map(|i| {
                let base: f64 = rng.gen_range(0.0..1.0);
                Point::new(
                    i,
                    vec![
                        base + rng.gen_range(0.0..0.1),
                        base + rng.gen_range(0.0..0.1),
                    ],
                )
            })
            .collect();
        let (_, stats) = dnc_skyline_stats(&points);
        let naive_comps = (points.len() * points.len()) as u64;
        assert!(
            stats.counter.comparisons() < naive_comps / 10,
            "D&C used {} comparisons, naive would use {naive_comps}",
            stats.counter.comparisons()
        );
    }

    #[test]
    fn ties_on_dim_zero_across_the_split_are_handled() {
        // regression: with dim-0 ties straddling a positional median split,
        // a high-half point that ties on dim 0 can dominate a low-half
        // point; the value split must keep tie-runs together
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(97);
        for trial in 0..30 {
            // few distinct dim-0 values → heavy ties, enough points to recurse
            let points: Vec<Point> = (0..120)
                .map(|i| {
                    Point::new(
                        i,
                        vec![
                            f64::from(rng.gen_range(0..3)),
                            rng.gen_range(0.0..4.0),
                            rng.gen_range(0.0..4.0),
                        ],
                    )
                })
                .collect();
            assert_eq!(
                ids(dnc_skyline(&points)),
                naive_skyline_ids(&points),
                "trial {trial}"
            );
        }
    }

    #[test]
    fn all_points_tie_on_dim_zero() {
        let points: Vec<Point> = (0..100)
            .map(|i| Point::new(i, vec![5.0, (i % 10) as f64, (i / 10) as f64]))
            .collect();
        assert_eq!(ids(dnc_skyline(&points)), naive_skyline_ids(&points));
    }

    #[test]
    fn stats_account_io() {
        let points: Vec<Point> = (0..100)
            .map(|i| Point::new(i, vec![(i % 10) as f64, (i / 10) as f64]))
            .collect();
        let (sky, stats) = dnc_skyline_stats(&points);
        assert_eq!(stats.input_len, 100);
        assert_eq!(stats.output_len, sky.len() as u64);
    }
}
