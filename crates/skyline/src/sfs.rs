//! Sort-Filter-Skyline (SFS) — Chomicki, Godfrey, Gryz, Liang, ICDE 2003.
//!
//! SFS presorts the input by a *monotone* scoring function (here the entropy
//! score `Σ ln(1 + v_i)`): if `score(p) < score(q)` then `q` cannot dominate
//! `p`, so a single forward pass comparing each point only against already
//! accepted skyline points is sufficient — no window eviction ever happens.
//!
//! In this suite SFS serves two purposes:
//! * an **independent oracle**: it shares no code path with BNL beyond the
//!   dominance primitive, so agreement between the two is strong evidence of
//!   correctness;
//! * a **pluggable local kernel**: `--kernel sfs` (or the `Auto` selector)
//!   swaps SFS for BNL in the MapReduce local-skyline stage, where it wins
//!   on large anti-correlated partitions.
//!
//! This module is a thin `Point` bridge over the columnar
//! [`block_sfs_stats`](crate::kernel::block_sfs_stats) kernel — there is
//! exactly one SFS implementation, so [`SfsStats`] and
//! [`KernelStats`](crate::kernel::KernelStats) report the same numbers by
//! construction and cannot drift.

use crate::block::PointBlock;
use crate::dominance::DomCounter;
use crate::kernel::block_sfs_stats;
use crate::point::Point;

/// Execution statistics of an SFS run.
#[derive(Debug, Default, Clone)]
pub struct SfsStats {
    /// Pairwise dominance comparisons performed.
    pub counter: DomCounter,
    /// Input cardinality.
    pub input_len: u64,
    /// Output (skyline) cardinality.
    pub output_len: u64,
}

/// Computes the skyline of `points` with SFS.
///
/// # Examples
///
/// ```
/// use skyline_algos::sfs::sfs_skyline;
/// use skyline_algos::point::Point;
///
/// let pts = vec![Point::new(0, vec![1.0, 2.0]), Point::new(1, vec![2.0, 3.0])];
/// assert_eq!(sfs_skyline(&pts).len(), 1); // point 1 is dominated
/// ```
pub fn sfs_skyline(points: &[Point]) -> Vec<Point> {
    sfs_skyline_stats(points).0
}

/// Like [`sfs_skyline`] but also returns execution statistics.
///
/// # Panics
///
/// Panics if the points disagree on dimensionality (the same precondition
/// every dominance primitive already imposes).
pub fn sfs_skyline_stats(points: &[Point]) -> (Vec<Point>, SfsStats) {
    let mut stats = SfsStats {
        input_len: points.len() as u64,
        ..SfsStats::default()
    };
    let Some(first) = points.first() else {
        return (Vec::new(), stats);
    };
    let mut block = PointBlock::with_capacity(first.dim(), points.len());
    for p in points {
        block.push_point(p);
    }
    let (sky, kernel_stats) = block_sfs_stats(&block);
    stats.counter = DomCounter::from_counts(kernel_stats.comparisons, kernel_stats.dim_weighted);
    stats.output_len = kernel_stats.output_len;
    (sky.to_points(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::naive_skyline_ids;

    fn ids(mut v: Vec<Point>) -> Vec<u64> {
        let mut out: Vec<u64> = v.drain(..).map(|p| p.id()).collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn empty_input() {
        let (sky, stats) = sfs_skyline_stats(&[]);
        assert!(sky.is_empty());
        assert_eq!(stats.counter.comparisons(), 0);
    }

    #[test]
    fn matches_oracle_on_random_data() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..25 {
            let n = rng.gen_range(1..300);
            let d = rng.gen_range(1..7);
            let points: Vec<Point> = (0..n)
                .map(|i| {
                    Point::new(
                        i as u64,
                        (0..d).map(|_| rng.gen_range(0.0..5.0)).collect::<Vec<_>>(),
                    )
                })
                .collect();
            assert_eq!(
                ids(sfs_skyline(&points)),
                naive_skyline_ids(&points),
                "trial {trial}"
            );
        }
    }

    #[test]
    fn duplicates_survive() {
        let points = vec![
            Point::new(0, vec![1.0, 1.0]),
            Point::new(1, vec![1.0, 1.0]),
            Point::new(2, vec![0.5, 3.0]),
        ];
        assert_eq!(ids(sfs_skyline(&points)), vec![0, 1, 2]);
    }

    #[test]
    fn presort_means_fewer_comparisons_than_quadratic() {
        // A dominated-heavy dataset: correlated diagonal.
        let points: Vec<Point> = (0..200)
            .map(|i| Point::new(i, vec![i as f64, i as f64 + 0.5]))
            .collect();
        let (sky, stats) = sfs_skyline_stats(&points);
        assert_eq!(sky.len(), 1);
        // each point after the first compares only against the 1-point skyline
        assert!(stats.counter.comparisons() <= 199 * 2);
    }

    #[test]
    fn stats_lengths_consistent() {
        let points: Vec<Point> = (0..10)
            .map(|i| Point::new(i, vec![i as f64, 9.0 - i as f64]))
            .collect();
        let (sky, stats) = sfs_skyline_stats(&points);
        assert_eq!(stats.input_len, 10);
        assert_eq!(stats.output_len, sky.len() as u64);
        assert_eq!(sky.len(), 10);
    }

    #[test]
    fn bridge_reports_the_block_kernel_numbers() {
        use crate::kernel::block_sfs_stats;
        let points: Vec<Point> = (0..60)
            .map(|i| Point::new(i, vec![(i % 7) as f64, (i % 11) as f64, (i % 5) as f64]))
            .collect();
        let (sky, stats) = sfs_skyline_stats(&points);
        let block = PointBlock::from_points(&points).unwrap();
        let (bsky, bstats) = block_sfs_stats(&block);
        assert_eq!(sky, bsky.to_points(), "same rows in the same order");
        assert_eq!(stats.counter.comparisons(), bstats.comparisons);
        assert_eq!(stats.counter.dim_weighted(), bstats.dim_weighted);
        assert_eq!(stats.output_len, bstats.output_len);
    }

    #[test]
    fn output_is_entropy_sorted() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(21);
        let points: Vec<Point> = (0..120)
            .map(|i| {
                Point::new(
                    i,
                    (0..3).map(|_| rng.gen_range(0.0..4.0)).collect::<Vec<_>>(),
                )
            })
            .collect();
        let sky = sfs_skyline(&points);
        for w in sky.windows(2) {
            assert!(w[0].entropy_score() <= w[1].entropy_score());
        }
    }
}
