//! Naive O(n²) reference skyline, used as the oracle in tests.
//!
//! Deliberately the most literal transcription of the definition in the
//! paper's Section II: a point is in the skyline iff no other point dominates
//! it. Kept separate from the production kernels so that a bug in BNL/SFS
//! cannot hide behind a shared helper.

use crate::dominance::dominates;
use crate::point::Point;

/// Returns the skyline of `points` by checking every point against every
/// other point. Quadratic; only for tests, tiny inputs, and cross-checks.
pub fn naive_skyline(points: &[Point]) -> Vec<Point> {
    points
        .iter()
        .filter(|p| !points.iter().any(|q| dominates(q, p)))
        .cloned()
        .collect()
}

/// Returns the ids of the skyline points, sorted — the canonical comparison
/// form used throughout the test suite.
pub fn naive_skyline_ids(points: &[Point]) -> Vec<u64> {
    let mut ids: Vec<u64> = naive_skyline(points).iter().map(Point::id).collect();
    ids.sort_unstable();
    ids
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_singleton() {
        assert!(naive_skyline(&[]).is_empty());
        let p = vec![Point::new(0, vec![1.0])];
        assert_eq!(naive_skyline(&p).len(), 1);
    }

    #[test]
    fn totally_ordered_chain_keeps_minimum() {
        let p: Vec<Point> = (0..10)
            .map(|i| Point::new(i, vec![i as f64, i as f64]))
            .collect();
        assert_eq!(naive_skyline_ids(&p), vec![0]);
    }

    #[test]
    fn antichain_keeps_everything() {
        let p: Vec<Point> = (0..10)
            .map(|i| Point::new(i, vec![i as f64, 9.0 - i as f64]))
            .collect();
        assert_eq!(naive_skyline_ids(&p), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn skyline_points_are_not_dominated_and_others_are() {
        let p: Vec<Point> = vec![
            Point::new(0, vec![2.0, 2.0]),
            Point::new(1, vec![1.0, 3.0]),
            Point::new(2, vec![3.0, 3.0]),
            Point::new(3, vec![2.5, 1.0]),
        ];
        let sky = naive_skyline(&p);
        let sky_ids = naive_skyline_ids(&p);
        assert_eq!(sky_ids, vec![0, 1, 3]);
        // completeness: every excluded point dominated by some skyline point
        for q in &p {
            if !sky_ids.contains(&q.id()) {
                assert!(sky.iter().any(|s| crate::dominance::dominates(s, q)));
            }
        }
    }
}
