//! Feature-gated kernel invariant checks (`strict-invariants`).
//!
//! Every skyline kernel funnels its result through [`check_skyline`] before
//! returning. With the `strict-invariants` cargo feature **off** (the
//! default) the call compiles to nothing; with it **on**, the result is
//! verified against the definition of a skyline:
//!
//! 1. **membership** — every output point is an input point (by id);
//! 2. **minimality** — no output point dominates another output point
//!    (this also exercises dominance antisymmetry: if `a` dominates `b`
//!    then `b` must not dominate `a`);
//! 3. **completeness** — every input point absent from the output is
//!    dominated by some output point (nothing was pruned unsoundly);
//! 4. **irreflexivity** — no output point dominates itself.
//!
//! The checks are `O(n·m·d)` (`n` inputs, `m` skyline members), which is why
//! they hide behind a feature rather than `debug_assert!` alone: release
//! benchmarks and large sweeps must not pay for them, but
//! `cargo test --features strict-invariants` turns every existing test into
//! a soundness proof of the kernel that produced its result.

#[cfg(feature = "strict-invariants")]
use crate::dominance::dominates;
use crate::point::Point;

/// Asserts that `skyline` is exactly the skyline of `input`.
///
/// No-op unless the `strict-invariants` feature is enabled.
#[cfg(feature = "strict-invariants")]
pub fn check_skyline(kernel: &'static str, input: &[Point], skyline: &[Point]) {
    use std::collections::HashSet;

    let input_ids: HashSet<u64> = input.iter().map(Point::id).collect();
    for s in skyline {
        assert!(
            input_ids.contains(&s.id()),
            "strict-invariants[{kernel}]: output point id {} is not an input point",
            s.id()
        );
        assert!(
            !dominates(s, s),
            "strict-invariants[{kernel}]: dominance is not irreflexive on id {}",
            s.id()
        );
    }
    for (i, a) in skyline.iter().enumerate() {
        for b in &skyline[i + 1..] {
            assert!(
                !(dominates(a, b) && dominates(b, a)),
                "strict-invariants[{kernel}]: dominance antisymmetry violated between ids {} and {}",
                a.id(),
                b.id()
            );
            assert!(
                !dominates(a, b) && !dominates(b, a),
                "strict-invariants[{kernel}]: skyline not minimal — id {} vs id {}",
                a.id(),
                b.id()
            );
        }
    }
    let skyline_ids: HashSet<u64> = skyline.iter().map(Point::id).collect();
    for p in input {
        if skyline_ids.contains(&p.id()) {
            continue;
        }
        assert!(
            skyline.iter().any(|s| dominates(s, p)),
            "strict-invariants[{kernel}]: input id {} was dropped but is undominated",
            p.id()
        );
    }
}

/// No-op stand-in compiled when `strict-invariants` is disabled.
#[cfg(not(feature = "strict-invariants"))]
#[inline(always)]
pub fn check_skyline(_kernel: &'static str, _input: &[Point], _skyline: &[Point]) {}

/// Columnar variant of [`check_skyline`]: verifies a [`PointBlock`] result
/// against its block input. Conversion to `Point`s only happens when the
/// feature is on, so block kernels pay nothing in release builds.
#[cfg(feature = "strict-invariants")]
pub fn check_skyline_block(
    kernel: &'static str,
    input: &crate::block::PointBlock,
    skyline: &crate::block::PointBlock,
) {
    check_skyline(kernel, &input.to_points(), &skyline.to_points());
}

/// No-op stand-in compiled when `strict-invariants` is disabled.
#[cfg(not(feature = "strict-invariants"))]
#[inline(always)]
pub fn check_skyline_block(
    _kernel: &'static str,
    _input: &crate::block::PointBlock,
    _skyline: &crate::block::PointBlock,
) {
}

#[cfg(all(test, feature = "strict-invariants"))]
mod tests {
    use super::*;

    fn p(id: u64, coords: Vec<f64>) -> Point {
        Point::new(id, coords)
    }

    #[test]
    fn accepts_a_correct_skyline() {
        let input = vec![
            p(0, vec![1.0, 2.0]),
            p(1, vec![2.0, 1.0]),
            p(2, vec![3.0, 3.0]),
        ];
        let skyline = vec![input[0].clone(), input[1].clone()];
        check_skyline("test", &input, &skyline);
    }

    #[test]
    #[should_panic(expected = "not minimal")]
    fn rejects_a_dominated_member() {
        let input = vec![p(0, vec![1.0, 1.0]), p(1, vec![2.0, 2.0])];
        let skyline = input.clone();
        check_skyline("test", &input, &skyline);
    }

    #[test]
    #[should_panic(expected = "undominated")]
    fn rejects_unsound_pruning() {
        let input = vec![p(0, vec![1.0, 2.0]), p(1, vec![2.0, 1.0])];
        let skyline = vec![input[0].clone()];
        check_skyline("test", &input, &skyline);
    }

    #[test]
    #[should_panic(expected = "not an input point")]
    fn rejects_fabricated_members() {
        let input = vec![p(0, vec![1.0, 2.0])];
        let skyline = vec![p(7, vec![0.5, 0.5])];
        check_skyline("test", &input, &skyline);
    }
}
