//! Quality metrics: local skyline optimality (paper Eq. 5), dominance
//! ability (Section IV, Theorems 1–2), and load-balance statistics.

use crate::dominance::dominates;
use crate::partition::SpacePartitioner;
use crate::point::Point;
use std::collections::HashSet;

/// Local skyline optimality — paper Eq. (5):
///
/// ```text
/// LSO = (1/N) Σ_i |sky_i ∩ sky_global| / |sky_i|
/// ```
///
/// the mean, over partitions, of the fraction of each partition's local
/// skyline that is also globally optimal. Higher is better: it measures how
/// little redundant work the Reduce (merge) stage must undo, and — the
/// paper's QoS argument — how likely a locally selected service is to be a
/// globally optimal choice.
///
/// Partitions with an empty local skyline (i.e. empty partitions) are skipped
/// in the average, matching the paper's "average value of each partition"
/// reading; a ratio for an empty set is undefined.
pub fn local_skyline_optimality(local_skylines: &[Vec<Point>], global_skyline: &[Point]) -> f64 {
    let global_ids: HashSet<u64> = global_skyline.iter().map(Point::id).collect();
    let mut sum = 0.0;
    let mut parts = 0usize;
    for local in local_skylines {
        if local.is_empty() {
            continue;
        }
        let hits = local
            .iter()
            .filter(|p| global_ids.contains(&p.id()))
            .count();
        sum += hits as f64 / local.len() as f64;
        parts += 1;
    }
    if parts == 0 {
        0.0
    } else {
        sum / parts as f64
    }
}

/// Exact dominance ability of a skyline point `s = (x, y)` under **angular**
/// partitioning — paper Theorem 1.
///
/// Setting: a square data space of side `2L` divided into 4 partitions, with
/// `s` in the sector adjacent to the x-axis (so `y ≤ x/2` within that
/// sector, tan(π/8)-style simplification the paper makes: the sector below
/// the `y = x/2` line). The dominance region of `s` inside its own partition
/// has area `L² − x²/4 − (2L − x)·y`, hence:
///
/// ```text
/// D_angle = (L² − x²/4 − (2L−x)·y) / L²
/// ```
pub fn dominance_ability_angle(x: f64, y: f64, l: f64) -> f64 {
    assert!(l > 0.0, "half-side L must be positive");
    (l * l - x * x / 4.0 - (2.0 * l - x) * y) / (l * l)
}

/// Exact dominance ability of `s = (x, y)` under **grid** partitioning in the
/// same setting (used inside the proof of Theorem 2):
///
/// ```text
/// D_grid = (L − x)(L − y) / L²
/// ```
pub fn dominance_ability_grid(x: f64, y: f64, l: f64) -> f64 {
    assert!(l > 0.0, "half-side L must be positive");
    (l - x) * (l - y) / (l * l)
}

/// Theorem 2's lower bound on the advantage of angular over grid
/// partitioning:
///
/// ```text
/// ΔD = D_angle − D_grid ≥ x/(2L²) · (L − x/2)
/// ```
///
/// valid for points with `y ≤ x/2` (the paper's sector condition).
pub fn dominance_gap_lower_bound(x: f64, l: f64) -> f64 {
    assert!(l > 0.0, "half-side L must be positive");
    x / (2.0 * l * l) * (l - x / 2.0)
}

/// Empirical dominance ability of `s` within its own partition, estimated by
/// Monte-Carlo over `samples` uniform points of the `bounds_side`-sided
/// square anchored at the origin: the fraction of same-partition samples that
/// `s` dominates (the paper's `D = Num_s / Num_all` definition, restricted to
/// the partition, matching its `Area_s / Area_all` continuous version).
///
/// Works for any dimensionality and any partitioner, so it is the tool that
/// lets the Fig. 4 bench verify the closed-form 2-D theorems *and* probe the
/// high-dimensional case the paper only asserts.
pub fn empirical_dominance_ability<R: rand::Rng>(
    s: &Point,
    partitioner: &dyn SpacePartitioner,
    bounds_side: f64,
    samples: usize,
    rng: &mut R,
) -> f64 {
    assert!(samples > 0, "need at least one sample");
    let d = s.dim();
    let own = partitioner.partition_of(s);
    let mut in_partition = 0usize;
    let mut dominated = 0usize;
    let mut coords = vec![0.0; d];
    for i in 0..samples {
        for c in coords.iter_mut() {
            *c = rng.gen_range(0.0..bounds_side);
        }
        let q = Point::new(i as u64, coords.clone());
        if partitioner.partition_of(&q) == own {
            in_partition += 1;
            if dominates(s, &q) {
                dominated += 1;
            }
        }
    }
    if in_partition == 0 {
        0.0
    } else {
        dominated as f64 / in_partition as f64
    }
}

/// Load-balance statistics over per-partition point counts.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LoadBalance {
    /// Mean points per partition.
    pub mean: f64,
    /// Population standard deviation of the counts.
    pub std_dev: f64,
    /// Coefficient of variation `std_dev / mean` (0 = perfectly balanced).
    pub cv: f64,
    /// Largest partition.
    pub max: usize,
    /// Smallest partition.
    pub min: usize,
    /// Number of empty partitions.
    pub empty: usize,
}

/// Computes [`LoadBalance`] from partition sizes.
///
/// # Panics
///
/// Panics if `counts` is empty.
pub fn load_balance(counts: &[usize]) -> LoadBalance {
    assert!(
        !counts.is_empty(),
        "load balance needs at least one partition"
    );
    let n = counts.len() as f64;
    let mean = counts.iter().sum::<usize>() as f64 / n;
    let var = counts
        .iter()
        .map(|&c| {
            let d = c as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / n;
    let std_dev = var.sqrt();
    LoadBalance {
        mean,
        std_dev,
        cv: if mean > 0.0 { std_dev / mean } else { 0.0 },
        max: counts.iter().max().copied().unwrap_or(0),
        min: counts.iter().min().copied().unwrap_or(0),
        empty: counts.iter().filter(|&&c| c == 0).count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{AnglePartitioner, Bounds, GridPartitioner};

    fn p(id: u64, c: &[f64]) -> Point {
        Point::new(id, c.to_vec())
    }

    #[test]
    fn optimality_all_global() {
        let global = vec![p(0, &[1.0]), p(1, &[1.0])];
        let locals = vec![vec![p(0, &[1.0])], vec![p(1, &[1.0])]];
        assert_eq!(local_skyline_optimality(&locals, &global), 1.0);
    }

    #[test]
    fn optimality_none_global() {
        let global = vec![p(9, &[0.0])];
        let locals = vec![vec![p(0, &[1.0])], vec![p(1, &[2.0])]];
        assert_eq!(local_skyline_optimality(&locals, &global), 0.0);
    }

    #[test]
    fn optimality_mixed_partitions() {
        let global = vec![p(0, &[1.0]), p(2, &[1.0])];
        // partition A: 1 of 2 global; partition B: 1 of 1 global → mean 0.75
        let locals = vec![vec![p(0, &[1.0]), p(1, &[1.0])], vec![p(2, &[1.0])]];
        assert!((local_skyline_optimality(&locals, &global) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn optimality_skips_empty_partitions() {
        let global = vec![p(0, &[1.0])];
        let locals = vec![vec![p(0, &[1.0])], vec![]];
        assert_eq!(local_skyline_optimality(&locals, &global), 1.0);
        assert_eq!(local_skyline_optimality(&[], &global), 0.0);
    }

    #[test]
    fn theorem1_formula_at_origin() {
        // s at the origin dominates its entire partition: D = 1.
        assert!((dominance_ability_angle(0.0, 0.0, 1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn theorem2_gap_nonnegative_in_sector() {
        // For any (x, y) with 0 ≤ y ≤ x/2 ≤ L, ΔD ≥ bound ≥ 0.
        let l = 1.0;
        for xi in 0..=20 {
            let x = 2.0 * l * f64::from(xi) / 20.0; // x ∈ [0, 2L]
            if x > 2.0 * l {
                continue;
            }
            for yi in 0..=10 {
                let y = (x / 2.0) * f64::from(yi) / 10.0;
                let gap = dominance_ability_angle(x, y, l) - dominance_ability_grid(x, y, l);
                let bound = dominance_gap_lower_bound(x, l);
                assert!(
                    gap >= bound - 1e-9,
                    "x={x} y={y}: gap {gap} < bound {bound}"
                );
                assert!(bound >= -1e-12);
            }
        }
    }

    #[test]
    fn theorem2_algebra_identity() {
        // ΔD = (−x²/4 − yL + xL)/L² exactly, per the proof's middle line.
        let (x, y, l) = (0.6, 0.2, 1.3);
        let gap = dominance_ability_angle(x, y, l) - dominance_ability_grid(x, y, l);
        let direct = (-x * x / 4.0 - y * l + x * l) / (l * l);
        assert!((gap - direct).abs() < 1e-12);
    }

    #[test]
    fn empirical_matches_theorem1_2d() {
        use rand::{rngs::StdRng, SeedableRng};
        let l = 1.0;
        let side = 2.0 * l;
        // Point in the sector adjacent to the x-axis with y ≤ x/2·tan-ish
        // condition; pick (0.8, 0.15) which lies in the lowest of 4 sectors
        // (slope 0.1875 < tan(π/8) ≈ 0.414).
        let s = p(u64::MAX, &[0.8, 0.15]);
        let part = AnglePartitioner::fit(&Bounds::zero_to(side, 2), 4).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let est = empirical_dominance_ability(&s, &part, side, 200_000, &mut rng);
        // Theorem 1's formula describes a 4-sector partition bounded by the
        // line y = x/2 rather than the equal-angle π/8 line, so allow a few
        // percent of modelling slack on top of Monte-Carlo noise.
        let exact = dominance_ability_angle(0.8, 0.15, l);
        assert!(
            (est - exact).abs() < 0.08,
            "Monte-Carlo {est} vs Theorem 1 {exact}"
        );
    }

    #[test]
    fn empirical_matches_grid_formula_2d() {
        use rand::{rngs::StdRng, SeedableRng};
        let l = 1.0;
        let side = 2.0 * l;
        let s = p(u64::MAX, &[0.8, 0.15]); // bottom-left cell of the 2×2 grid
        let part = GridPartitioner::fit(&Bounds::zero_to(side, 2), 4).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let est = empirical_dominance_ability(&s, &part, side, 200_000, &mut rng);
        let exact = dominance_ability_grid(0.8, 0.15, l);
        assert!(
            (est - exact).abs() < 0.02,
            "Monte-Carlo {est} vs formula {exact}"
        );
    }

    #[test]
    fn load_balance_statistics() {
        let lb = load_balance(&[10, 10, 10, 10]);
        assert_eq!(lb.cv, 0.0);
        assert_eq!(lb.empty, 0);
        let lb = load_balance(&[0, 20]);
        assert_eq!(lb.mean, 10.0);
        assert_eq!(lb.max, 20);
        assert_eq!(lb.min, 0);
        assert_eq!(lb.empty, 1);
        assert!((lb.cv - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn load_balance_rejects_empty() {
        let _ = load_balance(&[]);
    }
}
