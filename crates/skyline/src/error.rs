//! Error type for the skyline substrate.

use std::fmt;

/// Errors produced while constructing points or configuring partitioners.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SkylineError {
    /// A point was constructed with zero dimensions.
    EmptyPoint {
        /// Identifier of the offending point.
        id: u64,
    },
    /// A coordinate was NaN or infinite.
    NonFiniteCoordinate {
        /// Identifier of the offending point.
        id: u64,
        /// Index of the offending dimension.
        dim: usize,
    },
    /// Two points (or a point and a partitioner) disagree on dimensionality.
    DimensionMismatch {
        /// Expected number of dimensions.
        expected: usize,
        /// Number of dimensions actually seen.
        actual: usize,
    },
    /// A partitioner was asked for zero partitions.
    ZeroPartitions,
    /// A dataset required by an operation was empty.
    EmptyDataset,
    /// A chunk task of a parallel run failed every attempt it was granted;
    /// the panic payload (or transient error) is carried as text so the
    /// failure surfaces as an error value instead of unwinding through the
    /// caller, together with enough context to know what was lost.
    WorkerPanic {
        /// Index of the chunk whose task failed (lowest index if several).
        chunk: usize,
        /// Attempts the chunk consumed before giving up.
        attempts: u32,
        /// Local skylines that *had* completed when the run aborted — the
        /// surviving workers drain the queue before the error is returned.
        completed: usize,
        /// Stringified panic payload / transient error of the failed chunk.
        message: String,
    },
}

impl fmt::Display for SkylineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SkylineError::EmptyPoint { id } => {
                write!(f, "point {id} has no dimensions")
            }
            SkylineError::NonFiniteCoordinate { id, dim } => {
                write!(
                    f,
                    "point {id} has a non-finite coordinate on dimension {dim}"
                )
            }
            SkylineError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            SkylineError::ZeroPartitions => write!(f, "partition count must be at least 1"),
            SkylineError::EmptyDataset => write!(f, "operation requires a non-empty dataset"),
            SkylineError::WorkerPanic {
                chunk,
                attempts,
                completed,
                message,
            } => {
                write!(
                    f,
                    "skyline chunk {chunk} failed after {attempts} attempt(s) \
                     ({completed} local skylines completed): {message}"
                )
            }
        }
    }
}

impl std::error::Error for SkylineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let e = SkylineError::DimensionMismatch {
            expected: 4,
            actual: 2,
        };
        assert_eq!(e.to_string(), "dimension mismatch: expected 4, got 2");
        assert!(SkylineError::ZeroPartitions
            .to_string()
            .contains("at least 1"));
        assert!(SkylineError::EmptyDataset.to_string().contains("non-empty"));
        let wp = SkylineError::WorkerPanic {
            chunk: 4,
            attempts: 3,
            completed: 7,
            message: "boom".into(),
        };
        let text = wp.to_string();
        assert!(text.contains("chunk 4"), "{text}");
        assert!(text.contains("3 attempt(s)"), "{text}");
        assert!(text.contains("7 local skylines completed"), "{text}");
        assert!(text.contains("boom"), "{text}");
        assert!(SkylineError::EmptyPoint { id: 2 }.to_string().contains("2"));
        let nf = SkylineError::NonFiniteCoordinate { id: 1, dim: 3 };
        assert!(nf.to_string().contains("dimension 3"));
    }

    #[test]
    fn implements_std_error() {
        fn assert_error<E: std::error::Error>() {}
        assert_error::<SkylineError>();
    }
}
