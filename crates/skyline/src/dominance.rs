//! The dominance relation (paper Section II) and instrumented counting.
//!
//! With lower-is-better semantics, point `p` **dominates** `q` iff `p` is
//! less than or equal to `q` on every dimension and strictly less on at least
//! one. Dominance is a strict partial order: irreflexive, asymmetric, and
//! transitive. The skyline of a set is exactly its set of non-dominated
//! points (the minimal elements of the order).
//!
//! Every pairwise dominance check performed by the MapReduce jobs is funnelled
//! through [`DomCounter`] so the cluster cost model can convert comparison
//! counts into simulated CPU time.

use crate::point::Point;

/// Result of comparing two points under the dominance order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DomRelation {
    /// The left point dominates the right one.
    LeftDominates,
    /// The right point dominates the left one.
    RightDominates,
    /// The points are equal on every dimension.
    Equal,
    /// Neither point dominates the other (and they are not equal).
    Incomparable,
}

/// Returns `true` iff `p` dominates `q`: `p ≤ q` on all dimensions and
/// `p < q` on at least one.
///
/// # Panics
///
/// Panics in debug builds if the points have different dimensionality.
#[inline]
pub fn dominates(p: &Point, q: &Point) -> bool {
    debug_assert_eq!(p.dim(), q.dim(), "dominance requires equal dimensionality");
    let (a, b) = (p.coords(), q.coords());
    let mut strictly_less = false;
    for i in 0..a.len() {
        if a[i] > b[i] {
            return false;
        }
        if a[i] < b[i] {
            strictly_less = true;
        }
    }
    strictly_less
}

/// Returns `true` iff `p` is strictly smaller than `q` on **every** dimension.
///
/// Strict dominance is what grid-cell pruning needs: if cell A's worst corner
/// strictly dominates cell B's best corner, every point of A dominates every
/// point of B.
#[inline]
pub fn strictly_dominates(p: &Point, q: &Point) -> bool {
    debug_assert_eq!(p.dim(), q.dim(), "dominance requires equal dimensionality");
    p.coords().iter().zip(q.coords()).all(|(a, b)| a < b)
}

/// Classifies the pair `(p, q)` in a single pass over the coordinates.
#[inline]
pub fn compare(p: &Point, q: &Point) -> DomRelation {
    debug_assert_eq!(p.dim(), q.dim(), "dominance requires equal dimensionality");
    let (a, b) = (p.coords(), q.coords());
    let mut p_better = false;
    let mut q_better = false;
    for i in 0..a.len() {
        if a[i] < b[i] {
            p_better = true;
        } else if a[i] > b[i] {
            q_better = true;
        }
        if p_better && q_better {
            return DomRelation::Incomparable;
        }
    }
    match (p_better, q_better) {
        (true, false) => DomRelation::LeftDominates,
        (false, true) => DomRelation::RightDominates,
        (false, false) => DomRelation::Equal,
        (true, true) => unreachable!("early return above"),
    }
}

/// Counts dominance comparisons so the MapReduce cost model can charge
/// simulated CPU time per comparison (scaled by dimensionality).
///
/// A plain `u64` wrapper rather than an atomic: each map/reduce task owns its
/// counter and the runtime aggregates them after the task finishes, so no
/// cross-thread sharing is needed on the hot path.
#[derive(Debug, Default, Clone)]
pub struct DomCounter {
    comparisons: u64,
    dim_weighted: u64,
}

impl DomCounter {
    /// Creates a fresh counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Instrumented version of [`compare`].
    #[inline]
    pub fn compare(&mut self, p: &Point, q: &Point) -> DomRelation {
        self.comparisons += 1;
        self.dim_weighted += p.dim() as u64;
        compare(p, q)
    }

    /// Instrumented version of [`dominates`].
    #[inline]
    pub fn dominates(&mut self, p: &Point, q: &Point) -> bool {
        self.comparisons += 1;
        self.dim_weighted += p.dim() as u64;
        dominates(p, q)
    }

    /// Number of pairwise comparisons performed.
    #[inline]
    pub fn comparisons(&self) -> u64 {
        self.comparisons
    }

    /// Comparisons weighted by point dimensionality (`Σ d` over comparisons),
    /// the quantity the cost model converts to CPU seconds.
    #[inline]
    pub fn dim_weighted(&self) -> u64 {
        self.dim_weighted
    }

    /// Reconstitutes a counter from already-aggregated totals — the bridge
    /// from block-kernel [`KernelStats`](crate::kernel::KernelStats) back
    /// to the AoS counter interface, so both stats types report the same
    /// numbers from the one shared kernel.
    pub fn from_counts(comparisons: u64, dim_weighted: u64) -> Self {
        Self {
            comparisons,
            dim_weighted,
        }
    }

    /// Folds another counter into this one (task → job aggregation).
    pub fn merge(&mut self, other: &DomCounter) {
        self.comparisons += other.comparisons;
        self.dim_weighted += other.dim_weighted;
    }

    /// Resets both counters to zero.
    pub fn reset(&mut self) {
        self.comparisons = 0;
        self.dim_weighted = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(id: u64, c: &[f64]) -> Point {
        Point::new(id, c.to_vec())
    }

    #[test]
    fn dominates_requires_strict_improvement_somewhere() {
        let a = p(0, &[1.0, 2.0]);
        let b = p(1, &[1.0, 2.0]);
        assert!(!dominates(&a, &b), "equal points do not dominate");
        let c = p(2, &[1.0, 1.5]);
        assert!(dominates(&c, &a));
        assert!(!dominates(&a, &c));
    }

    #[test]
    fn dominates_fails_on_any_worse_dimension() {
        let a = p(0, &[1.0, 3.0]);
        let b = p(1, &[2.0, 2.0]);
        assert!(!dominates(&a, &b));
        assert!(!dominates(&b, &a));
    }

    #[test]
    fn dominance_is_irreflexive() {
        let a = p(0, &[0.3, 0.7, 0.1]);
        assert!(!dominates(&a, &a));
    }

    #[test]
    fn dominance_is_transitive_spot_check() {
        let a = p(0, &[1.0, 1.0]);
        let b = p(1, &[2.0, 2.0]);
        let c = p(2, &[3.0, 2.0]);
        assert!(dominates(&a, &b) && dominates(&b, &c) && dominates(&a, &c));
    }

    #[test]
    fn strict_dominance_needs_all_dims() {
        let a = p(0, &[1.0, 2.0]);
        let b = p(1, &[2.0, 2.5]);
        assert!(strictly_dominates(&a, &b));
        let c = p(2, &[1.0, 2.5]); // ties on dim 0
        assert!(dominates(&a, &c));
        assert!(!strictly_dominates(&a, &c));
    }

    #[test]
    fn compare_classifies_all_four_cases() {
        let a = p(0, &[1.0, 1.0]);
        let b = p(1, &[2.0, 2.0]);
        let c = p(2, &[0.0, 3.0]);
        let a2 = p(3, &[1.0, 1.0]);
        assert_eq!(compare(&a, &b), DomRelation::LeftDominates);
        assert_eq!(compare(&b, &a), DomRelation::RightDominates);
        assert_eq!(compare(&a, &a2), DomRelation::Equal);
        assert_eq!(compare(&a, &c), DomRelation::Incomparable);
    }

    #[test]
    fn compare_agrees_with_dominates() {
        // Exhaustive over a small 2-D integer grid.
        let vals = [0.0, 1.0, 2.0];
        let mut id = 0;
        let mut pts = Vec::new();
        for &x in &vals {
            for &y in &vals {
                pts.push(p(id, &[x, y]));
                id += 1;
            }
        }
        for a in &pts {
            for b in &pts {
                let rel = compare(a, b);
                assert_eq!(rel == DomRelation::LeftDominates, dominates(a, b));
                assert_eq!(rel == DomRelation::RightDominates, dominates(b, a));
            }
        }
    }

    #[test]
    fn counter_tracks_and_merges() {
        let a = p(0, &[1.0, 1.0, 1.0]);
        let b = p(1, &[2.0, 2.0, 2.0]);
        let mut c1 = DomCounter::new();
        assert!(c1.dominates(&a, &b));
        assert_eq!(c1.compare(&b, &a), DomRelation::RightDominates);
        assert_eq!(c1.comparisons(), 2);
        assert_eq!(c1.dim_weighted(), 6);

        let mut c2 = DomCounter::new();
        c2.dominates(&a, &b);
        c2.merge(&c1);
        assert_eq!(c2.comparisons(), 3);
        assert_eq!(c2.dim_weighted(), 9);

        c2.reset();
        assert_eq!(c2.comparisons(), 0);
        assert_eq!(c2.dim_weighted(), 0);
    }
}
