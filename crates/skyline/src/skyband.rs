//! The k-skyband retention buffer that makes deletions repairable.
//!
//! A skyline maintained incrementally (e.g. by
//! [`StreamingMerge`](crate::incremental::StreamingMerge)) handles
//! inserts cheaply but pays a full recompute on every deletion of a
//! skyline member, because the points the deletion would promote were
//! thrown away. The classical fix is to retain the **k-skyband** — the
//! points dominated by fewer than `k` others — so a deletion promotes
//! candidates straight out of the buffer.
//!
//! [`SkybandBuffer`] keeps three things: the full live store (needed
//! anyway for the underflow rebuild), the band itself, and a per-entry
//! *conservative* dominator count. The count discipline is chosen so a
//! point is discarded from the band only when it provably has at least
//! `k` **live** dominators at discard time:
//!
//! - at insert, a point starts with the number of band points dominating
//!   it (all live);
//! - every later insert dominating it increments the count (the
//!   dominator is live);
//! - every deletion whose point dominates it decrements the count
//!   (saturating — decrements for never-counted dominators undercount,
//!   which only keeps points longer than necessary).
//!
//! Counts therefore never overcount live dominators, and the following
//! invariant holds between rebuilds: **every live point missing from the
//! band had ≥ k live dominators when it was discarded**. Since at most
//! `d` deletions happened since, it still has ≥ `k − d` live dominators;
//! taking a minimal one under the (strict, transitive) dominance order
//! yields a live dominator with no live dominator of its own — which the
//! count discipline can never have discarded, so it sits in the band.
//! Hence while `d < k`, the skyline of the band equals the skyline of
//! the live set, and [`SkybandBuffer::skyline`] is exact. The `k`-th
//! deletion triggers the **underflow rebuild**: an exact k-skyband
//! recompute from the live store, after which the budget resets.
//!
//! Deleting a point that was already discarded from the band never
//! changes the band's skyline (the point was dominated, and anything it
//! dominated is outside the band too), but it still consumes deletion
//! budget — the conservative rule keeps the proof one paragraph long.

use crate::dominance::dominates;
use crate::point::Point;
use std::collections::HashMap;

/// How a deletion was absorbed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeleteOutcome {
    /// The id was not live; nothing changed.
    NotLive,
    /// The deleted point had already been discarded from the band; the
    /// served skyline is unchanged.
    Discarded,
    /// The deletion was repaired from the retention buffer. `promoted`
    /// holds the ids that entered the skyline as a result (empty when
    /// the deleted point was not a skyline member).
    FromBuffer {
        /// Ids promoted into the skyline by this repair.
        promoted: Vec<u64>,
    },
    /// The deletion exhausted the buffer's budget and forced an exact
    /// k-skyband rebuild from the live store.
    UnderflowRebuild {
        /// Ids promoted into the skyline by this repair.
        promoted: Vec<u64>,
    },
}

/// Lifetime counters for observability; mirrored into trace events by
/// the serving layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SkybandStats {
    /// Deletions repaired from the retention buffer.
    pub repairs_from_buffer: u64,
    /// Deletions that forced a full rebuild (budget exhausted).
    pub underflow_rebuilds: u64,
    /// Inserts discarded on arrival (≥ k band dominators).
    pub discarded_inserts: u64,
    /// Band entries evicted because their dominator count reached k.
    pub evictions: u64,
}

struct BandEntry {
    point: Point,
    /// Conservative live-dominator count; never overcounts (see module
    /// docs), so `dominators >= k` is a sound discard condition.
    dominators: usize,
}

/// A k-skyband retention buffer over a live point set (see module docs).
pub struct SkybandBuffer {
    k: usize,
    dim: Option<usize>,
    live: HashMap<u64, Point>,
    band: Vec<BandEntry>,
    deletions_since_rebuild: usize,
    stats: SkybandStats,
}

impl SkybandBuffer {
    /// Creates a buffer retaining points with fewer than `k` dominators.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` — a 0-skyband retains nothing and cannot even
    /// hold the skyline.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "skyband depth k must be at least 1");
        Self {
            k,
            dim: None,
            live: HashMap::new(),
            band: Vec::new(),
            deletions_since_rebuild: 0,
            stats: SkybandStats::default(),
        }
    }

    /// The retention depth `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Live points currently stored.
    pub fn live_len(&self) -> usize {
        self.live.len()
    }

    /// Points currently retained in the band.
    pub fn band_len(&self) -> usize {
        self.band.len()
    }

    /// Deletions absorbed since the last exact rebuild.
    pub fn deletions_since_rebuild(&self) -> usize {
        self.deletions_since_rebuild
    }

    /// Lifetime counters.
    pub fn stats(&self) -> SkybandStats {
        self.stats
    }

    /// Inserts a live point. Returns `Err` on dimensionality mismatch
    /// with the buffer's first point, `Ok(false)` when the id is already
    /// live (idempotent re-insert, ignored), `Ok(true)` otherwise.
    ///
    /// # Errors
    ///
    /// [`crate::SkylineError::DimensionMismatch`] when `p`'s
    /// dimensionality differs from the buffer's.
    pub fn insert(&mut self, p: Point) -> Result<bool, crate::SkylineError> {
        match self.dim {
            None => self.dim = Some(p.dim()),
            Some(d) if d != p.dim() => {
                return Err(crate::SkylineError::DimensionMismatch {
                    expected: d,
                    actual: p.dim(),
                })
            }
            Some(_) => {}
        }
        if self.live.contains_key(&p.id()) {
            return Ok(false);
        }
        self.live.insert(p.id(), p.clone());

        let mut my_dominators = 0usize;
        for e in &mut self.band {
            if dominates(&e.point, &p) {
                my_dominators += 1;
            } else if dominates(&p, &e.point) {
                e.dominators += 1;
            }
        }
        let k = self.k;
        let before = self.band.len();
        self.band.retain(|e| e.dominators < k);
        self.stats.evictions += (before - self.band.len()) as u64;
        if my_dominators < k {
            self.band.push(BandEntry {
                point: p,
                dominators: my_dominators,
            });
        } else {
            self.stats.discarded_inserts += 1;
        }
        Ok(true)
    }

    /// Deletes a live point by id and repairs the skyline, from the
    /// buffer when the deletion budget allows it and by an exact rebuild
    /// otherwise.
    pub fn delete(&mut self, id: u64) -> DeleteOutcome {
        let Some(gone) = self.live.remove(&id) else {
            return DeleteOutcome::NotLive;
        };
        self.deletions_since_rebuild += 1;
        let was_banded = self.band.iter().any(|e| e.point.id() == id);
        let needs_diff = was_banded || self.deletions_since_rebuild >= self.k;
        let before: Vec<u64> = if needs_diff {
            self.skyline_ids()
        } else {
            Vec::new()
        };
        if was_banded {
            self.band.retain(|e| e.point.id() != id);
        }
        for e in &mut self.band {
            if dominates(&gone, &e.point) {
                e.dominators = e.dominators.saturating_sub(1);
            }
        }

        if self.deletions_since_rebuild >= self.k {
            self.rebuild();
            self.stats.underflow_rebuilds += 1;
            let promoted = self
                .skyline_ids()
                .into_iter()
                .filter(|sid| !before.contains(sid))
                .collect();
            return DeleteOutcome::UnderflowRebuild { promoted };
        }
        if !was_banded {
            return DeleteOutcome::Discarded;
        }
        self.stats.repairs_from_buffer += 1;
        let promoted = self
            .skyline_ids()
            .into_iter()
            .filter(|sid| !before.contains(sid))
            .collect();
        DeleteOutcome::FromBuffer { promoted }
    }

    /// Recomputes the exact k-skyband from the live store and resets the
    /// deletion budget. `O(n²)` dominance scan — this is the slow path
    /// the buffer exists to avoid.
    pub fn rebuild(&mut self) {
        let mut pts: Vec<&Point> = self.live.values().collect();
        pts.sort_unstable_by_key(|p| p.id());
        let mut band = Vec::new();
        for p in &pts {
            let mut c = 0usize;
            for q in &pts {
                if q.id() != p.id() && dominates(q, p) {
                    c += 1;
                    if c >= self.k {
                        break;
                    }
                }
            }
            if c < self.k {
                band.push(BandEntry {
                    point: (*p).clone(),
                    dominators: c,
                });
            }
        }
        self.band = band;
        self.deletions_since_rebuild = 0;
    }

    /// The current skyline, sorted by id. Exact whenever the buffer's
    /// invariant holds (always, between the rebuilds it forces itself).
    pub fn skyline(&self) -> Vec<Point> {
        let mut out: Vec<Point> = self
            .band
            .iter()
            .filter(|e| {
                self.band
                    .iter()
                    .all(|o| o.point.id() == e.point.id() || !dominates(&o.point, &e.point))
            })
            .map(|e| e.point.clone())
            .collect();
        out.sort_unstable_by_key(Point::id);
        out
    }

    fn skyline_ids(&self) -> Vec<u64> {
        self.skyline().iter().map(Point::id).collect()
    }

    /// Every live point, sorted by id. This is the full checkpointable
    /// state: re-inserting these into a fresh buffer reproduces the
    /// exact band (counts are recomputed conservatively on the way in).
    pub fn live_points(&self) -> Vec<Point> {
        let mut out: Vec<Point> = self.live.values().cloned().collect();
        out.sort_unstable_by_key(Point::id);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bnl::{bnl_skyline, BnlConfig};

    fn oracle_ids(live: &[Point]) -> Vec<u64> {
        let mut ids: Vec<u64> = bnl_skyline(live, &BnlConfig::default())
            .iter()
            .map(Point::id)
            .collect();
        ids.sort_unstable();
        ids
    }

    fn sky_ids(b: &SkybandBuffer) -> Vec<u64> {
        b.skyline().iter().map(Point::id).collect()
    }

    #[test]
    fn deletion_of_skyline_member_promotes_from_buffer() {
        let mut b = SkybandBuffer::new(3);
        // p0 dominates p1 dominates p2; p3 incomparable to all
        b.insert(Point::new(0, vec![1.0, 1.0])).unwrap();
        b.insert(Point::new(1, vec![2.0, 2.0])).unwrap();
        b.insert(Point::new(2, vec![3.0, 3.0])).unwrap();
        b.insert(Point::new(3, vec![0.5, 9.0])).unwrap();
        assert_eq!(sky_ids(&b), vec![0, 3]);
        match b.delete(0) {
            DeleteOutcome::FromBuffer { promoted } => assert_eq!(promoted, vec![1]),
            other => panic!("expected buffer repair, got {other:?}"),
        }
        assert_eq!(sky_ids(&b), vec![1, 3]);
        assert_eq!(b.stats().repairs_from_buffer, 1);
        assert_eq!(b.stats().underflow_rebuilds, 0);
    }

    #[test]
    fn kth_deletion_forces_underflow_rebuild() {
        let mut b = SkybandBuffer::new(2);
        for i in 0..6u64 {
            let v = 1.0 + i as f64;
            b.insert(Point::new(i, vec![v, 7.0 - v])).unwrap();
        }
        // all incomparable (anti-correlated diagonal): everything banded
        assert_eq!(b.band_len(), 6);
        assert!(matches!(b.delete(0), DeleteOutcome::FromBuffer { .. }));
        match b.delete(1) {
            DeleteOutcome::UnderflowRebuild { .. } => {}
            other => panic!("expected underflow rebuild, got {other:?}"),
        }
        assert_eq!(b.deletions_since_rebuild(), 0);
        assert_eq!(b.stats().underflow_rebuilds, 1);
        let live: Vec<Point> = (2..6u64)
            .map(|i| {
                let v = 1.0 + i as f64;
                Point::new(i, vec![v, 7.0 - v])
            })
            .collect();
        assert_eq!(sky_ids(&b), oracle_ids(&live));
    }

    #[test]
    fn deleting_a_discarded_point_is_free_of_repair() {
        let mut b = SkybandBuffer::new(1);
        b.insert(Point::new(0, vec![1.0, 1.0])).unwrap();
        // dominated once = discarded at k=1
        b.insert(Point::new(1, vec![2.0, 2.0])).unwrap();
        assert_eq!(b.band_len(), 1);
        assert_eq!(b.stats().discarded_inserts, 1);
        match b.delete(1) {
            // budget k=1 means even this free deletion triggers the
            // conservative rebuild — but the skyline never changed
            DeleteOutcome::UnderflowRebuild { promoted } => assert!(promoted.is_empty()),
            other => panic!("{other:?}"),
        }
        assert_eq!(sky_ids(&b), vec![0]);
    }

    #[test]
    fn duplicate_insert_is_idempotent_and_missing_delete_is_not_live() {
        let mut b = SkybandBuffer::new(2);
        assert!(b.insert(Point::new(7, vec![1.0])).unwrap());
        assert!(!b.insert(Point::new(7, vec![5.0])).unwrap());
        assert_eq!(b.live_len(), 1);
        assert_eq!(b.delete(99), DeleteOutcome::NotLive);
        assert_eq!(b.deletions_since_rebuild(), 0);
    }

    #[test]
    fn dimension_mismatch_is_typed() {
        let mut b = SkybandBuffer::new(2);
        b.insert(Point::new(0, vec![1.0, 2.0])).unwrap();
        let err = b.insert(Point::new(1, vec![1.0])).unwrap_err();
        assert!(matches!(
            err,
            crate::SkylineError::DimensionMismatch {
                expected: 2,
                actual: 1
            }
        ));
    }

    #[test]
    fn band_stays_within_the_k_skyband_bound() {
        // ties and duplicates: equal rows never dominate each other, so
        // every copy stays banded; dominated chains are cut at depth k.
        let mut b = SkybandBuffer::new(2);
        for i in 0..5u64 {
            b.insert(Point::new(i, vec![1.0 + i as f64])).unwrap();
        }
        // 1-d chain: point i has i dominators; band keeps i < 2
        assert_eq!(b.band_len(), 2);
        assert_eq!(sky_ids(&b), vec![0]);
        assert_eq!(b.stats().discarded_inserts, 3);
    }

    #[test]
    fn long_interleaving_matches_recompute_oracle() {
        // deterministic LCG-driven churn, cross-checked against a full
        // recompute after every operation
        let mut b = SkybandBuffer::new(4);
        let mut live: Vec<Point> = Vec::new();
        let mut state = 0x9E37_79B9u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut next_id = 0u64;
        for _ in 0..400 {
            let r = next();
            if r % 3 != 0 || live.is_empty() {
                let c0 = (next() % 16) as f64;
                let c1 = (next() % 16) as f64;
                let p = Point::new(next_id, vec![c0, c1]);
                next_id += 1;
                live.push(p.clone());
                b.insert(p).unwrap();
            } else {
                let victim = live.remove((next() as usize) % live.len());
                assert_ne!(b.delete(victim.id()), DeleteOutcome::NotLive);
            }
            assert_eq!(sky_ids(&b), oracle_ids(&live), "after {next_id} ops");
        }
        assert!(b.stats().repairs_from_buffer > 0, "{:?}", b.stats());
        assert!(b.stats().underflow_rebuilds > 0, "{:?}", b.stats());
    }
}
