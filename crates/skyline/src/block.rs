//! Columnar (structure-of-arrays) point batches.
//!
//! The AoS [`Point`] type pays a pointer chase per dominance test: each
//! point's coordinates live in their own heap allocation, so a BNL window
//! scan hops around the heap. [`PointBlock`] stores a batch of points as one
//! flat `Vec<f64>` with stride `d` plus a parallel `Vec<u64>` of ids — zero
//! per-point allocations, rows contiguous in memory, and dominance kernels
//! (see [`crate::kernel`]) become tight loops over adjacent cache lines that
//! the compiler can auto-vectorize.
//!
//! `Point` remains the public API type; a block is the *transport and
//! compute* representation. The bridges [`PointBlock::from_points`] /
//! [`PointBlock::to_points`] are lossless (ids and coordinates are copied
//! verbatim, order preserved), so any algorithm that still wants `&[Point]`
//! can convert at the boundary.

use crate::error::SkylineError;
use crate::point::Point;

/// A batch of `d`-dimensional points in columnar (SoA) layout.
///
/// Invariants maintained by construction:
/// * `dim >= 1`,
/// * `coords.len() == ids.len() * dim`,
/// * every coordinate is finite (checked on every ingest path, same as
///   [`Point`]).
#[derive(Debug, Clone, PartialEq)]
pub struct PointBlock {
    dim: usize,
    ids: Vec<u64>,
    coords: Vec<f64>,
}

impl PointBlock {
    /// Creates an empty block for `dim`-dimensional points.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` — a zero-dimensional point space has no
    /// dominance relation.
    pub fn new(dim: usize) -> Self {
        Self::with_capacity(dim, 0)
    }

    /// Creates an empty block with room for `rows` points.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn with_capacity(dim: usize, rows: usize) -> Self {
        assert!(dim >= 1, "PointBlock needs at least one dimension");
        Self {
            dim,
            ids: Vec::with_capacity(rows),
            coords: Vec::with_capacity(rows * dim),
        }
    }

    /// Builds a block from a slice of points (lossless: ids and coordinate
    /// order are preserved).
    ///
    /// Errors on an empty slice (the block's dimensionality would be
    /// undefined) and on ragged dimensionality.
    pub fn from_points(points: &[Point]) -> Result<Self, SkylineError> {
        let first = points.first().ok_or(SkylineError::EmptyDataset)?;
        let mut block = Self::with_capacity(first.dim(), points.len());
        for p in points {
            if p.dim() != block.dim {
                return Err(SkylineError::DimensionMismatch {
                    expected: block.dim,
                    actual: p.dim(),
                });
            }
            block.ids.push(p.id());
            block.coords.extend_from_slice(p.coords());
        }
        Ok(block)
    }

    /// Converts the block back to owned points, preserving order and ids.
    pub fn to_points(&self) -> Vec<Point> {
        (0..self.len()).map(|i| self.point(i)).collect()
    }

    /// Number of points in the block.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the block holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Dimensionality `d` of every row.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Appends a point given as a raw row, validating dimensionality and
    /// finiteness (the ingest path for untrusted data).
    pub fn push(&mut self, id: u64, row: &[f64]) -> Result<(), SkylineError> {
        if row.len() != self.dim {
            return Err(SkylineError::DimensionMismatch {
                expected: self.dim,
                actual: row.len(),
            });
        }
        if let Some(i) = row.iter().position(|v| !v.is_finite()) {
            return Err(SkylineError::NonFiniteCoordinate { id, dim: i });
        }
        self.ids.push(id);
        self.coords.extend_from_slice(row);
        Ok(())
    }

    /// Appends an already-validated [`Point`].
    ///
    /// # Panics
    ///
    /// Panics if the point's dimensionality differs from the block's.
    #[inline]
    pub fn push_point(&mut self, p: &Point) {
        assert_eq!(p.dim(), self.dim, "point dimensionality mismatch");
        self.ids.push(p.id());
        self.coords.extend_from_slice(p.coords());
    }

    /// Appends a row that is already known to be valid (right width, finite)
    /// because it came out of another block or a validated point — the
    /// kernels' emission fast path.
    #[inline]
    pub(crate) fn push_trusted(&mut self, id: u64, row: &[f64]) {
        debug_assert_eq!(row.len(), self.dim, "trusted row has wrong width");
        self.ids.push(id);
        self.coords.extend_from_slice(row);
    }

    /// Appends a row copied from another block (same-representation fast
    /// path; no re-validation needed because blocks only hold finite rows).
    ///
    /// # Panics
    ///
    /// Panics if the blocks disagree on dimensionality or `i` is out of
    /// range.
    #[inline]
    pub fn push_row_from(&mut self, other: &PointBlock, i: usize) {
        assert_eq!(other.dim, self.dim, "block dimensionality mismatch");
        self.ids.push(other.ids[i]);
        self.coords.extend_from_slice(other.row(i));
    }

    /// Appends every row of `other` — the infallible sibling of
    /// [`PointBlock::append`] for call sites that already know both blocks
    /// share a dimensionality (e.g. shuffle values of one reduce key).
    ///
    /// # Panics
    ///
    /// Panics if the blocks disagree on dimensionality.
    #[inline]
    pub fn extend_from_block(&mut self, other: &PointBlock) {
        assert_eq!(other.dim, self.dim, "block dimensionality mismatch");
        self.ids.extend_from_slice(&other.ids);
        self.coords.extend_from_slice(&other.coords);
    }

    /// Appends every row of `other`, validating dimensionality once.
    pub fn append(&mut self, other: &PointBlock) -> Result<(), SkylineError> {
        if other.dim != self.dim {
            return Err(SkylineError::DimensionMismatch {
                expected: self.dim,
                actual: other.dim,
            });
        }
        self.ids.extend_from_slice(&other.ids);
        self.coords.extend_from_slice(&other.coords);
        Ok(())
    }

    /// Appends every row of `other`, consuming it. When `self` is empty
    /// this is a pure buffer handoff — `other`'s flat vectors are taken
    /// wholesale with no copy — which is what the zero-copy shuffle path
    /// relies on when a key routes to a single block. Otherwise the flat
    /// vectors are drained into `self` and `other`'s allocations dropped.
    pub fn append_owned(&mut self, mut other: PointBlock) -> Result<(), SkylineError> {
        if other.dim != self.dim {
            return Err(SkylineError::DimensionMismatch {
                expected: self.dim,
                actual: other.dim,
            });
        }
        if self.ids.is_empty() {
            self.ids = std::mem::take(&mut other.ids);
            self.coords = std::mem::take(&mut other.coords);
        } else {
            self.ids.append(&mut other.ids);
            self.coords.append(&mut other.coords);
        }
        Ok(())
    }

    /// The coordinate row of point `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.coords[i * self.dim..(i + 1) * self.dim]
    }

    /// The id of point `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn id(&self, i: usize) -> u64 {
        self.ids[i]
    }

    /// All ids, in row order.
    #[inline]
    pub fn ids(&self) -> &[u64] {
        &self.ids
    }

    /// The flat coordinate buffer (`len * dim` values, stride `dim`).
    #[inline]
    pub fn coords(&self) -> &[f64] {
        &self.coords
    }

    /// Materialises point `i` as an owned [`Point`].
    pub fn point(&self, i: usize) -> Point {
        Point::new(self.ids[i], self.row(i).to_vec())
    }

    /// Iterates over `(id, row)` pairs in order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &[f64])> + '_ {
        self.ids
            .iter()
            .zip(self.coords.chunks_exact(self.dim))
            .map(|(&id, row)| (id, row))
    }

    /// Copies the row range `[start, end)` into a new block.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > self.len()`.
    pub fn slice(&self, start: usize, end: usize) -> PointBlock {
        assert!(start <= end && end <= self.len(), "row range out of bounds");
        PointBlock {
            dim: self.dim,
            ids: self.ids[start..end].to_vec(),
            coords: self.coords[start * self.dim..end * self.dim].to_vec(),
        }
    }

    /// Splits the block into chunks of at most `rows` points each (the last
    /// chunk may be shorter). `rows == 0` yields a single chunk.
    pub fn chunks(&self, rows: usize) -> Vec<PointBlock> {
        if self.is_empty() {
            return Vec::new();
        }
        let rows = if rows == 0 { self.len() } else { rows };
        (0..self.len())
            .step_by(rows)
            .map(|lo| self.slice(lo, (lo + rows).min(self.len())))
            .collect()
    }

    /// L1 norm (coordinate sum) of row `i` — the monotone score used by the
    /// presorting merge kernel: if `p` dominates `q` then
    /// `l1(p) < l1(q)`.
    #[inline]
    pub fn l1_norm(&self, i: usize) -> f64 {
        self.row(i).iter().sum()
    }

    /// Entropy score `Σ ln(1 + v_k)` of row `i` (Chomicki et al.), the SFS
    /// presort key. Matches [`Point::entropy_score`] bit-for-bit (negative
    /// coordinates clamp to zero), so the AoS bridge sorts identically.
    /// Strictly monotone under dominance for non-negative coordinates.
    #[inline]
    pub fn entropy_score(&self, i: usize) -> f64 {
        self.row(i).iter().map(|v| (1.0 + v.max(0.0)).ln()).sum()
    }

    /// Smallest coordinate of row `i` — the SaLSa sort key.
    #[inline]
    pub fn min_coord(&self, i: usize) -> f64 {
        self.row(i).iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Largest coordinate of row `i` — the SaLSa stop-watermark statistic.
    #[inline]
    pub fn max_coord(&self, i: usize) -> f64 {
        self.row(i)
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Approximate serialized size in bytes, mirroring
    /// [`Point::wire_size`]: 8 bytes of id plus 8 per coordinate, per row.
    #[inline]
    pub fn wire_size(&self) -> usize {
        self.len() * (8 + 8 * self.dim)
    }

    /// Reorders rows in place so ids ascend (stable tie-break is moot: the
    /// permutation is a sort by id). Used at report boundaries where
    /// deterministic output order matters.
    pub fn sort_by_id(&mut self) {
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.sort_by_key(|&i| self.ids[i]);
        let mut ids = Vec::with_capacity(self.len());
        let mut coords = Vec::with_capacity(self.coords.len());
        for &i in &order {
            ids.push(self.ids[i]);
            coords.extend_from_slice(self.row(i));
        }
        self.ids = ids;
        self.coords = coords;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(rows: &[&[f64]]) -> Vec<Point> {
        rows.iter()
            .enumerate()
            .map(|(i, r)| Point::new(i as u64, r.to_vec()))
            .collect()
    }

    #[test]
    fn round_trip_preserves_ids_and_coords() {
        let points = pts(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let block = PointBlock::from_points(&points).unwrap();
        assert_eq!(block.len(), 3);
        assert_eq!(block.dim(), 2);
        assert_eq!(block.row(1), &[3.0, 4.0]);
        assert_eq!(block.id(2), 2);
        assert_eq!(block.to_points(), points);
    }

    #[test]
    fn append_owned_hands_off_or_concatenates() {
        let a = PointBlock::from_points(&pts(&[&[1.0, 2.0], &[3.0, 4.0]])).unwrap();
        let b = PointBlock::from_points(&pts(&[&[5.0, 6.0]])).unwrap();
        // empty receiver: pure buffer handoff
        let mut acc = PointBlock::new(2);
        acc.append_owned(a.clone()).unwrap();
        assert_eq!(acc.to_points(), a.to_points());
        // non-empty receiver: drained concat, same result as append()
        let mut by_ref = a.clone();
        by_ref.append(&b).unwrap();
        acc.append_owned(b).unwrap();
        assert_eq!(acc.to_points(), by_ref.to_points());
        // dimension mismatch still rejected
        let bad = PointBlock::from_points(&pts(&[&[1.0]])).unwrap();
        assert!(matches!(
            acc.append_owned(bad),
            Err(SkylineError::DimensionMismatch {
                expected: 2,
                actual: 1
            })
        ));
    }

    #[test]
    fn from_points_rejects_empty_and_ragged() {
        assert!(matches!(
            PointBlock::from_points(&[]),
            Err(SkylineError::EmptyDataset)
        ));
        let ragged = vec![Point::new(0, vec![1.0, 2.0]), Point::new(1, vec![1.0])];
        assert!(matches!(
            PointBlock::from_points(&ragged),
            Err(SkylineError::DimensionMismatch {
                expected: 2,
                actual: 1
            })
        ));
    }

    #[test]
    fn push_validates_rows() {
        let mut b = PointBlock::new(2);
        b.push(7, &[1.0, 2.0]).unwrap();
        assert_eq!(b.len(), 1);
        assert!(matches!(
            b.push(8, &[1.0]),
            Err(SkylineError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            b.push(9, &[1.0, f64::NAN]),
            Err(SkylineError::NonFiniteCoordinate { id: 9, dim: 1 })
        ));
        // failed pushes must not corrupt the block
        assert_eq!(b.len(), 1);
        assert_eq!(b.coords().len(), 2);
    }

    #[test]
    fn append_and_push_row_from() {
        let a = PointBlock::from_points(&pts(&[&[1.0], &[2.0]])).unwrap();
        let mut b = PointBlock::new(1);
        b.append(&a).unwrap();
        b.push_row_from(&a, 0);
        assert_eq!(b.ids(), &[0, 1, 0]);
        assert_eq!(b.coords(), &[1.0, 2.0, 1.0]);
        b.extend_from_block(&a);
        assert_eq!(b.ids(), &[0, 1, 0, 0, 1]);
        let wrong_dim = PointBlock::new(3);
        assert!(b.append(&wrong_dim).is_err());
    }

    #[test]
    fn slice_and_chunks_cover_all_rows() {
        let points = pts(&[&[0.0], &[1.0], &[2.0], &[3.0], &[4.0]]);
        let block = PointBlock::from_points(&points).unwrap();
        let s = block.slice(1, 4);
        assert_eq!(s.ids(), &[1, 2, 3]);
        let chunks = block.chunks(2);
        assert_eq!(chunks.len(), 3);
        assert_eq!(
            chunks.iter().map(PointBlock::len).sum::<usize>(),
            block.len()
        );
        assert_eq!(chunks[2].ids(), &[4]);
        // rows == 0 means one chunk
        assert_eq!(block.chunks(0).len(), 1);
        assert!(PointBlock::new(2).chunks(4).is_empty());
    }

    #[test]
    fn l1_norm_and_wire_size() {
        let block = PointBlock::from_points(&pts(&[&[1.0, 2.0, 3.0]])).unwrap();
        assert!((block.l1_norm(0) - 6.0).abs() < 1e-12);
        assert_eq!(block.wire_size(), 8 + 24);
    }

    #[test]
    fn sort_by_id_reorders_rows_together() {
        let mut b = PointBlock::new(2);
        b.push(5, &[5.0, 50.0]).unwrap();
        b.push(1, &[1.0, 10.0]).unwrap();
        b.push(3, &[3.0, 30.0]).unwrap();
        b.sort_by_id();
        assert_eq!(b.ids(), &[1, 3, 5]);
        assert_eq!(b.row(0), &[1.0, 10.0]);
        assert_eq!(b.row(2), &[5.0, 50.0]);
    }

    #[test]
    fn iter_yields_id_row_pairs() {
        let b = PointBlock::from_points(&pts(&[&[1.0, 2.0], &[3.0, 4.0]])).unwrap();
        let got: Vec<(u64, Vec<f64>)> = b.iter().map(|(id, r)| (id, r.to_vec())).collect();
        assert_eq!(got, vec![(0, vec![1.0, 2.0]), (1, vec![3.0, 4.0])]);
    }

    #[test]
    #[should_panic(expected = "at least one dimension")]
    fn zero_dim_rejected() {
        let _ = PointBlock::new(0);
    }
}
