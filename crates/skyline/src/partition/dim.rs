//! One-dimensional range partitioning — MR-Dim (paper Section III-A).
//!
//! Only a single attribute's value is used: the range `[min, max]` of the
//! chosen dimension is cut into `Np` equal-width slabs (`Vmax / Np` in the
//! paper, which assumes `min = 0`). Empirically the paper sets
//! `Np = 2 × number of nodes`.
//!
//! This is the simplest scheme to implement but the weakest: slabs far from
//! the origin on the chosen dimension rarely contain global skyline points,
//! so most of the local-skyline work there is redundant, and the merge stage
//! receives many locally optimal but globally dominated candidates.

use super::{AxisProfile, BoundaryProfile, Bounds, PartitionSpace, SpacePartitioner};
use crate::error::SkylineError;
use crate::point::Point;

/// Range partitioner on a single dimension.
///
/// Slab boundaries are either equal-width (`Vmax/Np`, the paper's recipe) or
/// empirical quantiles of a sample ([`DimPartitioner::fit_quantile`]) — the
/// latter balances slab populations the way Hadoop's
/// `TotalOrderPartitioner` does, and exists here so the ablation suite can
/// ask whether load balancing alone rescues MR-Dim (it does not: the slabs
/// still ship globally dominated local skylines).
#[derive(Debug, Clone)]
pub struct DimPartitioner {
    dim: usize,
    split_dim: usize,
    /// Interior slab boundaries, ascending (`len = partitions − 1`).
    boundaries: Vec<f64>,
    /// Fitted range of the split dimension, kept for plan-time analysis.
    domain: (f64, f64),
}

impl DimPartitioner {
    /// Fits a partitioner cutting dimension `0` into `partitions` slabs, the
    /// paper's default (it partitions on response time).
    pub fn fit(bounds: &Bounds, partitions: usize) -> Result<Self, SkylineError> {
        Self::fit_on_dim(bounds, partitions, 0)
    }

    /// Fits a partitioner cutting dimension `split_dim` into equal-width
    /// slabs.
    pub fn fit_on_dim(
        bounds: &Bounds,
        partitions: usize,
        split_dim: usize,
    ) -> Result<Self, SkylineError> {
        if partitions == 0 {
            return Err(SkylineError::ZeroPartitions);
        }
        if split_dim >= bounds.dim() {
            return Err(SkylineError::DimensionMismatch {
                expected: bounds.dim(),
                actual: split_dim,
            });
        }
        let (lo, hi) = (bounds.min(split_dim), bounds.max(split_dim));
        let width = hi - lo;
        let boundaries = (1..partitions)
            .map(|k| lo + width * k as f64 / partitions as f64)
            .collect();
        Ok(Self {
            dim: bounds.dim(),
            split_dim,
            boundaries,
            domain: (lo, hi),
        })
    }

    /// Fits a quantile-split partitioner on `sample`, cutting dimension `0`:
    /// slab boundaries sit at the empirical quantiles so slab populations
    /// are near-equal on data distributed like the sample.
    pub fn fit_quantile(sample: &[Point], partitions: usize) -> Result<Self, SkylineError> {
        if partitions == 0 {
            return Err(SkylineError::ZeroPartitions);
        }
        if sample.is_empty() {
            return Err(SkylineError::EmptyDataset);
        }
        let split_dim = 0;
        let mut values: Vec<f64> = sample.iter().map(|p| p.coord(split_dim)).collect();
        values.sort_by(f64::total_cmp);
        let boundaries = (1..partitions)
            .map(|k| values[(k * values.len() / partitions).min(values.len() - 1)])
            .collect();
        let domain = (values[0], values[values.len() - 1]);
        Ok(Self {
            dim: sample[0].dim(),
            split_dim,
            boundaries,
            domain,
        })
    }

    /// The dimension this partitioner splits on.
    pub fn split_dim(&self) -> usize {
        self.split_dim
    }

    /// Interior slab boundaries, ascending.
    pub fn boundaries(&self) -> &[f64] {
        &self.boundaries
    }
}

impl SpacePartitioner for DimPartitioner {
    fn name(&self) -> &'static str {
        "dim"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn num_partitions(&self) -> usize {
        self.boundaries.len() + 1
    }

    fn partition_of(&self, p: &Point) -> usize {
        assert_eq!(p.dim(), self.dim, "point dimensionality mismatch");
        self.partition_of_row(p.id(), p.coords())
    }

    fn partition_of_row(&self, _id: u64, coords: &[f64]) -> usize {
        assert_eq!(coords.len(), self.dim, "row dimensionality mismatch");
        let v = coords[self.split_dim];
        self.boundaries.partition_point(|&b| b <= v)
    }

    fn boundary_profile(&self) -> BoundaryProfile {
        BoundaryProfile {
            scheme: self.name(),
            space: PartitionSpace::Cartesian,
            axes: vec![AxisProfile {
                coord: self.split_dim,
                domain: self.domain,
                boundaries: self.boundaries.clone(),
            }],
            origin: None,
        }
    }

    /// Slab envelope: the split dimension is bounded by the interior slab
    /// boundaries (`±∞` at the edges, which absorb clamped points); every
    /// other dimension is unconstrained.
    fn sector_bounds(&self, partition: usize) -> Option<Vec<(f64, f64)>> {
        assert!(
            partition < self.num_partitions(),
            "partition index out of range"
        );
        let lo = if partition == 0 {
            f64::NEG_INFINITY
        } else {
            self.boundaries[partition - 1]
        };
        let hi = if partition == self.boundaries.len() {
            f64::INFINITY
        } else {
            self.boundaries[partition]
        };
        let mut out = vec![(f64::NEG_INFINITY, f64::INFINITY); self.dim];
        out[self.split_dim] = (lo, hi);
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_slabs_on_first_dimension() {
        let b = Bounds::zero_to(8.0, 2);
        let part = DimPartitioner::fit(&b, 4).unwrap();
        assert_eq!(part.name(), "dim");
        assert_eq!(part.num_partitions(), 4);
        assert_eq!(part.partition_of(&Point::new(0, vec![0.5, 7.0])), 0);
        assert_eq!(part.partition_of(&Point::new(1, vec![2.5, 7.0])), 1);
        assert_eq!(part.partition_of(&Point::new(2, vec![7.9, 0.0])), 3);
        assert_eq!(part.partition_of(&Point::new(3, vec![8.0, 0.0])), 3);
    }

    #[test]
    fn y_coordinate_is_ignored_by_default() {
        let b = Bounds::zero_to(8.0, 2);
        let part = DimPartitioner::fit(&b, 4).unwrap();
        for y in [0.0, 4.0, 8.0] {
            assert_eq!(part.partition_of(&Point::new(0, vec![1.0, y])), 0);
        }
    }

    #[test]
    fn custom_split_dimension() {
        let b = Bounds::zero_to(8.0, 3);
        let part = DimPartitioner::fit_on_dim(&b, 2, 2).unwrap();
        assert_eq!(part.split_dim(), 2);
        assert_eq!(part.partition_of(&Point::new(0, vec![7.0, 7.0, 1.0])), 0);
        assert_eq!(part.partition_of(&Point::new(1, vec![0.0, 0.0, 7.0])), 1);
    }

    #[test]
    fn errors_on_bad_config() {
        let b = Bounds::zero_to(1.0, 2);
        assert!(matches!(
            DimPartitioner::fit(&b, 0),
            Err(SkylineError::ZeroPartitions)
        ));
        assert!(DimPartitioner::fit_on_dim(&b, 4, 2).is_err());
    }

    #[test]
    fn out_of_bounds_points_clamp() {
        let b = Bounds::zero_to(1.0, 1);
        let part = DimPartitioner::fit(&b, 4).unwrap();
        assert_eq!(part.partition_of(&Point::new(0, vec![5.0])), 3);
        // negative coordinates are not produced by the data layer, but a
        // clamped assignment keeps dynamic inserts total
        assert_eq!(part.partition_of(&Point::new(1, vec![-0.1])), 0);
    }

    #[test]
    fn quantile_slabs_balance_skewed_data() {
        // heavily skewed values: equal widths put almost everything in slab
        // 0, quantiles spread it evenly
        let points: Vec<Point> = (0..1000)
            .map(|i| {
                let v = if i < 900 {
                    f64::from(i) * 0.01
                } else {
                    100.0 + f64::from(i)
                };
                Point::new(i as u64, vec![v, 0.0])
            })
            .collect();
        let bounds = Bounds::from_points(&points).unwrap();
        let equal = DimPartitioner::fit(&bounds, 4).unwrap();
        let quant = DimPartitioner::fit_quantile(&points, 4).unwrap();
        let count_max = |part: &DimPartitioner| {
            let mut c = vec![0usize; part.num_partitions()];
            for p in &points {
                c[part.partition_of(p)] += 1;
            }
            *c.iter().max().unwrap()
        };
        assert!(count_max(&equal) >= 900);
        assert!(
            count_max(&quant) <= 300,
            "quantiles balance: {}",
            count_max(&quant)
        );
    }

    #[test]
    fn quantile_fit_rejects_empty_sample() {
        assert!(DimPartitioner::fit_quantile(&[], 4).is_err());
    }

    #[test]
    fn nothing_prunable_by_default() {
        let b = Bounds::zero_to(1.0, 2);
        let part = DimPartitioner::fit(&b, 4).unwrap();
        assert_eq!(part.prunable(&[1, 1, 1, 1]), vec![false; 4]);
    }
}
