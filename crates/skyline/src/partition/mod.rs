//! Data-space partitioners — the heart of the paper (Section III).
//!
//! The MapReduce skyline pipeline assigns each service to exactly one
//! partition in the Map stage; partitions are then processed independently.
//! The paper evaluates three schemes, all implemented here behind one trait:
//!
//! * [`DimPartitioner`] — one-dimensional range partitioning (MR-Dim),
//! * [`GridPartitioner`] — multi-dimensional grid with dominated-cell pruning
//!   (MR-Grid),
//! * [`AnglePartitioner`] — the paper's angular partitioning (MR-Angle),
//!
//! plus [`RandomPartitioner`], an ablation baseline that ignores geometry.
//!
//! A partitioner is *fit* against dataset [`Bounds`] (the paper assumes the
//! range `[0, Vmax]` per attribute) and then maps points to partition indices
//! `0 .. num_partitions()`. Points outside the fitted bounds are clamped into
//! the nearest boundary cell so that dynamically added services never fail.

mod angle;
mod dim;
mod grid;
mod random;

pub use angle::AnglePartitioner;
pub use dim::DimPartitioner;
pub use grid::GridPartitioner;
pub use random::RandomPartitioner;

use crate::error::SkylineError;
use crate::point::Point;
use serde::{Deserialize, Serialize};

/// Axis-aligned bounding box of a dataset; the domain a partitioner is fit on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bounds {
    min: Box<[f64]>,
    max: Box<[f64]>,
}

impl Bounds {
    /// Bounds with explicit per-dimension minima and maxima.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length, are empty, or `min > max`
    /// anywhere.
    pub fn new(min: impl Into<Box<[f64]>>, max: impl Into<Box<[f64]>>) -> Self {
        let (min, max) = (min.into(), max.into());
        assert_eq!(min.len(), max.len(), "min/max dimensionality mismatch");
        assert!(!min.is_empty(), "bounds need at least one dimension");
        for i in 0..min.len() {
            assert!(
                min[i] <= max[i] && min[i].is_finite() && max[i].is_finite(),
                "invalid bounds on dimension {i}: [{}, {}]",
                min[i],
                max[i]
            );
        }
        Self { min, max }
    }

    /// The `[0, vmax]^d` box the paper uses (`Vmax` per dimension).
    pub fn zero_to(vmax: f64, d: usize) -> Self {
        Self::new(vec![0.0; d], vec![vmax; d])
    }

    /// The unit box `[0, 1]^d`.
    pub fn unit(d: usize) -> Self {
        Self::zero_to(1.0, d)
    }

    /// Tight bounds of a point set.
    pub fn from_points(points: &[Point]) -> Result<Self, SkylineError> {
        let first = points.first().ok_or(SkylineError::EmptyDataset)?;
        let d = first.dim();
        let mut min = vec![f64::INFINITY; d];
        let mut max = vec![f64::NEG_INFINITY; d];
        for p in points {
            if p.dim() != d {
                return Err(SkylineError::DimensionMismatch {
                    expected: d,
                    actual: p.dim(),
                });
            }
            for i in 0..d {
                min[i] = min[i].min(p.coord(i));
                max[i] = max[i].max(p.coord(i));
            }
        }
        Ok(Self::new(min, max))
    }

    /// Number of dimensions.
    #[inline]
    pub fn dim(&self) -> usize {
        self.min.len()
    }

    /// Lower bound on dimension `i`.
    #[inline]
    pub fn min(&self, i: usize) -> f64 {
        self.min[i]
    }

    /// Upper bound on dimension `i`.
    #[inline]
    pub fn max(&self, i: usize) -> f64 {
        self.max[i]
    }

    /// Width of dimension `i` (may be zero for degenerate data).
    #[inline]
    pub fn width(&self, i: usize) -> f64 {
        self.max[i] - self.min[i]
    }

    /// Restricts the bounds to the first `d` dimensions.
    pub fn project(&self, d: usize) -> Bounds {
        assert!(d >= 1 && d <= self.dim());
        Bounds::new(&self.min[..d], &self.max[..d])
    }
}

/// One partitioned axis of a fitted partitioner, exposed for static
/// analysis: the closed domain the axis covers, and the interior boundaries
/// cutting it into `boundaries.len() + 1` intervals (each interval is closed
/// on the left — a point exactly on a boundary belongs to the interval
/// *above* it, matching `partition_point(|b| b <= v)` everywhere).
#[derive(Debug, Clone, PartialEq)]
pub struct AxisProfile {
    /// Which coordinate the axis cuts: a data dimension for Cartesian
    /// profiles, an angular index (Eq. 1 ordering) for angular ones.
    pub coord: usize,
    /// Closed domain `[lo, hi]` this axis partitions. For angular axes this
    /// is `[0, π/2]`; for coordinate axes, the fitted bounds.
    pub domain: (f64, f64),
    /// Interior boundaries, expected strictly increasing and interior to
    /// the domain. `len + 1` intervals.
    pub boundaries: Vec<f64>,
}

impl AxisProfile {
    /// Number of intervals this axis is cut into.
    pub fn intervals(&self) -> usize {
        self.boundaries.len() + 1
    }
}

/// Static description of a fitted partition function, consumed by the
/// `mrsky-audit` plan validator to prove totality/disjointness and check
/// boundary sanity *before* a job runs.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundaryProfile {
    /// Scheme name, mirrors [`SpacePartitioner::name`].
    pub scheme: &'static str,
    /// Coordinate space the axes live in.
    pub space: PartitionSpace,
    /// The partitioned axes, row-major: partition id is the linearisation
    /// of the per-axis interval indices. Empty for opaque (non-geometric)
    /// schemes, where only `num_partitions` constrains the id range.
    pub axes: Vec<AxisProfile>,
    /// For angular profiles, the translation applied to data points before
    /// the hyperspherical transform (the fitted minimum corner). `None`
    /// elsewhere.
    pub origin: Option<Vec<f64>>,
}

/// Which space a [`BoundaryProfile`]'s axes cut.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionSpace {
    /// Axis `i` cuts data coordinate `i` (MR-Dim cuts one axis, MR-Grid a
    /// prefix of them).
    Cartesian,
    /// Axes cut the `(d−1)` hyperspherical angles of Eq. (1) (MR-Angle).
    Angular,
    /// No geometric structure (hash partitioning): every id in range is
    /// legal for any point.
    Opaque,
}

impl BoundaryProfile {
    /// Profile of a partitioner with no geometric structure.
    pub fn opaque(scheme: &'static str) -> Self {
        Self {
            scheme,
            space: PartitionSpace::Opaque,
            axes: Vec::new(),
            origin: None,
        }
    }

    /// Product of per-axis interval counts as a u128 (overflow-proof), the
    /// partition count this profile implies. `None` for opaque profiles.
    pub fn implied_partitions(&self) -> Option<u128> {
        if self.space == PartitionSpace::Opaque {
            return None;
        }
        Some(
            self.axes
                .iter()
                .map(|a| a.intervals() as u128)
                .product::<u128>(),
        )
    }
}

/// A scheme that maps every point of a `d`-dimensional space to one of
/// `num_partitions()` partitions.
///
/// Implementations must be pure functions of the point (given the fitted
/// state), so that the Map stage can assign points in parallel and so that a
/// later lookup for an incrementally added service lands in the same
/// partition.
pub trait SpacePartitioner: Send + Sync {
    /// Human-readable scheme name (`"dim"`, `"grid"`, `"angle"`, `"random"`).
    fn name(&self) -> &'static str;

    /// Dimensionality of points this partitioner accepts.
    fn dim(&self) -> usize;

    /// Total number of partitions (≥ 1).
    fn num_partitions(&self) -> usize;

    /// The partition index of `p`, in `0..num_partitions()`.
    ///
    /// # Panics
    ///
    /// May panic if `p.dim() != self.dim()`.
    fn partition_of(&self, p: &Point) -> usize;

    /// The partition index of a raw `(id, coordinate-row)` pair — the
    /// columnar hot path used when mapping [`crate::block::PointBlock`]
    /// rows, equivalent to `partition_of` on a `Point` with the same id and
    /// coordinates. The default materialises a `Point` (correct for any
    /// implementation); the built-in partitioners override it with
    /// allocation-free versions.
    ///
    /// # Panics
    ///
    /// May panic if `coords.len() != self.dim()` or a coordinate is
    /// non-finite.
    fn partition_of_row(&self, id: u64, coords: &[f64]) -> usize {
        self.partition_of(&Point::new(id, coords.to_vec()))
    }

    /// Given per-partition point counts, returns a mask of partitions whose
    /// **entire contents** are guaranteed dominated by points of other
    /// non-empty partitions and can therefore skip local-skyline computation
    /// (the MR-Grid optimisation of Section III-B). The default is "nothing
    /// prunable", which is correct for all schemes.
    fn prunable(&self, counts: &[usize]) -> Vec<bool> {
        let _ = counts;
        vec![false; self.num_partitions()]
    }

    /// Static description of the fitted partition function for plan-time
    /// analysis. The default is an opaque profile (no geometric structure),
    /// which is correct for hash-style schemes; geometric schemes override
    /// this to expose their boundary lattice.
    fn boundary_profile(&self) -> BoundaryProfile {
        BoundaryProfile::opaque(self.name())
    }

    /// Per-dimension `(lower, upper)` coordinate bounds of everything that
    /// can be assigned to `partition` — the geometric envelope of the sector,
    /// used for witness-based partition pruning. `±∞` entries are legal and
    /// mean "unbounded on that side" (e.g. edge cells absorb clamped
    /// out-of-domain points, angular sectors are radially unbounded).
    /// `None` — the default, correct for any scheme — means the envelope is
    /// unknown and the partition can never be pruned geometrically.
    fn sector_bounds(&self, partition: usize) -> Option<Vec<(f64, f64)>> {
        let _ = partition;
        None
    }
}

impl SpacePartitioner for std::sync::Arc<dyn SpacePartitioner> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn dim(&self) -> usize {
        (**self).dim()
    }
    fn num_partitions(&self) -> usize {
        (**self).num_partitions()
    }
    fn partition_of(&self, p: &Point) -> usize {
        (**self).partition_of(p)
    }
    fn partition_of_row(&self, id: u64, coords: &[f64]) -> usize {
        (**self).partition_of_row(id, coords)
    }
    fn prunable(&self, counts: &[usize]) -> Vec<bool> {
        (**self).prunable(counts)
    }
    fn boundary_profile(&self) -> BoundaryProfile {
        (**self).boundary_profile()
    }
    fn sector_bounds(&self, partition: usize) -> Option<Vec<(f64, f64)>> {
        (**self).sector_bounds(partition)
    }
}

/// Witness-based partition pruning, sound for **any** partitioner exposing
/// [`SpacePartitioner::sector_bounds`]: partition `h` can skip its
/// local-skyline task iff some data point `w` assigned to a *different*
/// partition dominates `h`'s best reachable corner — every point of `h` is
/// then transitively dominated by `w`, which survives into `w`'s own local
/// skyline (or is itself dominated by a surviving point there).
///
/// The corner of `h` is the componentwise **max** of the sector's geometric
/// lower bounds and the observed per-partition coordinate minima
/// (`observed_min[h]`, `None` for empty partitions): observed minima tighten
/// unbounded (`−∞`) sector edges to something a witness can actually beat,
/// while the geometric bound covers points a retry might re-route into the
/// sector. Strict-somewhere dominance plus "witness lives elsewhere" makes
/// mutual pruning impossible (antisymmetry), so applying the whole mask at
/// once is sound.
///
/// `witnesses` are `(partition, coords)` pairs — in the pipeline, the
/// broadcast filter points. Returns one flag per partition; empty partitions
/// are never flagged (there is nothing to skip).
pub fn witness_prunable(
    partitioner: &dyn SpacePartitioner,
    observed_min: &[Option<Vec<f64>>],
    witnesses: &[(usize, Vec<f64>)],
) -> Vec<bool> {
    let n = partitioner.num_partitions();
    let d = partitioner.dim();
    assert_eq!(
        observed_min.len(),
        n,
        "one observed-minima row per partition"
    );
    let mut mask = vec![false; n];
    'parts: for (h, slot) in observed_min.iter().enumerate() {
        let Some(mins) = slot else { continue }; // empty partition
        let Some(sector) = partitioner.sector_bounds(h) else {
            continue;
        };
        debug_assert_eq!(sector.len(), d);
        let corner: Vec<f64> = (0..d).map(|i| sector[i].0.max(mins[i])).collect();
        for (wp, w) in witnesses {
            if *wp == h {
                continue;
            }
            // w dominates the corner: w ≤ corner everywhere, < somewhere.
            let mut any_lt = false;
            let mut all_le = true;
            for i in 0..d {
                all_le &= w[i] <= corner[i];
                any_lt |= w[i] < corner[i];
            }
            if all_le && any_lt {
                mask[h] = true;
                continue 'parts;
            }
        }
    }
    mask
}

/// Assigns every point to its partition index.
pub fn assign_all(partitioner: &dyn SpacePartitioner, points: &[Point]) -> Vec<usize> {
    points.iter().map(|p| partitioner.partition_of(p)).collect()
}

/// Splits `points` into per-partition buckets (the "Map" step in miniature,
/// used by tests and by the sequential reference pipeline).
pub fn partition_points(partitioner: &dyn SpacePartitioner, points: &[Point]) -> Vec<Vec<Point>> {
    let mut buckets: Vec<Vec<Point>> = vec![Vec::new(); partitioner.num_partitions()];
    for p in points {
        buckets[partitioner.partition_of(p)].push(p.clone());
    }
    buckets
}

/// Computes per-dimension split counts whose product is **exactly**
/// `target`, as balanced as the integer factorisation allows, larger
/// factors first.
///
/// This is how both the grid and the angular partitioner turn a requested
/// partition count into a `d`-dimensional (or `(d−1)`-dimensional) lattice.
/// Exactness matters operationally: the partition count equals the reduce
/// task count of the partitioning job, and a lattice that rounds `2 × nodes`
/// up past the cluster's reduce slots schedules a nearly-empty extra task
/// wave, charging a full task startup for a handful of points. For the
/// paper's 2-D, 4-partition example this yields `[2, 2]`.
///
/// Balancing rule: at each step take the smallest divisor of the remaining
/// product that is at least its (remaining-dimensions)-th root. Awkward
/// factorisations degrade gracefully (`target` prime → `[target, 1, …]`).
pub(crate) fn lattice_splits(dims: usize, target: usize) -> Vec<usize> {
    assert!(dims >= 1, "lattice needs at least one dimension");
    assert!(target >= 1, "target must be at least 1");
    let mut splits = Vec::with_capacity(dims);
    let mut remaining = target;
    for k in (1..=dims).rev() {
        if k == 1 {
            splits.push(remaining);
            break;
        }
        let root = (remaining as f64).powf(1.0 / k as f64);
        let floor = root.ceil() as usize;
        let d = (floor.max(1)..=remaining)
            .find(|d| remaining.is_multiple_of(*d))
            .unwrap_or(remaining);
        splits.push(d);
        remaining /= d;
    }
    debug_assert_eq!(splits.iter().product::<usize>(), target);
    splits
}

/// Row-major linearisation of a multi-index over `splits`.
pub(crate) fn linearize(index: &[usize], splits: &[usize]) -> usize {
    debug_assert_eq!(index.len(), splits.len());
    let mut out = 0usize;
    for (i, &ix) in index.iter().enumerate() {
        debug_assert!(ix < splits[i]);
        out = out * splits[i] + ix;
    }
    out
}

/// Inverse of [`linearize`].
pub(crate) fn delinearize(mut linear: usize, splits: &[usize]) -> Vec<usize> {
    let mut out = vec![0usize; splits.len()];
    for i in (0..splits.len()).rev() {
        out[i] = linear % splits[i];
        linear /= splits[i];
    }
    debug_assert_eq!(linear, 0, "linear index out of range");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_from_points_tight() {
        let pts = vec![
            Point::new(0, vec![1.0, 5.0]),
            Point::new(1, vec![3.0, 2.0]),
            Point::new(2, vec![2.0, 9.0]),
        ];
        let b = Bounds::from_points(&pts).unwrap();
        assert_eq!((b.min(0), b.max(0)), (1.0, 3.0));
        assert_eq!((b.min(1), b.max(1)), (2.0, 9.0));
        assert_eq!(b.width(1), 7.0);
    }

    #[test]
    fn bounds_from_points_errors() {
        assert!(matches!(
            Bounds::from_points(&[]),
            Err(SkylineError::EmptyDataset)
        ));
        let pts = vec![Point::new(0, vec![1.0, 2.0]), Point::new(1, vec![1.0])];
        assert!(matches!(
            Bounds::from_points(&pts),
            Err(SkylineError::DimensionMismatch {
                expected: 2,
                actual: 1
            })
        ));
    }

    #[test]
    fn bounds_project() {
        let b = Bounds::new(vec![0.0, 1.0, 2.0], vec![10.0, 11.0, 12.0]);
        let p = b.project(2);
        assert_eq!(p.dim(), 2);
        assert_eq!(p.max(1), 11.0);
    }

    #[test]
    #[should_panic(expected = "invalid bounds")]
    fn bounds_reject_inverted() {
        let _ = Bounds::new(vec![1.0], vec![0.0]);
    }

    #[test]
    fn lattice_splits_matches_paper_example() {
        assert_eq!(lattice_splits(2, 4), vec![2, 2]);
        assert_eq!(lattice_splits(1, 8), vec![8]);
        assert_eq!(lattice_splits(3, 8), vec![2, 2, 2]);
        assert_eq!(lattice_splits(3, 16), vec![4, 2, 2], "exact, not 3x3x2=18");
        assert_eq!(lattice_splits(2, 12), vec![4, 3]);
    }

    #[test]
    fn lattice_splits_product_is_exact() {
        for dims in 1..=9 {
            for target in 1..=72 {
                let s = lattice_splits(dims, target);
                assert_eq!(s.len(), dims);
                let prod: usize = s.iter().product();
                assert_eq!(prod, target, "dims={dims} target={target} splits={s:?}");
            }
        }
    }

    #[test]
    fn lattice_splits_prime_degrades_gracefully() {
        assert_eq!(lattice_splits(3, 13), vec![13, 1, 1]);
        assert_eq!(lattice_splits(2, 14), vec![7, 2]);
    }

    #[test]
    fn linearize_round_trip() {
        let splits = vec![3usize, 2, 4];
        let total: usize = splits.iter().product();
        for lin in 0..total {
            let idx = delinearize(lin, &splits);
            assert_eq!(linearize(&idx, &splits), lin);
        }
    }

    #[test]
    fn partition_of_row_agrees_with_partition_of() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(31);
        let pts: Vec<Point> = (0..300)
            .map(|i| {
                Point::new(
                    i,
                    (0..3).map(|_| rng.gen_range(0.0..9.0)).collect::<Vec<_>>(),
                )
            })
            .collect();
        let bounds = Bounds::from_points(&pts).unwrap();
        let parts: Vec<Box<dyn SpacePartitioner>> = vec![
            Box::new(DimPartitioner::fit(&bounds, 6).unwrap()),
            Box::new(GridPartitioner::fit(&bounds, 8).unwrap()),
            Box::new(AnglePartitioner::fit(&bounds, 8).unwrap()),
            Box::new(AnglePartitioner::fit_quantile(&pts, 8).unwrap()),
            Box::new(RandomPartitioner::new(3, 5).unwrap()),
        ];
        for part in &parts {
            for p in &pts {
                assert_eq!(
                    part.partition_of_row(p.id(), p.coords()),
                    part.partition_of(p),
                    "scheme {} point {p:?}",
                    part.name()
                );
            }
        }
    }

    #[test]
    fn partition_of_row_default_materialises_a_point() {
        struct ByFirstCoord;
        impl SpacePartitioner for ByFirstCoord {
            fn name(&self) -> &'static str {
                "by-first"
            }
            fn dim(&self) -> usize {
                2
            }
            fn num_partitions(&self) -> usize {
                2
            }
            fn partition_of(&self, p: &Point) -> usize {
                usize::from(p.coord(0) >= 1.0)
            }
        }
        let part = ByFirstCoord;
        assert_eq!(part.partition_of_row(9, &[0.5, 3.0]), 0);
        assert_eq!(part.partition_of_row(9, &[1.5, 3.0]), 1);
    }

    #[test]
    fn sector_bounds_contain_assigned_points() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(47);
        let pts: Vec<Point> = (0..400)
            .map(|i| {
                Point::new(
                    i,
                    (0..3).map(|_| rng.gen_range(0.0..9.0)).collect::<Vec<_>>(),
                )
            })
            .collect();
        let bounds = Bounds::from_points(&pts).unwrap();
        let parts: Vec<Box<dyn SpacePartitioner>> = vec![
            Box::new(DimPartitioner::fit(&bounds, 6).unwrap()),
            Box::new(GridPartitioner::fit(&bounds, 8).unwrap()),
            Box::new(GridPartitioner::fit_on_dims(&bounds, 4, 2).unwrap()),
            Box::new(AnglePartitioner::fit(&bounds, 8).unwrap()),
        ];
        for part in &parts {
            for p in &pts {
                let h = part.partition_of(p);
                let sector = part
                    .sector_bounds(h)
                    .unwrap_or_else(|| panic!("{} exposes no envelope", part.name()));
                assert_eq!(sector.len(), part.dim());
                for (i, &(lo, hi)) in sector.iter().enumerate() {
                    assert!(
                        lo <= p.coord(i) && p.coord(i) <= hi,
                        "{}: point {p:?} escapes partition {h} on dim {i} [{lo}, {hi}]",
                        part.name()
                    );
                }
            }
        }
    }

    #[test]
    fn random_partitioner_exposes_no_envelope() {
        let part = RandomPartitioner::new(3, 5).unwrap();
        assert!(part.sector_bounds(0).is_none());
    }

    #[test]
    fn witness_prunes_dominated_grid_corner() {
        let g = GridPartitioner::fit(&Bounds::zero_to(2.0, 2), 4).unwrap();
        let bl = g.partition_of_row(0, &[0.5, 0.5]);
        let tr = g.partition_of_row(1, &[1.5, 1.5]);
        let mut observed = vec![None; g.num_partitions()];
        observed[bl] = Some(vec![0.5, 0.5]);
        observed[tr] = Some(vec![1.5, 1.5]);
        let mask = witness_prunable(&g, &observed, &[(bl, vec![0.5, 0.5])]);
        assert!(mask[tr], "top-right corner is dominated by the witness");
        assert!(!mask[bl], "the witness's own cell survives");
    }

    #[test]
    fn witness_prunes_angular_sector_via_observed_minima() {
        // The angular envelope is all-unbounded; pruning must come entirely
        // from the observed per-sector minima.
        let a = AnglePartitioner::fit(&Bounds::zero_to(10.0, 2), 4).unwrap();
        let w = vec![0.5, 0.4];
        let wp = a.partition_of_row(0, &w);
        let victim = (wp + 1) % a.num_partitions();
        let mut observed = vec![None; a.num_partitions()];
        observed[wp] = Some(w.clone());
        observed[victim] = Some(vec![5.0, 6.0]); // strictly worse everywhere
        let mask = witness_prunable(&a, &observed, &[(wp, w)]);
        assert!(mask[victim]);
        assert!(!mask[wp]);
    }

    #[test]
    fn witness_in_same_partition_prunes_nothing() {
        let a = AnglePartitioner::fit(&Bounds::zero_to(10.0, 2), 4).unwrap();
        let w = vec![0.5, 0.4];
        let wp = a.partition_of_row(0, &w);
        let mut observed = vec![None; a.num_partitions()];
        observed[wp] = Some(vec![5.0, 6.0]);
        let mask = witness_prunable(&a, &observed, &[(wp, w)]);
        assert!(!mask[wp], "a witness cannot prune its own partition");
    }

    #[test]
    fn witness_pruning_never_drops_a_skyline_point() {
        use crate::filter::select_filter_points;
        use crate::seq::naive_skyline_ids;
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(53);
        for trial in 0..5 {
            let d = 2 + trial % 3;
            let pts: Vec<Point> = (0..400)
                .map(|i| {
                    Point::new(
                        i,
                        (0..d).map(|_| rng.gen_range(0.0..1.0)).collect::<Vec<_>>(),
                    )
                })
                .collect();
            let bounds = Bounds::from_points(&pts).unwrap();
            let parts: Vec<Box<dyn SpacePartitioner>> = vec![
                Box::new(DimPartitioner::fit(&bounds, 8).unwrap()),
                Box::new(GridPartitioner::fit(&bounds, 8).unwrap()),
                Box::new(AnglePartitioner::fit(&bounds, 8).unwrap()),
            ];
            let block = crate::block::PointBlock::from_points(&pts).unwrap();
            let filter = select_filter_points(&block, 8);
            for part in &parts {
                let n = part.num_partitions();
                let mut observed: Vec<Option<Vec<f64>>> = vec![None; n];
                for p in &pts {
                    let h = part.partition_of(p);
                    let mins = observed[h].get_or_insert_with(|| p.coords().to_vec());
                    for (m, &v) in mins.iter_mut().zip(p.coords()) {
                        *m = m.min(v);
                    }
                }
                let witnesses: Vec<(usize, Vec<f64>)> = filter
                    .iter()
                    .map(|(id, c)| (part.partition_of_row(id, c), c.to_vec()))
                    .collect();
                let mask = witness_prunable(part.as_ref(), &observed, &witnesses);
                let sky = naive_skyline_ids(&pts);
                for p in &pts {
                    if mask[part.partition_of(p)] {
                        assert!(
                            !sky.contains(&p.id()),
                            "{}: skyline point {} in pruned partition (trial {trial})",
                            part.name(),
                            p.id()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn partition_points_covers_every_point_once() {
        let pts: Vec<Point> = (0..100)
            .map(|i| Point::new(i, vec![(i % 10) as f64, (i / 10) as f64]))
            .collect();
        let b = Bounds::from_points(&pts).unwrap();
        let part = GridPartitioner::fit(&b, 4).unwrap();
        let buckets = partition_points(&part, &pts);
        let total: usize = buckets.iter().map(Vec::len).sum();
        assert_eq!(total, 100);
    }
}
