//! Multi-dimensional grid partitioning — MR-Grid (paper Section III-B).
//!
//! The bounding box is cut into a lattice of equal-width cells: the requested
//! partition count is turned into per-dimension split counts whose product is
//! the actual cell count (the paper's simplest case: 2-D, 4 partitions → a
//! 2 × 2 grid with cell width `Vmax / 2`).
//!
//! Grid cells have dominance relationships: if some **non-empty** cell `g`
//! satisfies `g_i + 1 ≤ h_i` on every dimension, then every point of `g`
//! strictly dominates every point of `h` (with half-open cells any point of
//! `g` is `< (g_i+1)·w ≤ h_i·w ≤` any point of `h` on every dimension), so
//! cell `h` can skip local-skyline computation entirely. This is the paper's
//! "the bottom-left partition dominates the up-right partition" optimisation
//! — worth 25 % at `d = 2` with 4 cells, but fading with dimensionality
//! (under 11.08 % at `d = 10`, citing Zhang et al.).

use super::{
    delinearize, lattice_splits, linearize, AxisProfile, BoundaryProfile, Bounds, PartitionSpace,
    SpacePartitioner,
};
use crate::error::SkylineError;
use crate::point::Point;

/// Lattice partitioner over the first `split_dims` dimensions.
///
/// The paper describes MR-Grid through its "simplest case": *"two dimensions
/// are utilized (e.g., response time, and cost)"* — the grid cuts a prefix
/// of the dimensions and leaves the rest unconstrained. [`GridPartitioner::fit`]
/// grids **all** dimensions; [`GridPartitioner::fit_on_dims`] grids a prefix.
#[derive(Debug, Clone)]
pub struct GridPartitioner {
    dim: usize,
    /// Per-dimension split counts over the first `splits.len()` dimensions.
    splits: Vec<usize>,
    /// Interior cell boundaries per split dimension
    /// (`boundaries[i].len() == splits[i] - 1`, ascending).
    boundaries: Vec<Vec<f64>>,
    /// Fitted `[min, max]` per split dimension, kept for plan-time analysis.
    domains: Vec<(f64, f64)>,
    cells: usize,
}

impl GridPartitioner {
    /// Fits a grid with at least `partitions` cells over all of `bounds`'
    /// dimensions. The actual cell count is the product of the per-dimension
    /// splits, available via [`SpacePartitioner::num_partitions`].
    pub fn fit(bounds: &Bounds, partitions: usize) -> Result<Self, SkylineError> {
        Self::fit_on_dims(bounds, partitions, bounds.dim())
    }

    /// Fits a grid with at least `partitions` cells over the first
    /// `split_dims` dimensions of `bounds` (the paper's 2-D "simplest case"
    /// uses `split_dims = 2` regardless of the data's dimensionality).
    ///
    /// Dominated-cell pruning is only sound when **every** dimension is
    /// split — with unconstrained dimensions, a cell's points can beat
    /// another cell's points there, so nothing can be pruned. This is the
    /// paper's own observation that MR-Grid's step-2 improvement fades as
    /// dimensionality grows.
    pub fn fit_on_dims(
        bounds: &Bounds,
        partitions: usize,
        split_dims: usize,
    ) -> Result<Self, SkylineError> {
        if partitions == 0 {
            return Err(SkylineError::ZeroPartitions);
        }
        if split_dims == 0 || split_dims > bounds.dim() {
            return Err(SkylineError::DimensionMismatch {
                expected: bounds.dim(),
                actual: split_dims,
            });
        }
        let splits = lattice_splits(split_dims, partitions);
        let boundaries = splits
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                let (lo, hi) = (bounds.min(i), bounds.max(i));
                (1..s)
                    .map(|k| lo + (hi - lo) * k as f64 / s as f64)
                    .collect::<Vec<f64>>()
            })
            .collect::<Vec<_>>();
        let domains = (0..split_dims)
            .map(|i| (bounds.min(i), bounds.max(i)))
            .collect();
        let cells = splits.iter().product();
        Ok(Self {
            dim: bounds.dim(),
            splits,
            boundaries,
            domains,
            cells,
        })
    }

    /// Fits a **quantile-split** grid on `sample` over the first
    /// `split_dims` dimensions: cell boundaries sit at the per-dimension
    /// empirical quantiles, balancing marginal cell populations. The
    /// ablation counterpart to [`AnglePartitioner::fit_quantile`](super::AnglePartitioner::fit_quantile).
    pub fn fit_quantile(
        sample: &[Point],
        partitions: usize,
        split_dims: usize,
    ) -> Result<Self, SkylineError> {
        if partitions == 0 {
            return Err(SkylineError::ZeroPartitions);
        }
        let bounds = Bounds::from_points(sample)?;
        if split_dims == 0 || split_dims > bounds.dim() {
            return Err(SkylineError::DimensionMismatch {
                expected: bounds.dim(),
                actual: split_dims,
            });
        }
        let splits = lattice_splits(split_dims, partitions);
        let boundaries = splits
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                let mut values: Vec<f64> = sample.iter().map(|p| p.coord(i)).collect();
                values.sort_by(f64::total_cmp);
                (1..s)
                    .map(|k| values[(k * values.len() / s).min(values.len() - 1)])
                    .collect::<Vec<f64>>()
            })
            .collect::<Vec<_>>();
        let domains = (0..split_dims)
            .map(|i| (bounds.min(i), bounds.max(i)))
            .collect();
        let cells = splits.iter().product();
        Ok(Self {
            dim: bounds.dim(),
            splits,
            boundaries,
            domains,
            cells,
        })
    }

    /// Per-dimension split counts.
    pub fn splits(&self) -> &[usize] {
        &self.splits
    }

    /// Number of dimensions actually gridded (a prefix of the space).
    pub fn split_dims(&self) -> usize {
        self.splits.len()
    }

    /// Interior cell boundaries per split dimension, ascending.
    pub fn boundaries(&self) -> &[Vec<f64>] {
        &self.boundaries
    }

    /// Multi-index of the cell `p` falls into (over the split dimensions).
    pub fn cell_index(&self, p: &Point) -> Vec<usize> {
        assert_eq!(p.dim(), self.dim, "point dimensionality mismatch");
        self.boundaries
            .iter()
            .enumerate()
            .map(|(i, bs)| bs.partition_point(|&b| b <= p.coord(i)))
            .collect()
    }
}

impl SpacePartitioner for GridPartitioner {
    fn name(&self) -> &'static str {
        "grid"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn num_partitions(&self) -> usize {
        self.cells
    }

    fn partition_of(&self, p: &Point) -> usize {
        linearize(&self.cell_index(p), &self.splits)
    }

    fn partition_of_row(&self, _id: u64, coords: &[f64]) -> usize {
        assert_eq!(coords.len(), self.dim, "row dimensionality mismatch");
        // fused cell_index + linearize, with no multi-index allocation
        let mut out = 0usize;
        for (i, bs) in self.boundaries.iter().enumerate() {
            out = out * self.splits[i] + bs.partition_point(|&b| b <= coords[i]);
        }
        out
    }

    /// Marks every cell strictly dominated by a non-empty cell.
    ///
    /// Quadratic in the number of cells, which is fine: the paper's policy is
    /// `Np = 2 × nodes`, i.e. at most a few hundred cells. Sound only when
    /// all dimensions are split; otherwise nothing is prunable (see
    /// [`GridPartitioner::fit_on_dims`]).
    fn prunable(&self, counts: &[usize]) -> Vec<bool> {
        assert_eq!(counts.len(), self.cells, "one count per cell required");
        if self.splits.len() < self.dim {
            return vec![false; self.cells];
        }
        let indices: Vec<Vec<usize>> = (0..self.cells)
            .map(|c| delinearize(c, &self.splits))
            .collect();
        let mut prunable = vec![false; self.cells];
        for h in 0..self.cells {
            'dominators: for g in 0..self.cells {
                if g == h || counts[g] == 0 {
                    continue;
                }
                for (gi, hi) in indices[g].iter().zip(indices[h].iter()) {
                    if gi + 1 > *hi {
                        continue 'dominators;
                    }
                }
                prunable[h] = true;
                break;
            }
        }
        prunable
    }

    fn boundary_profile(&self) -> BoundaryProfile {
        BoundaryProfile {
            scheme: self.name(),
            space: PartitionSpace::Cartesian,
            axes: self
                .boundaries
                .iter()
                .zip(&self.domains)
                .enumerate()
                .map(|(i, (bs, &domain))| AxisProfile {
                    coord: i,
                    domain,
                    boundaries: bs.clone(),
                })
                .collect(),
            origin: None,
        }
    }

    /// Cell envelope: interior boundaries on the split dimensions, `±∞` at
    /// the lattice edges (edge cells absorb clamped out-of-domain points)
    /// and on any unsplit trailing dimension.
    fn sector_bounds(&self, partition: usize) -> Option<Vec<(f64, f64)>> {
        assert!(partition < self.cells, "partition index out of range");
        let idx = delinearize(partition, &self.splits);
        let mut out = Vec::with_capacity(self.dim);
        for (bs, &k) in self.boundaries.iter().zip(&idx) {
            let lo = if k == 0 { f64::NEG_INFINITY } else { bs[k - 1] };
            let hi = if k == bs.len() { f64::INFINITY } else { bs[k] };
            out.push((lo, hi));
        }
        out.resize(self.dim, (f64::NEG_INFINITY, f64::INFINITY));
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid2x2() -> GridPartitioner {
        GridPartitioner::fit(&Bounds::zero_to(2.0, 2), 4).unwrap()
    }

    #[test]
    fn paper_simple_case_is_2x2() {
        let g = grid2x2();
        assert_eq!(g.splits(), &[2, 2]);
        assert_eq!(g.num_partitions(), 4);
    }

    #[test]
    fn quadrant_assignment() {
        let g = grid2x2();
        let bl = g.partition_of(&Point::new(0, vec![0.5, 0.5]));
        let br = g.partition_of(&Point::new(1, vec![1.5, 0.5]));
        let tl = g.partition_of(&Point::new(2, vec![0.5, 1.5]));
        let tr = g.partition_of(&Point::new(3, vec![1.5, 1.5]));
        let mut all = vec![bl, br, tl, tr];
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3], "four distinct quadrants");
    }

    #[test]
    fn bottom_left_prunes_top_right_only() {
        let g = grid2x2();
        let bl = g.partition_of(&Point::new(0, vec![0.5, 0.5]));
        let tr = g.partition_of(&Point::new(3, vec![1.5, 1.5]));
        let mut counts = vec![0usize; 4];
        counts[bl] = 10;
        let prunable = g.prunable(&counts);
        for (c, &is_pruned) in prunable.iter().enumerate() {
            assert_eq!(is_pruned, c == tr, "cell {c}");
        }
    }

    #[test]
    fn empty_dominator_prunes_nothing() {
        let g = grid2x2();
        let tr = g.partition_of(&Point::new(3, vec![1.5, 1.5]));
        let mut counts = vec![0usize; 4];
        counts[tr] = 5; // only the dominated corner is populated
        assert_eq!(g.prunable(&counts), vec![false; 4]);
    }

    #[test]
    fn pruned_cells_really_are_dominated() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            let d = rng.gen_range(2..4);
            let g = GridPartitioner::fit(&Bounds::zero_to(1.0, d), 9).unwrap();
            let points: Vec<Point> = (0..300)
                .map(|i| {
                    Point::new(
                        i,
                        (0..d).map(|_| rng.gen_range(0.0..1.0)).collect::<Vec<_>>(),
                    )
                })
                .collect();
            let mut counts = vec![0usize; g.num_partitions()];
            for p in &points {
                counts[g.partition_of(p)] += 1;
            }
            let prunable = g.prunable(&counts);
            for p in &points {
                let c = g.partition_of(p);
                if prunable[c] {
                    assert!(
                        points
                            .iter()
                            .any(|q| crate::dominance::strictly_dominates(q, p)),
                        "point {p:?} in pruned cell {c} is not dominated"
                    );
                }
            }
        }
    }

    #[test]
    fn three_dimensional_lattice() {
        let g = GridPartitioner::fit(&Bounds::zero_to(1.0, 3), 8).unwrap();
        assert_eq!(g.splits(), &[2, 2, 2]);
        let origin_cell = g.partition_of(&Point::new(0, vec![0.1, 0.1, 0.1]));
        let far_cell = g.partition_of(&Point::new(1, vec![0.9, 0.9, 0.9]));
        let mut counts = vec![0usize; 8];
        counts[origin_cell] = 1;
        assert!(g.prunable(&counts)[far_cell]);
    }

    #[test]
    fn actual_partition_count_is_exact() {
        // 2 dims, request 5 → 5×1 cells (exact factorisation, skewed)
        let g = GridPartitioner::fit(&Bounds::zero_to(1.0, 2), 5).unwrap();
        assert_eq!(g.num_partitions(), 5);
        assert_eq!(g.num_partitions(), g.splits().iter().product::<usize>());
        // request 12 → 4×3
        let g = GridPartitioner::fit(&Bounds::zero_to(1.0, 2), 12).unwrap();
        assert_eq!(g.splits(), &[4, 3]);
    }

    #[test]
    fn zero_partitions_rejected() {
        assert!(matches!(
            GridPartitioner::fit(&Bounds::unit(2), 0),
            Err(SkylineError::ZeroPartitions)
        ));
    }

    #[test]
    fn prefix_grid_ignores_trailing_dimensions() {
        // 4-D data, grid over the first 2 dims only
        let b = Bounds::zero_to(1.0, 4);
        let g = GridPartitioner::fit_on_dims(&b, 4, 2).unwrap();
        assert_eq!(g.split_dims(), 2);
        assert_eq!(g.num_partitions(), 4);
        let a = g.partition_of(&Point::new(0, vec![0.1, 0.1, 0.9, 0.9]));
        let c = g.partition_of(&Point::new(1, vec![0.1, 0.1, 0.0, 0.0]));
        assert_eq!(a, c, "trailing dims must not affect the cell");
    }

    #[test]
    fn prefix_grid_never_prunes() {
        // With unconstrained trailing dimensions no cell can be dominated:
        // a point in the "dominated" cell could still win on dim 2.
        let b = Bounds::zero_to(1.0, 3);
        let g = GridPartitioner::fit_on_dims(&b, 4, 2).unwrap();
        let mut counts = vec![0usize; g.num_partitions()];
        counts[g.partition_of(&Point::new(0, vec![0.1, 0.1, 0.5]))] = 10;
        assert_eq!(g.prunable(&counts), vec![false; g.num_partitions()]);
    }

    #[test]
    fn fit_on_dims_rejects_bad_prefix() {
        let b = Bounds::zero_to(1.0, 2);
        assert!(GridPartitioner::fit_on_dims(&b, 4, 0).is_err());
        assert!(GridPartitioner::fit_on_dims(&b, 4, 3).is_err());
    }

    #[test]
    fn quantile_grid_balances_marginals() {
        // skewed on both dims: equal-width piles everything into one cell
        let points: Vec<Point> = (0..1000)
            .map(|i| {
                let v = if i % 10 == 0 {
                    100.0
                } else {
                    f64::from(i % 50) * 0.02
                };
                Point::new(i as u64, vec![v, v * 0.5])
            })
            .collect();
        let equal = GridPartitioner::fit(&Bounds::from_points(&points).unwrap(), 4).unwrap();
        let quant = GridPartitioner::fit_quantile(&points, 4, 2).unwrap();
        let count_max = |part: &GridPartitioner| {
            let mut c = vec![0usize; part.num_partitions()];
            for p in &points {
                c[part.partition_of(p)] += 1;
            }
            *c.iter().max().unwrap()
        };
        assert!(count_max(&quant) < count_max(&equal));
    }

    #[test]
    fn quantile_grid_rejects_bad_input() {
        assert!(GridPartitioner::fit_quantile(&[], 4, 2).is_err());
        let pts = vec![Point::new(0, vec![1.0, 2.0])];
        assert!(GridPartitioner::fit_quantile(&pts, 0, 2).is_err());
        assert!(GridPartitioner::fit_quantile(&pts, 4, 3).is_err());
    }

    #[test]
    fn degenerate_bounds_put_everything_in_one_cell_per_dim() {
        let b = Bounds::new(vec![1.0, 0.0], vec![1.0, 2.0]);
        let g = GridPartitioner::fit(&b, 4).unwrap();
        let a = g.partition_of(&Point::new(0, vec![1.0, 0.5]));
        let c = g.partition_of(&Point::new(1, vec![1.0, 0.9]));
        assert_eq!(a, c);
    }
}
