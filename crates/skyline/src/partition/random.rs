//! Random (hash) partitioning — an ablation baseline not in the paper.
//!
//! Ignores geometry entirely: a point's partition is a deterministic hash of
//! its id. Random partitioning balances load perfectly in expectation but
//! prunes nothing — every partition's local skyline is roughly a full
//! skyline of a random sample, so the merge stage receives many candidates.
//! Benchmarked in the ablation suite to show how much the *geometric*
//! component of the three paper schemes contributes.

use super::SpacePartitioner;
use crate::error::SkylineError;
use crate::point::Point;

/// Deterministic hash partitioner (splitmix64 finalizer on the point id).
#[derive(Debug, Clone)]
pub struct RandomPartitioner {
    dim: usize,
    partitions: usize,
    seed: u64,
}

impl RandomPartitioner {
    /// Creates a hash partitioner for `dim`-dimensional points.
    pub fn new(dim: usize, partitions: usize) -> Result<Self, SkylineError> {
        Self::with_seed(dim, partitions, 0x9E37_79B9_7F4A_7C15)
    }

    /// Creates a hash partitioner with an explicit seed (distinct seeds give
    /// statistically independent assignments, used by variance tests).
    pub fn with_seed(dim: usize, partitions: usize, seed: u64) -> Result<Self, SkylineError> {
        if partitions == 0 {
            return Err(SkylineError::ZeroPartitions);
        }
        Ok(Self {
            dim,
            partitions,
            seed,
        })
    }
}

/// splitmix64 finalizer — fast, well-mixed 64-bit hash.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SpacePartitioner for RandomPartitioner {
    fn name(&self) -> &'static str {
        "random"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn num_partitions(&self) -> usize {
        self.partitions
    }

    fn partition_of(&self, p: &Point) -> usize {
        self.partition_of_row(p.id(), p.coords())
    }

    fn partition_of_row(&self, id: u64, _coords: &[f64]) -> usize {
        (mix(id.wrapping_add(self.seed)) % self.partitions as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_assignment() {
        let part = RandomPartitioner::new(2, 8).unwrap();
        let p = Point::new(1234, vec![0.5, 0.5]);
        assert_eq!(part.partition_of(&p), part.partition_of(&p));
    }

    #[test]
    fn coordinates_are_ignored() {
        let part = RandomPartitioner::new(2, 8).unwrap();
        let a = Point::new(7, vec![0.0, 0.0]);
        let b = Point::new(7, vec![99.0, 99.0]);
        assert_eq!(part.partition_of(&a), part.partition_of(&b));
    }

    #[test]
    fn roughly_balanced() {
        let np = 16;
        let part = RandomPartitioner::new(1, np).unwrap();
        let mut counts = vec![0usize; np];
        let n = 16_000;
        for id in 0..n {
            counts[part.partition_of(&Point::new(id, vec![0.0]))] += 1;
        }
        let expected = n as usize / np;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expected as f64).abs() < expected as f64 * 0.25,
                "partition {i} holds {c}, expected ~{expected}"
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = RandomPartitioner::with_seed(1, 64, 1).unwrap();
        let b = RandomPartitioner::with_seed(1, 64, 2).unwrap();
        let disagreements = (0..1000u64)
            .filter(|&id| {
                let p = Point::new(id, vec![0.0]);
                a.partition_of(&p) != b.partition_of(&p)
            })
            .count();
        assert!(disagreements > 900, "only {disagreements} disagreements");
    }

    #[test]
    fn zero_partitions_rejected() {
        assert!(matches!(
            RandomPartitioner::new(2, 0),
            Err(SkylineError::ZeroPartitions)
        ));
    }
}
