//! Angular partitioning — MR-Angle, the paper's contribution (Section III-C).
//!
//! Each point is first mapped to hyperspherical coordinates (Eq. 1); the
//! radial coordinate is discarded and the `(d − 1)`-dimensional **angle
//! space** `[0, π/2]^{d−1}` is grid-partitioned ("we modify the grid
//! partitioning over the n−1 subspaces defined in Eq. (1)"). A partition is
//! therefore an angular *sector* that stretches from near the origin outward.
//!
//! Why this wins (paper Sections III-C and IV): every sector touches the
//! skyline contour near the origin, so (a) local skylines are small and
//! contain mostly globally optimal points — less redundant dominance work in
//! the Reduce stage — and (b) load is balanced because each sector contains
//! both high- and low-quality points. Theorem 2 formalises the advantage via
//! dominance ability.
//!
//! ## Split strategies
//!
//! The paper's Figure 3(c) draws **equal-width** angular boundaries, which
//! is what [`AnglePartitioner::fit`] produces. Real QoS data is far from
//! angle-uniform (attributes pile up near their best values), so equal
//! widths can leave most services in one sector; the angle-partitioning
//! literature (Vlachou et al., SIGMOD'08 — the technique this paper adapts)
//! therefore splits at **quantiles** of the empirical angle distribution.
//! [`AnglePartitioner::fit_quantile`] implements that: boundaries are the
//! per-angular-dimension sample quantiles, preserving the angular geometry
//! while balancing sector populations.

use super::{
    lattice_splits, AxisProfile, BoundaryProfile, Bounds, PartitionSpace, SpacePartitioner,
};
use crate::error::SkylineError;
use crate::hypersphere::{angles_of_row, to_hyperspherical_into};
use crate::point::Point;
use std::f64::consts::FRAC_PI_2;

/// Angular-sector partitioner.
#[derive(Debug, Clone)]
pub struct AnglePartitioner {
    dim: usize,
    /// Translation applied before the transform so the data's minimum corner
    /// sits at the origin (Eq. 1 assumes the non-negative orthant anchored
    /// at the origin).
    origin: Vec<f64>,
    splits: Vec<usize>,
    /// Interior sector boundaries per angular dimension
    /// (`boundaries[i].len() == splits[i] - 1`, strictly inside `(0, π/2)`).
    boundaries: Vec<Vec<f64>>,
    sectors: usize,
}

impl AnglePartitioner {
    /// Fits an **equal-width** angular partitioner with at least
    /// `partitions` sectors — the paper's Figure 3(c) layout.
    ///
    /// For 1-dimensional data there is no angle space; a single sector is
    /// produced (the skyline of 1-D data is just the minimum).
    pub fn fit(bounds: &Bounds, partitions: usize) -> Result<Self, SkylineError> {
        if partitions == 0 {
            return Err(SkylineError::ZeroPartitions);
        }
        let d = bounds.dim();
        let origin: Vec<f64> = (0..d).map(|i| bounds.min(i)).collect();
        if d == 1 {
            return Ok(Self::single_sector(origin));
        }
        let splits = lattice_splits(d - 1, partitions);
        let boundaries = splits
            .iter()
            .map(|&s| {
                (1..s)
                    .map(|k| FRAC_PI_2 * k as f64 / s as f64)
                    .collect::<Vec<f64>>()
            })
            .collect::<Vec<_>>();
        Ok(Self::from_boundaries(d, origin, splits, boundaries))
    }

    /// Fits a **quantile-split** angular partitioner on `sample`: sector
    /// boundaries sit at the empirical per-angular-dimension quantiles, so
    /// sector populations are near-equal on data distributed like the
    /// sample.
    ///
    /// # Panics / Errors
    ///
    /// Errors on an empty sample or zero partitions.
    pub fn fit_quantile(sample: &[Point], partitions: usize) -> Result<Self, SkylineError> {
        if partitions == 0 {
            return Err(SkylineError::ZeroPartitions);
        }
        let bounds = Bounds::from_points(sample)?;
        let d = bounds.dim();
        let origin: Vec<f64> = (0..d).map(|i| bounds.min(i)).collect();
        if d == 1 {
            return Ok(Self::single_sector(origin));
        }
        let splits = lattice_splits(d - 1, partitions);

        // Angle matrix of the sample, one column per angular dimension.
        let mut columns: Vec<Vec<f64>> = vec![Vec::with_capacity(sample.len()); d - 1];
        let mut angles = vec![0.0; d - 1];
        for p in sample {
            let shifted = shift_to_origin(p, &origin);
            to_hyperspherical_into(&shifted, &mut angles);
            for (col, &a) in columns.iter_mut().zip(angles.iter()) {
                col.push(a);
            }
        }
        let boundaries = splits
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                let col = &mut columns[i];
                col.sort_by(f64::total_cmp);
                (1..s)
                    .map(|k| {
                        let idx = (k * col.len()) / s;
                        col[idx.min(col.len() - 1)]
                    })
                    .collect::<Vec<f64>>()
            })
            .collect::<Vec<_>>();
        Ok(Self::from_boundaries(d, origin, splits, boundaries))
    }

    fn single_sector(origin: Vec<f64>) -> Self {
        Self {
            dim: origin.len(),
            origin,
            splits: vec![],
            boundaries: vec![],
            sectors: 1,
        }
    }

    fn from_boundaries(
        dim: usize,
        origin: Vec<f64>,
        splits: Vec<usize>,
        boundaries: Vec<Vec<f64>>,
    ) -> Self {
        debug_assert_eq!(splits.len(), boundaries.len());
        for (s, b) in splits.iter().zip(&boundaries) {
            debug_assert_eq!(b.len(), s - 1);
        }
        let sectors = splits.iter().product();
        Self {
            dim,
            origin,
            splits,
            boundaries,
            sectors,
        }
    }

    /// Per-angular-dimension split counts.
    pub fn splits(&self) -> &[usize] {
        &self.splits
    }

    /// Interior sector boundaries per angular dimension, ascending.
    pub fn boundaries(&self) -> &[Vec<f64>] {
        &self.boundaries
    }

    /// The translation applied before the hyperspherical transform (the
    /// fitted data's minimum corner).
    pub fn origin(&self) -> &[f64] {
        &self.origin
    }

    /// The angular multi-index of `p` (empty for 1-D data).
    pub fn sector_index(&self, p: &Point) -> Vec<usize> {
        assert_eq!(p.dim(), self.dim, "point dimensionality mismatch");
        if self.dim == 1 {
            return vec![];
        }
        let shifted = shift_to_origin(p, &self.origin);
        let mut angles = vec![0.0; self.dim - 1];
        let _r = to_hyperspherical_into(&shifted, &mut angles);
        angles
            .iter()
            .zip(&self.boundaries)
            .map(|(&a, bs)| bs.partition_point(|&b| b <= a))
            .collect()
    }
}

fn shift_to_origin(p: &Point, origin: &[f64]) -> Point {
    Point::new(
        p.id(),
        p.coords()
            .iter()
            .zip(origin)
            .map(|(&v, &o)| (v - o).max(0.0))
            .collect::<Vec<_>>(),
    )
}

impl SpacePartitioner for AnglePartitioner {
    fn name(&self) -> &'static str {
        "angle"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn num_partitions(&self) -> usize {
        self.sectors
    }

    fn partition_of(&self, p: &Point) -> usize {
        assert_eq!(p.dim(), self.dim, "point dimensionality mismatch");
        self.partition_of_row(p.id(), p.coords())
    }

    fn partition_of_row(&self, _id: u64, coords: &[f64]) -> usize {
        assert_eq!(coords.len(), self.dim, "row dimensionality mismatch");
        if self.dim == 1 {
            return 0;
        }
        // Translate to the fitted origin and transform to angles without
        // materialising a Point; fuse the sector lookup with row-major
        // linearisation so no multi-index is allocated.
        let shifted: Vec<f64> = coords
            .iter()
            .zip(self.origin.iter())
            .map(|(&v, &o)| (v - o).max(0.0))
            .collect();
        let mut angles = vec![0.0; self.dim - 1];
        let _r = angles_of_row(&shifted, &mut angles);
        let mut out = 0usize;
        for ((&a, bs), &s) in angles.iter().zip(&self.boundaries).zip(&self.splits) {
            out = out * s + bs.partition_point(|&b| b <= a);
        }
        out
    }

    fn boundary_profile(&self) -> BoundaryProfile {
        BoundaryProfile {
            scheme: self.name(),
            space: PartitionSpace::Angular,
            axes: self
                .boundaries
                .iter()
                .enumerate()
                .map(|(i, bs)| AxisProfile {
                    coord: i,
                    domain: (0.0, FRAC_PI_2),
                    boundaries: bs.clone(),
                })
                .collect(),
            origin: Some(self.origin.clone()),
        }
    }

    /// Angular sectors are radially unbounded, and the pre-transform clamp
    /// lets raw coordinates sit below the fitted origin, so no finite
    /// per-axis envelope exists. Returning an all-unbounded envelope (rather
    /// than `None`) still unlocks witness pruning: the observed per-sector
    /// minima supply the real corner.
    fn sector_bounds(&self, partition: usize) -> Option<Vec<(f64, f64)>> {
        assert!(partition < self.sectors, "partition index out of range");
        Some(vec![(f64::NEG_INFINITY, f64::INFINITY); self.dim])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_d_four_sectors_split_by_slope() {
        // 4 sectors over φ ∈ [0, π/2] → boundaries at π/8, π/4, 3π/8,
        // i.e. slopes tan(π/8)≈0.414, 1, tan(3π/8)≈2.414.
        let part = AnglePartitioner::fit(&Bounds::zero_to(10.0, 2), 4).unwrap();
        assert_eq!(part.num_partitions(), 4);
        assert_eq!(part.partition_of(&Point::new(0, vec![10.0, 1.0])), 0); // slope 0.1
        assert_eq!(part.partition_of(&Point::new(1, vec![10.0, 6.0])), 1); // slope 0.6
        assert_eq!(part.partition_of(&Point::new(2, vec![6.0, 10.0])), 2); // slope 1.67
        assert_eq!(part.partition_of(&Point::new(3, vec![1.0, 10.0])), 3); // slope 10
    }

    #[test]
    fn sector_is_radius_invariant() {
        // Scaling a point away from the origin must not change its sector —
        // the defining property of angular partitioning.
        let part = AnglePartitioner::fit(&Bounds::zero_to(100.0, 3), 8).unwrap();
        let base = Point::new(0, vec![1.0, 2.0, 0.5]);
        let sector = part.partition_of(&base);
        for scale in [2.0, 5.0, 40.0] {
            let scaled = Point::new(
                1,
                base.coords().iter().map(|v| v * scale).collect::<Vec<_>>(),
            );
            assert_eq!(part.partition_of(&scaled), sector, "scale {scale}");
        }
    }

    #[test]
    fn every_sector_reachable_2d() {
        let np = 6;
        let part = AnglePartitioner::fit(&Bounds::zero_to(1.0, 2), np).unwrap();
        let mut seen = vec![false; part.num_partitions()];
        for k in 0..=200 {
            let angle = FRAC_PI_2 * f64::from(k) / 200.0;
            let p = Point::new(k as u64, vec![angle.cos(), angle.sin()]);
            seen[part.partition_of(&p)] = true;
        }
        assert!(seen.iter().all(|&s| s), "unreached sectors: {seen:?}");
    }

    #[test]
    fn one_dimensional_data_single_sector() {
        let part = AnglePartitioner::fit(&Bounds::zero_to(5.0, 1), 8).unwrap();
        assert_eq!(part.num_partitions(), 1);
        assert_eq!(part.partition_of(&Point::new(0, vec![3.0])), 0);
    }

    #[test]
    fn origin_point_lands_in_first_sector() {
        let part = AnglePartitioner::fit(&Bounds::zero_to(1.0, 2), 4).unwrap();
        assert_eq!(part.partition_of(&Point::new(0, vec![0.0, 0.0])), 0);
    }

    #[test]
    fn nonzero_origin_is_translated() {
        // Data living in [10, 20]^2: angles must be computed relative to the
        // data's own min corner, not the global origin, otherwise every point
        // collapses into a narrow angular band around the diagonal.
        let b = Bounds::new(vec![10.0, 10.0], vec![20.0, 20.0]);
        let part = AnglePartitioner::fit(&b, 4).unwrap();
        let near_x_axis = part.partition_of(&Point::new(0, vec![19.0, 10.5]));
        let near_y_axis = part.partition_of(&Point::new(1, vec![10.5, 19.0]));
        assert_eq!(near_x_axis, 0);
        assert_eq!(near_y_axis, 3);
    }

    #[test]
    fn high_dimensional_sector_count() {
        let part = AnglePartitioner::fit(&Bounds::zero_to(1.0, 10), 16).unwrap();
        // 9 angular dims, lattice with product >= 16
        assert!(part.num_partitions() >= 16);
        assert_eq!(part.splits().len(), 9);
        // assignment total over random points
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        for i in 0..100 {
            let p = Point::new(
                i,
                (0..10).map(|_| rng.gen_range(0.0..1.0)).collect::<Vec<_>>(),
            );
            let s = part.partition_of(&p);
            assert!(s < part.num_partitions());
        }
    }

    #[test]
    fn zero_partitions_rejected() {
        assert!(matches!(
            AnglePartitioner::fit(&Bounds::unit(2), 0),
            Err(SkylineError::ZeroPartitions)
        ));
        assert!(matches!(
            AnglePartitioner::fit_quantile(&[Point::new(0, vec![1.0, 1.0])], 0),
            Err(SkylineError::ZeroPartitions)
        ));
    }

    #[test]
    fn quantile_fit_rejects_empty_sample() {
        assert!(AnglePartitioner::fit_quantile(&[], 4).is_err());
    }

    #[test]
    fn sectors_balance_uniform_data() {
        // Smoke-check the paper's load-balancing claim: with uniform 2-D
        // data, angular sectors should all be non-empty.
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(9);
        let pts: Vec<Point> = (0..2000)
            .map(|i| Point::new(i, vec![rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)]))
            .collect();
        let part = AnglePartitioner::fit(&Bounds::unit(2), 8).unwrap();
        let mut counts = vec![0usize; part.num_partitions()];
        for p in &pts {
            counts[part.partition_of(p)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0), "empty sector: {counts:?}");
    }

    #[test]
    fn quantile_splits_balance_skewed_data() {
        // Heavily skewed 2-D data: most points hug the x-axis. Equal-width
        // sectors pile everything into sector 0; quantile sectors balance.
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(21);
        let pts: Vec<Point> = (0..4000)
            .map(|i| {
                let x = rng.gen_range(0.5..1.0);
                let y = rng.gen_range(0.0..0.05);
                Point::new(i, vec![x, y])
            })
            .collect();
        let np = 4;
        let equal = AnglePartitioner::fit(&Bounds::from_points(&pts).unwrap(), np).unwrap();
        let quant = AnglePartitioner::fit_quantile(&pts, np).unwrap();
        let count = |part: &AnglePartitioner| {
            let mut c = vec![0usize; part.num_partitions()];
            for p in &pts {
                c[part.partition_of(p)] += 1;
            }
            c
        };
        let ce = count(&equal);
        let cq = count(&quant);
        let max_e = *ce.iter().max().unwrap();
        let max_q = *cq.iter().max().unwrap();
        assert!(
            max_q < max_e,
            "quantile max {max_q} should beat equal-width max {max_e} ({ce:?} vs {cq:?})"
        );
        assert!(
            max_q <= 4000 * 2 / np,
            "quantile sectors roughly balanced: {cq:?}"
        );
    }

    #[test]
    fn quantile_sector_still_radius_invariant() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(22);
        let pts: Vec<Point> = (0..500)
            .map(|i| {
                Point::new(
                    i,
                    vec![
                        rng.gen_range(0.0..1.0),
                        rng.gen_range(0.0..1.0),
                        rng.gen_range(0.0..1.0),
                    ],
                )
            })
            .collect();
        let part = AnglePartitioner::fit_quantile(&pts, 8).unwrap();
        let base = Point::new(1000, vec![0.4, 0.2, 0.6]);
        let sector = part.partition_of(&base);
        for scale in [0.5, 2.0, 10.0] {
            let scaled = Point::new(
                1001,
                base.coords().iter().map(|v| v * scale).collect::<Vec<_>>(),
            );
            assert_eq!(part.partition_of(&scaled), sector, "scale {scale}");
        }
    }

    #[test]
    fn quantile_and_equal_agree_on_uniform_angles() {
        // Points spread uniformly in angle: quantile boundaries ≈ equal ones,
        // so assignments should mostly coincide.
        let pts: Vec<Point> = (0..=400)
            .map(|k| {
                let a = FRAC_PI_2 * f64::from(k) / 400.0;
                Point::new(k as u64, vec![a.cos(), a.sin()])
            })
            .collect();
        let equal = AnglePartitioner::fit(&Bounds::from_points(&pts).unwrap(), 4).unwrap();
        let quant = AnglePartitioner::fit_quantile(&pts, 4).unwrap();
        let agree = pts
            .iter()
            .filter(|p| equal.partition_of(p) == quant.partition_of(p))
            .count();
        assert!(
            agree * 10 >= pts.len() * 9,
            "only {agree}/{} agree",
            pts.len()
        );
    }
}
