//! SaLSa — Sort and Limit Skyline algorithm (Bartolini, Ciaccia, Patella,
//! CIKM 2006), on the columnar [`PointBlock`] layout.
//!
//! Like SFS, SaLSa presorts by a monotone score and filters in a single
//! pass. Its key addition is an **early-stop watermark**: sorting by the
//! *minimum coordinate* lets the scan prove, part-way through, that every
//! remaining candidate is dominated — and terminate without looking at
//! them.
//!
//! The sort key is the triple `(minC, L1, id)`:
//!
//! * `minC` alone is only *weakly* monotone — if `p` dominates `q` then
//!   `min(p) <= min(q)`, with equality possible — and a weakly monotone key
//!   would let a dominator sort *after* its victim inside a tie group,
//!   breaking the single-pass argument.
//! * The L1 norm is strictly monotone, so within a `minC` tie group it
//!   places dominators first. Lexicographically `(minC, L1)` is therefore
//!   strictly monotone under dominance: a dominator always sorts strictly
//!   earlier.
//! * `id` makes the order (and hence the emission order) deterministic.
//!
//! **Stop condition.** While scanning, track the accepted point `p_stop`
//! with the smallest maximum coordinate seen so far. If the current
//! candidate `c` has `min(c) > max(p_stop)`, then every coordinate of `c`
//! is `>= min(c) > max(p_stop) >=` every coordinate of `p_stop`, so
//! `p_stop` *strictly* dominates `c` — and because candidates arrive in
//! ascending `minC` order, the same holds for every remaining candidate.
//! The scan stops; the skipped tail is counted in
//! [`KernelStats::skipped`]. The comparison is strict (`>`, not `>=`) so
//! that duplicates of `p_stop` itself — which tie on every coordinate and
//! are *not* dominated — are never skipped.
//!
//! On correlated inputs a point with a small maximum coordinate appears
//! almost immediately and the watermark prunes nearly the whole block; on
//! anti-correlated inputs the watermark rarely fires and SaLSa degrades to
//! an SFS with a slightly weaker sort key.

use crate::block::PointBlock;
use crate::kernel::{dominates_row, KernelStats};

/// Computes the skyline of `block` with the SaLSa kernel.
pub fn block_salsa(block: &PointBlock) -> PointBlock {
    block_salsa_stats(block).0
}

/// Like [`block_salsa`] but also returns execution statistics.
pub fn block_salsa_stats(block: &PointBlock) -> (PointBlock, KernelStats) {
    let d = block.dim();
    let n = block.len();
    let mut stats = KernelStats {
        input_len: n as u64,
        ..KernelStats::default()
    };
    let mut skyline = PointBlock::with_capacity(d, 0);
    if n == 0 {
        return (skyline, stats);
    }
    stats.passes = 1;

    let min_keys: Vec<f64> = (0..n).map(|i| block.min_coord(i)).collect();
    let l1_keys: Vec<f64> = (0..n).map(|i| block.l1_norm(i)).collect();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        min_keys[a]
            .total_cmp(&min_keys[b])
            .then_with(|| l1_keys[a].total_cmp(&l1_keys[b]))
            .then_with(|| block.id(a).cmp(&block.id(b)))
    });

    // `minC` of each accepted row (ascending, parallel to `skyline`): the
    // inner scan stops at the first accepted row whose minC exceeds the
    // candidate's, because a dominator sorts strictly earlier on (minC, L1)
    // and rows past that bound have strictly larger minC.
    let mut accepted_min: Vec<f64> = Vec::new();
    // The global watermark: smallest max-coordinate over accepted rows.
    let mut stop_max = f64::INFINITY;

    for (rank, &i) in order.iter().enumerate() {
        let cand = block.row(i);
        let cand_min = min_keys[i];
        if cand_min > stop_max {
            stats.skipped = (n - rank) as u64;
            break;
        }
        let mut dominated = false;
        for (srow, &smin) in skyline.coords().chunks_exact(d).zip(&accepted_min) {
            if smin > cand_min {
                break;
            }
            stats.comparisons += 1;
            stats.dim_weighted += d as u64;
            if dominates_row(srow, cand) {
                dominated = true;
                break;
            }
        }
        if !dominated {
            skyline.push_trusted(block.id(i), cand);
            accepted_min.push(cand_min);
            stop_max = stop_max.min(block.max_coord(i));
        }
    }

    crate::invariants::check_skyline_block("block-salsa", block, &skyline);
    stats.output_len = skyline.len() as u64;
    crate::kernel::record_kernel_metrics("salsa", &stats);
    (skyline, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::naive_skyline_ids;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_block(n: usize, d: usize, seed: u64, grid: u32) -> PointBlock {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = PointBlock::with_capacity(d, n);
        for i in 0..n {
            let row: Vec<f64> = (0..d).map(|_| f64::from(rng.gen_range(0..grid))).collect();
            b.push(i as u64, &row).unwrap();
        }
        b
    }

    fn sorted_ids(block: &PointBlock) -> Vec<u64> {
        let mut out = block.ids().to_vec();
        out.sort_unstable();
        out
    }

    #[test]
    fn matches_oracle_on_random_grids() {
        for seed in 0..15 {
            let block = random_block(180, 4, seed, 6);
            let (sky, stats) = block_salsa_stats(&block);
            assert_eq!(
                sorted_ids(&sky),
                naive_skyline_ids(&block.to_points()),
                "seed {seed}"
            );
            assert_eq!(stats.passes, 1);
            assert_eq!(stats.overflowed, 0);
            assert_eq!(stats.output_len, sky.len() as u64);
        }
    }

    #[test]
    fn early_stop_fires_on_correlated_diagonal() {
        // Strongly correlated: point i is (i, i, i). The origin-most point
        // has max-coordinate 0, so the watermark stops the scan after the
        // first few rows and everything else is skipped unexamined.
        let mut b = PointBlock::new(3);
        for i in 0..1000u64 {
            let v = i as f64;
            b.push(i, &[v, v, v]).unwrap();
        }
        let (sky, stats) = block_salsa_stats(&b);
        assert_eq!(sorted_ids(&sky), vec![0]);
        assert!(stats.skipped >= 990, "skipped only {}", stats.skipped);
    }

    #[test]
    fn duplicates_of_the_stop_point_survive() {
        // Both copies of the all-zero point tie on every coordinate; the
        // strict `>` in the stop test must keep the second copy.
        let mut b = PointBlock::new(2);
        b.push(0, &[0.0, 0.0]).unwrap();
        b.push(1, &[0.0, 0.0]).unwrap();
        b.push(2, &[1.0, 1.0]).unwrap();
        let (sky, stats) = block_salsa_stats(&b);
        assert_eq!(sorted_ids(&sky), vec![0, 1]);
        assert_eq!(stats.skipped, 1, "the dominated tail is skipped");
    }

    #[test]
    fn constant_vectors_all_survive() {
        // Every point equal: nothing dominates anything; no skipping.
        let mut b = PointBlock::new(2);
        for i in 0..8u64 {
            b.push(i, &[2.0, 2.0]).unwrap();
        }
        let (sky, stats) = block_salsa_stats(&b);
        assert_eq!(sky.len(), 8);
        assert_eq!(stats.skipped, 0);
    }

    #[test]
    fn min_coord_tie_groups_are_ordered_by_l1() {
        // p=(0,1) dominates q=(0,2); both have minC=0, so the L1 tie-break
        // must put p first or q would be wrongly accepted.
        let mut b = PointBlock::new(2);
        b.push(7, &[0.0, 2.0]).unwrap();
        b.push(8, &[0.0, 1.0]).unwrap();
        let sky = block_salsa(&b);
        assert_eq!(sorted_ids(&sky), vec![8]);
    }

    #[test]
    fn anti_correlated_diagonal_keeps_everything() {
        let mut b = PointBlock::new(2);
        for i in 0..64u64 {
            b.push(i, &[i as f64, 63.0 - i as f64]).unwrap();
        }
        let (sky, stats) = block_salsa_stats(&b);
        assert_eq!(sky.len(), 64);
        assert_eq!(stats.skipped, 0);
    }

    #[test]
    fn empty_input() {
        let (sky, stats) = block_salsa_stats(&PointBlock::new(3));
        assert!(sky.is_empty());
        assert_eq!(stats.passes, 0);
    }
}
