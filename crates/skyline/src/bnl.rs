//! Block-Nested-Loops (BNL) skyline — Börzsönyi, Kossmann, Stocker, ICDE 2001.
//!
//! BNL is the kernel the paper uses for both the per-partition local skylines
//! (Algorithm 1, lines 7–10) and the final global merge (line 15). It streams
//! the input once per *pass*, keeping a **window** of incomparable candidate
//! points:
//!
//! * an incoming point dominated by any window point is discarded;
//! * window points dominated by the incoming point are evicted;
//! * otherwise the point joins the window, or — if the window is full — is
//!   written to an *overflow* buffer to be processed in the next pass.
//!
//! With a bounded window, a window point can only be emitted as a confirmed
//! skyline point once it has been compared against **every** overflowed
//! point. The classic timestamp argument: a point entering the window at
//! (global) time `t_w` has been compared with every point read after `t_w`,
//! so at the end of a pass it can be emitted iff `t_w` precedes the time the
//! first point of that pass overflowed. All later window entries are retained
//! for the next pass.
//!
//! The window is self-organising: whenever a window point kills an incoming
//! point it is moved to the front, so aggressive dominators are met early —
//! the standard BNL optimisation.

use crate::dominance::{DomCounter, DomRelation};
use crate::point::Point;

/// Configuration for a BNL run.
#[derive(Debug, Clone)]
pub struct BnlConfig {
    /// Maximum number of points held in the in-memory window; `None` means
    /// unbounded (single pass, no overflow). The paper's Hadoop setting
    /// bounds worker memory at 1 GB, which we model with a finite window.
    pub window_size: Option<usize>,
    /// If `true`, a window point that discards an incoming point is moved to
    /// the front of the window (self-organising list).
    pub move_to_front: bool,
}

impl Default for BnlConfig {
    fn default() -> Self {
        Self {
            window_size: None,
            move_to_front: true,
        }
    }
}

impl BnlConfig {
    /// Unbounded window.
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// Window bounded to `n` points (multi-pass BNL).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`: a zero-size window cannot make progress.
    pub fn with_window(n: usize) -> Self {
        assert!(n > 0, "BNL window must hold at least one point");
        Self {
            window_size: Some(n),
            move_to_front: true,
        }
    }
}

/// Execution statistics of a BNL run, consumed by the cluster cost model.
#[derive(Debug, Default, Clone)]
pub struct BnlStats {
    /// Pairwise dominance comparisons performed (and their dim-weighted sum).
    pub counter: DomCounter,
    /// Number of passes over (remaining) input.
    pub passes: u32,
    /// Total points spilled to the overflow buffer across all passes.
    pub overflowed: u64,
    /// Input cardinality.
    pub input_len: u64,
    /// Output (skyline) cardinality.
    pub output_len: u64,
}

/// Computes the skyline of `points` with BNL. Duplicate coordinate vectors
/// are all retained (none dominates the other), matching the set semantics
/// of the dominance definition.
///
/// # Examples
///
/// ```
/// use skyline_algos::bnl::{bnl_skyline, BnlConfig};
/// use skyline_algos::point::Point;
///
/// let services = vec![
///     Point::new(0, vec![100.0, 5.0]), // fast but pricey
///     Point::new(1, vec![900.0, 1.0]), // slow but cheap
///     Point::new(2, vec![950.0, 6.0]), // slow AND pricey: dominated
/// ];
/// let sky = bnl_skyline(&services, &BnlConfig::default());
/// assert_eq!(sky.len(), 2);
/// ```
pub fn bnl_skyline(points: &[Point], cfg: &BnlConfig) -> Vec<Point> {
    bnl_skyline_stats(points, cfg).0
}

/// Like [`bnl_skyline`] but also returns execution statistics.
pub fn bnl_skyline_stats(points: &[Point], cfg: &BnlConfig) -> (Vec<Point>, BnlStats) {
    let mut stats = BnlStats {
        input_len: points.len() as u64,
        ..BnlStats::default()
    };
    if points.is_empty() {
        return (Vec::new(), stats);
    }

    // Window entries carry the global timestamp at which they entered.
    struct Entry {
        point: Point,
        entered_at: u64,
    }

    let window_cap = cfg.window_size.unwrap_or(usize::MAX);
    let mut window: Vec<Entry> = Vec::with_capacity(window_cap.min(points.len()).min(4096));
    let mut skyline: Vec<Point> = Vec::new();
    // (point, timestamp) pairs deferred to the next pass.
    let mut input: Vec<(Point, u64)> = points
        .iter()
        .enumerate()
        .map(|(i, p)| (p.clone(), i as u64))
        .collect();
    let mut clock = points.len() as u64;

    while !input.is_empty() {
        stats.passes += 1;
        let mut overflow: Vec<(Point, u64)> = Vec::new();
        // Timestamp of the first point overflowed in this pass; window points
        // that entered before it have met every remaining candidate.
        let mut first_overflow_ts: Option<u64> = None;

        for (candidate, _orig_ts) in input.drain(..) {
            let ts = clock;
            clock += 1;
            let mut dominated = false;
            let mut i = 0;
            while i < window.len() {
                match stats.counter.compare(&window[i].point, &candidate) {
                    DomRelation::LeftDominates => {
                        dominated = true;
                        if cfg.move_to_front && i > 0 {
                            window.swap(0, i);
                        }
                        break;
                    }
                    DomRelation::RightDominates => {
                        window.swap_remove(i);
                        // re-examine the element swapped into position i
                    }
                    // Distinct services with equal QoS vectors are mutually
                    // non-dominating: both stay.
                    DomRelation::Equal | DomRelation::Incomparable => {
                        i += 1;
                    }
                }
            }
            if dominated {
                continue;
            }
            if window.len() < window_cap {
                window.push(Entry {
                    point: candidate,
                    entered_at: ts,
                });
            } else {
                if first_overflow_ts.is_none() {
                    first_overflow_ts = Some(ts);
                }
                stats.overflowed += 1;
                overflow.push((candidate, ts));
            }
        }

        // Emit confirmed window points; retain the rest for the next pass.
        match first_overflow_ts {
            None => {
                // No overflow: every window point has met every candidate.
                skyline.extend(window.drain(..).map(|e| e.point));
            }
            Some(cut) => {
                let mut retained = Vec::with_capacity(window.len());
                for e in window.drain(..) {
                    if e.entered_at < cut {
                        skyline.push(e.point);
                    } else {
                        retained.push(e);
                    }
                }
                window = retained;
            }
        }
        input = overflow;
    }
    skyline.extend(window.drain(..).map(|e| e.point));

    crate::invariants::check_skyline("bnl", points, &skyline);
    stats.output_len = skyline.len() as u64;
    (skyline, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::naive_skyline;

    fn pts(rows: &[&[f64]]) -> Vec<Point> {
        rows.iter()
            .enumerate()
            .map(|(i, r)| Point::new(i as u64, r.to_vec()))
            .collect()
    }

    fn ids(mut v: Vec<Point>) -> Vec<u64> {
        let mut out: Vec<u64> = v.drain(..).map(|p| p.id()).collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn empty_input_gives_empty_skyline() {
        let (sky, stats) = bnl_skyline_stats(&[], &BnlConfig::default());
        assert!(sky.is_empty());
        assert_eq!(stats.passes, 0);
        assert_eq!(stats.input_len, 0);
    }

    #[test]
    fn single_point_is_its_own_skyline() {
        let p = pts(&[&[1.0, 2.0]]);
        assert_eq!(ids(bnl_skyline(&p, &BnlConfig::default())), vec![0]);
    }

    #[test]
    fn paper_figure_one_contour() {
        // Mimics Figure 1: s8 dominated, s1..s7 on the contour.
        let p = pts(&[
            &[1.0, 9.0], // s1
            &[2.0, 7.0], // s2
            &[3.0, 5.0], // s3
            &[4.5, 3.5], // s4
            &[6.0, 2.5], // s5
            &[7.5, 2.0], // s6
            &[9.0, 1.0], // s7
            &[7.0, 6.0], // s8 — dominated by s3/s4/s5
        ]);
        assert_eq!(
            ids(bnl_skyline(&p, &BnlConfig::default())),
            vec![0, 1, 2, 3, 4, 5, 6]
        );
    }

    #[test]
    fn duplicates_are_all_kept() {
        let p = pts(&[&[1.0, 1.0], &[1.0, 1.0], &[2.0, 2.0]]);
        assert_eq!(ids(bnl_skyline(&p, &BnlConfig::default())), vec![0, 1]);
    }

    #[test]
    fn dominated_duplicate_cluster_removed() {
        let p = pts(&[&[2.0, 2.0], &[2.0, 2.0], &[1.0, 1.0]]);
        assert_eq!(ids(bnl_skyline(&p, &BnlConfig::default())), vec![2]);
    }

    #[test]
    fn single_dimension_minimum_wins() {
        let p = pts(&[&[5.0], &[3.0], &[9.0], &[3.0]]);
        assert_eq!(ids(bnl_skyline(&p, &BnlConfig::default())), vec![1, 3]);
    }

    #[test]
    fn tiny_window_still_correct() {
        // Anti-correlated-ish data where everything is in the skyline, which
        // maximises overflow pressure.
        let rows: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![f64::from(i), 49.0 - f64::from(i)])
            .collect();
        let p: Vec<Point> = rows
            .iter()
            .enumerate()
            .map(|(i, r)| Point::new(i as u64, r.clone()))
            .collect();
        for w in [1usize, 2, 3, 7, 49] {
            let (sky, stats) = bnl_skyline_stats(&p, &BnlConfig::with_window(w));
            assert_eq!(sky.len(), 50, "window {w}");
            assert!(stats.passes >= 2, "window {w} must overflow");
        }
    }

    #[test]
    fn bounded_window_matches_oracle_on_random_data() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for trial in 0..20 {
            let n = rng.gen_range(1..200);
            let d = rng.gen_range(1..6);
            let points: Vec<Point> = (0..n)
                .map(|i| {
                    Point::new(
                        i as u64,
                        (0..d).map(|_| rng.gen_range(0.0..10.0)).collect::<Vec<_>>(),
                    )
                })
                .collect();
            let oracle = ids(naive_skyline(&points));
            for w in [1usize, 4, 16] {
                let got = ids(bnl_skyline(&points, &BnlConfig::with_window(w)));
                assert_eq!(got, oracle, "trial {trial} window {w}");
            }
            let got = ids(bnl_skyline(&points, &BnlConfig::unbounded()));
            assert_eq!(got, oracle, "trial {trial} unbounded");
        }
    }

    #[test]
    fn stats_account_input_output_and_passes() {
        let p = pts(&[&[1.0, 9.0], &[9.0, 1.0], &[5.0, 5.0], &[6.0, 6.0]]);
        let (sky, stats) = bnl_skyline_stats(&p, &BnlConfig::default());
        assert_eq!(stats.input_len, 4);
        assert_eq!(stats.output_len, sky.len() as u64);
        assert_eq!(stats.passes, 1);
        assert_eq!(stats.overflowed, 0);
        assert!(stats.counter.comparisons() > 0);
    }

    #[test]
    fn move_to_front_disabled_still_correct() {
        let cfg = BnlConfig {
            window_size: Some(2),
            move_to_front: false,
        };
        let p = pts(&[
            &[3.0, 3.0],
            &[1.0, 5.0],
            &[5.0, 1.0],
            &[2.0, 2.0],
            &[4.0, 4.0],
        ]);
        assert_eq!(ids(bnl_skyline(&p, &cfg)), ids(naive_skyline(&p)));
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn zero_window_rejected() {
        let _ = BnlConfig::with_window(0);
    }
}
