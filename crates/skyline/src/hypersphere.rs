//! Cartesian → hyperspherical transform — the paper's Eq. (1) and Eq. (2).
//!
//! A service `s = (v₁, …, vₙ)` with non-negative QoS coordinates maps to a
//! radial coordinate and `n − 1` angular coordinates:
//!
//! ```text
//! r        = sqrt(v₁² + … + vₙ²)
//! tan(φ₁)  = sqrt(v₂² + … + vₙ²) / v₁
//! …
//! tan(φᵢ)  = sqrt(vᵢ₊₁² + … + vₙ²) / vᵢ
//! …
//! tan(φₙ₋₁)= vₙ / vₙ₋₁
//! ```
//!
//! For points in the non-negative orthant every angle lies in `[0, π/2]`.
//! The angles alone determine which angular sector a point belongs to — the
//! radial coordinate deliberately plays no role in partitioning, which is
//! exactly why each sector spans from near the origin outward and contains
//! both high- and low-quality points (the load-balance argument of
//! Section III-C).
//!
//! Implementation notes: the nested square roots are computed with a single
//! backward sweep of suffix sums of squares, so the transform is `O(d)` per
//! point with no allocation when using [`to_hyperspherical_into`]. `atan2` is
//! used instead of `atan(·/·)` so that `vᵢ = 0` is handled without division
//! by zero (`atan2(x, 0) = π/2` for `x > 0`, and `atan2(0, 0) = 0` — the
//! conventional angle for the all-zero suffix).

use crate::point::Point;
use serde::{Deserialize, Serialize};

/// A point expressed in hyperspherical coordinates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HyperPoint {
    /// Identifier carried over from the Cartesian [`Point`].
    pub id: u64,
    /// Radial coordinate `r ≥ 0`.
    pub r: f64,
    /// The `n − 1` angular coordinates, each in `[0, π/2]` for points in the
    /// non-negative orthant. Empty for 1-dimensional points.
    pub angles: Box<[f64]>,
}

/// Transforms `p` into hyperspherical coordinates per Eq. (1).
///
/// Coordinates are clamped at zero first: QoS data in this suite is
/// normalised to the non-negative orthant, and tiny negative values from
/// floating-point noise must not flip an angle out of `[0, π/2]`.
///
/// # Examples
///
/// ```
/// use skyline_algos::hypersphere::to_hyperspherical;
/// use skyline_algos::point::Point;
///
/// let h = to_hyperspherical(&Point::new(0, vec![1.0, 1.0]));
/// assert!((h.r - 2.0_f64.sqrt()).abs() < 1e-12);
/// assert!((h.angles[0] - std::f64::consts::FRAC_PI_4).abs() < 1e-12);
/// ```
pub fn to_hyperspherical(p: &Point) -> HyperPoint {
    let mut angles = vec![0.0; p.dim().saturating_sub(1)];
    let r = to_hyperspherical_into(p, &mut angles);
    HyperPoint {
        id: p.id(),
        r,
        angles: angles.into(),
    }
}

/// Allocation-free variant: writes the `d − 1` angles into `angles` and
/// returns the radial coordinate.
///
/// # Panics
///
/// Panics if `angles.len() != p.dim() - 1`.
pub fn to_hyperspherical_into(p: &Point, angles: &mut [f64]) -> f64 {
    angles_of_row(p.coords(), angles)
}

/// Row-slice variant of [`to_hyperspherical_into`] for columnar batches
/// ([`crate::block::PointBlock`] rows): writes the `d − 1` angles into
/// `angles` and returns the radial coordinate, with no `Point` needed.
///
/// # Panics
///
/// Panics if `angles.len() != c.len() - 1`.
pub fn angles_of_row(c: &[f64], angles: &mut [f64]) -> f64 {
    let d = c.len();
    assert_eq!(
        angles.len(),
        d - 1,
        "angle buffer must have d-1 = {} slots",
        d - 1
    );
    // suffix[i] = sqrt(c[i]^2 + ... + c[d-1]^2), computed backwards.
    // We only need it incrementally, so keep the running sum of squares.
    let mut sumsq = 0.0f64;
    // Walk backwards; angle i (0-based) = atan2(sqrt(sum_{j>i} c_j^2), c_i).
    for i in (0..d).rev() {
        let v = c[i].max(0.0);
        if i < d - 1 {
            angles[i] = sumsq.sqrt().atan2(v);
        }
        sumsq += v * v;
    }
    sumsq.sqrt()
}

/// Inverse transform: reconstructs Cartesian coordinates from `(r, angles)`.
///
/// `v₁ = r·cos φ₁`, `v₂ = r·sin φ₁·cos φ₂`, …, `vₙ = r·sin φ₁ ⋯ sin φₙ₋₁`.
/// Exposed mainly for tests (round-trip property) and documentation, since
/// Algorithm 1 only ever uses the forward direction.
pub fn to_cartesian(h: &HyperPoint) -> Point {
    let d = h.angles.len() + 1;
    let mut coords = vec![0.0; d];
    let mut sin_prod = h.r;
    for (c, angle) in coords.iter_mut().zip(h.angles.iter()) {
        *c = sin_prod * angle.cos();
        sin_prod *= angle.sin();
    }
    coords[d - 1] = sin_prod;
    // floating-point cleanup: the forward transform clamps at 0
    for v in coords.iter_mut() {
        if *v < 0.0 && *v > -1e-12 {
            *v = 0.0;
        }
    }
    Point::new(h.id, coords)
}

/// The inclusive range every angle falls into for non-negative data.
pub const ANGLE_RANGE: (f64, f64) = (0.0, std::f64::consts::FRAC_PI_2);

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4};

    #[test]
    fn two_d_matches_eq2() {
        // Eq. (2): r = sqrt(x² + y²), tan φ = y/x.
        let p = Point::new(0, vec![1.0, 1.0]);
        let h = to_hyperspherical(&p);
        assert!((h.r - 2.0f64.sqrt()).abs() < 1e-12);
        assert_eq!(h.angles.len(), 1);
        assert!((h.angles[0] - FRAC_PI_4).abs() < 1e-12);
    }

    #[test]
    fn axis_points_hit_angle_extremes() {
        let on_x = to_hyperspherical(&Point::new(0, vec![3.0, 0.0]));
        assert!((on_x.angles[0] - 0.0).abs() < 1e-12, "y=0 → φ=0");
        let on_y = to_hyperspherical(&Point::new(1, vec![0.0, 3.0]));
        assert!((on_y.angles[0] - FRAC_PI_2).abs() < 1e-12, "x=0 → φ=π/2");
    }

    #[test]
    fn origin_maps_to_zero_angles() {
        let h = to_hyperspherical(&Point::new(0, vec![0.0, 0.0, 0.0]));
        assert_eq!(h.r, 0.0);
        assert!(h.angles.iter().all(|&a| a == 0.0));
    }

    #[test]
    fn one_dimensional_point_has_no_angles() {
        let h = to_hyperspherical(&Point::new(0, vec![5.0]));
        assert!((h.r - 5.0).abs() < 1e-12);
        assert!(h.angles.is_empty());
    }

    #[test]
    fn angles_stay_in_first_orthant_range() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..200 {
            let d = rng.gen_range(2..12);
            let p = Point::new(
                0,
                (0..d)
                    .map(|_| rng.gen_range(0.0..100.0))
                    .collect::<Vec<_>>(),
            );
            let h = to_hyperspherical(&p);
            for &a in h.angles.iter() {
                assert!(
                    (0.0..=FRAC_PI_2 + 1e-12).contains(&a),
                    "angle {a} out of range"
                );
            }
        }
    }

    #[test]
    fn last_angle_matches_eq1_final_row() {
        // tan(φ_{n-1}) = v_n / v_{n-1}
        let p = Point::new(0, vec![5.0, 2.0, 2.0]);
        let h = to_hyperspherical(&p);
        let expected = (2.0f64 / 2.0).atan();
        assert!((h.angles[1] - expected).abs() < 1e-12);
    }

    #[test]
    fn first_angle_matches_eq1_first_row() {
        let p = Point::new(0, vec![3.0, 4.0, 0.0]);
        let h = to_hyperspherical(&p);
        let expected = ((4.0f64 * 4.0 + 0.0).sqrt() / 3.0).atan();
        assert!((h.angles[0] - expected).abs() < 1e-12);
    }

    #[test]
    fn round_trip_reconstructs_coordinates() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..100 {
            let d = rng.gen_range(2..10);
            let p = Point::new(
                42,
                (0..d).map(|_| rng.gen_range(0.0..50.0)).collect::<Vec<_>>(),
            );
            let back = to_cartesian(&to_hyperspherical(&p));
            assert_eq!(back.id(), 42);
            for i in 0..d {
                assert!(
                    (back.coord(i) - p.coord(i)).abs() < 1e-9 * (1.0 + p.coord(i)),
                    "dim {i}: {} vs {}",
                    back.coord(i),
                    p.coord(i)
                );
            }
        }
    }

    #[test]
    fn into_variant_requires_correct_buffer() {
        let p = Point::new(0, vec![1.0, 2.0, 3.0]);
        let mut buf = vec![0.0; 2];
        let r = to_hyperspherical_into(&p, &mut buf);
        let h = to_hyperspherical(&p);
        assert_eq!(r, h.r);
        assert_eq!(&buf[..], &h.angles[..]);
    }

    #[test]
    #[should_panic(expected = "d-1")]
    fn into_variant_panics_on_wrong_buffer() {
        let p = Point::new(0, vec![1.0, 2.0, 3.0]);
        let mut buf = vec![0.0; 3];
        let _ = to_hyperspherical_into(&p, &mut buf);
    }

    #[test]
    fn negative_noise_is_clamped() {
        let p = Point::new(0, vec![-1e-15, 1.0]);
        let h = to_hyperspherical(&p);
        assert!((h.angles[0] - FRAC_PI_2).abs() < 1e-9);
    }
}
