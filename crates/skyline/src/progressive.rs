//! Progressive skyline emission — first results before the scan finishes.
//!
//! The paper cites two progressive algorithms (Kossmann et al., VLDB'02
//! [21]; Tan et al., VLDB'01 [29]) whose selling point is *online* delivery:
//! a user browsing services wants the first few guaranteed-optimal options
//! immediately, not after the full pairwise evaluation.
//!
//! [`ProgressiveSkyline`] delivers that with the SFS invariant: after
//! sorting by a monotone score (entropy), a point that survives comparison
//! against the already-accepted skyline is itself *final* — no later point
//! can dominate it, because later points all have scores at least as large.
//! So each `next()` returns a confirmed global skyline member, in
//! best-score-first order, with work proportional to what has been emitted.

use crate::dominance::DomCounter;
use crate::point::Point;

/// An iterator producing confirmed skyline points in ascending entropy-score
/// order.
pub struct ProgressiveSkyline {
    /// Remaining candidates, sorted by score ascending, consumed front to
    /// back (stored reversed so `pop` is O(1)).
    pending: Vec<Point>,
    accepted: Vec<Point>,
    counter: DomCounter,
}

impl ProgressiveSkyline {
    /// Prepares the progressive scan (one sort, no dominance work yet).
    pub fn new(points: &[Point]) -> Self {
        let mut pending: Vec<Point> = points.to_vec();
        // descending score: the best candidate sits at the back for pop()
        pending.sort_by(|a, b| {
            b.entropy_score()
                .total_cmp(&a.entropy_score())
                .then(b.id().cmp(&a.id()))
        });
        Self {
            pending,
            accepted: Vec::new(),
            counter: DomCounter::new(),
        }
    }

    /// Points confirmed so far.
    pub fn emitted(&self) -> &[Point] {
        &self.accepted
    }

    /// Dominance comparisons spent so far.
    pub fn comparisons(&self) -> u64 {
        self.counter.comparisons()
    }
}

impl Iterator for ProgressiveSkyline {
    type Item = Point;

    fn next(&mut self) -> Option<Point> {
        'candidates: while let Some(candidate) = self.pending.pop() {
            for s in &self.accepted {
                if self.counter.dominates(s, &candidate) {
                    continue 'candidates;
                }
            }
            self.accepted.push(candidate.clone());
            return Some(candidate);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::naive_skyline_ids;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_points(n: usize, d: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                Point::new(
                    i as u64,
                    (0..d).map(|_| rng.gen_range(0.0..5.0)).collect::<Vec<_>>(),
                )
            })
            .collect()
    }

    #[test]
    fn drains_to_the_exact_skyline() {
        for seed in [1u64, 2, 3] {
            let pts = random_points(400, 3, seed);
            let mut got: Vec<u64> = ProgressiveSkyline::new(&pts).map(|p| p.id()).collect();
            got.sort_unstable();
            assert_eq!(got, naive_skyline_ids(&pts));
        }
    }

    #[test]
    fn every_prefix_is_final() {
        // the defining progressive property: after k emissions, those k
        // points are global skyline members — no retraction ever needed
        let pts = random_points(300, 3, 7);
        let oracle = naive_skyline_ids(&pts);
        let mut progressive = ProgressiveSkyline::new(&pts);
        for k in 1..=5 {
            let Some(p) = progressive.next() else { break };
            assert!(oracle.contains(&p.id()), "emission {k} not in the skyline");
        }
    }

    #[test]
    fn emissions_ascend_in_score() {
        let pts = random_points(200, 2, 9);
        let scores: Vec<f64> = ProgressiveSkyline::new(&pts)
            .map(|p| p.entropy_score())
            .collect();
        for w in scores.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn first_emission_is_cheap() {
        // the first result costs zero dominance comparisons (empty window)
        let pts = random_points(10_000, 4, 11);
        let mut progressive = ProgressiveSkyline::new(&pts);
        let first = progressive.next().expect("non-empty input");
        assert_eq!(progressive.comparisons(), 0);
        // and it is the best-scored point overall
        let best = pts
            .iter()
            .map(Point::entropy_score)
            .fold(f64::INFINITY, f64::min);
        assert!((first.entropy_score() - best).abs() < 1e-12);
    }

    #[test]
    fn empty_input() {
        assert_eq!(ProgressiveSkyline::new(&[]).count(), 0);
    }

    #[test]
    fn emitted_tracks_progress() {
        let pts = random_points(50, 2, 13);
        let mut progressive = ProgressiveSkyline::new(&pts);
        assert!(progressive.emitted().is_empty());
        let _ = progressive.next();
        assert_eq!(progressive.emitted().len(), 1);
    }
}
