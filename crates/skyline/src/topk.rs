//! Top-k dominating queries — Papadias et al. (SIGMOD 2003 lineage).
//!
//! A complementary operator to the skyline: rank services by *how many other
//! services they dominate* and return the top `k`. Unlike the skyline it
//! always returns exactly `k` results (given `k ≤ n`) and needs no weights;
//! unlike weighted ranking it is scale-invariant. The paper's Section IV
//! already uses the underlying quantity — `Num_s / Num_all` is its dominance
//! ability — so this operator falls out of machinery we must have anyway.

use crate::dominance::dominates;
use crate::point::Point;

/// A point with its dominance score.
#[derive(Debug, Clone, PartialEq)]
pub struct DominatingEntry {
    /// The service.
    pub point: Point,
    /// How many other dataset points it dominates.
    pub dominated: usize,
}

/// Counts, for every point, how many other points it dominates. O(n²·d).
pub fn dominance_counts(points: &[Point]) -> Vec<usize> {
    points
        .iter()
        .map(|p| points.iter().filter(|q| dominates(p, q)).count())
        .collect()
}

/// Returns the `k` points dominating the most others, ties broken by id.
/// Results are sorted by descending count (then ascending id).
///
/// # Examples
///
/// ```
/// use skyline_algos::topk::top_k_dominating;
/// use skyline_algos::point::Point;
///
/// let pts = vec![
///     Point::new(0, vec![1.0, 1.0]),
///     Point::new(1, vec![2.0, 2.0]),
///     Point::new(2, vec![3.0, 3.0]),
/// ];
/// let top = top_k_dominating(&pts, 1);
/// assert_eq!(top[0].point.id(), 0);
/// assert_eq!(top[0].dominated, 2);
/// ```
pub fn top_k_dominating(points: &[Point], k: usize) -> Vec<DominatingEntry> {
    if k == 0 || points.is_empty() {
        return Vec::new();
    }
    let counts = dominance_counts(points);
    let mut entries: Vec<DominatingEntry> = points
        .iter()
        .zip(&counts)
        .map(|(p, &dominated)| DominatingEntry {
            point: p.clone(),
            dominated,
        })
        .collect();
    entries.sort_by(|a, b| {
        b.dominated
            .cmp(&a.dominated)
            .then(a.point.id().cmp(&b.point.id()))
    });
    entries.truncate(k);
    entries
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::naive_skyline_ids;

    fn p(id: u64, c: &[f64]) -> Point {
        Point::new(id, c.to_vec())
    }

    #[test]
    fn empty_and_k_zero() {
        assert!(top_k_dominating(&[], 3).is_empty());
        assert!(top_k_dominating(&[p(0, &[1.0])], 0).is_empty());
    }

    #[test]
    fn counts_match_definition() {
        let pts = vec![
            p(0, &[0.0, 0.0]), // dominates 2 and 3
            p(1, &[5.0, 0.5]), // dominates nothing (incomparable with 2,3? 5,0.5 vs 1,1: no; vs 2,2: no)
            p(2, &[1.0, 1.0]), // dominates 3
            p(3, &[2.0, 2.0]),
        ];
        assert_eq!(dominance_counts(&pts), vec![3, 0, 1, 0]);
    }

    #[test]
    fn top_one_is_the_heaviest_dominator() {
        let pts = vec![
            p(0, &[0.0, 10.0]), // skyline, dominates little
            p(1, &[1.0, 1.0]),  // dominates the cluster
            p(2, &[2.0, 2.0]),
            p(3, &[3.0, 3.0]),
            p(4, &[4.0, 4.0]),
        ];
        let top = top_k_dominating(&pts, 1);
        assert_eq!(top[0].point.id(), 1);
        assert_eq!(top[0].dominated, 3);
    }

    #[test]
    fn top_k_descending_with_id_ties() {
        let pts = vec![
            p(0, &[1.0, 1.0]),
            p(1, &[1.0, 1.0]), // same coordinates, same count
            p(2, &[2.0, 2.0]),
        ];
        let top = top_k_dominating(&pts, 3);
        assert_eq!(top[0].point.id(), 0, "tie broken by id");
        assert_eq!(top[1].point.id(), 1);
        assert!(top[0].dominated >= top[1].dominated);
    }

    #[test]
    fn top_dominator_need_not_be_balanced_but_top1_is_in_skyline_for_2d_chain() {
        // the #1 dominating point is always in the skyline: anything
        // dominating it would dominate strictly more
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(81);
        for _ in 0..10 {
            let pts: Vec<Point> = (0..150)
                .map(|i| Point::new(i, vec![rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)]))
                .collect();
            let top = top_k_dominating(&pts, 1);
            if top[0].dominated > 0 {
                assert!(naive_skyline_ids(&pts).contains(&top[0].point.id()));
            }
        }
    }

    #[test]
    fn k_larger_than_n_returns_all() {
        let pts = vec![p(0, &[1.0]), p(1, &[2.0])];
        assert_eq!(top_k_dominating(&pts, 10).len(), 2);
    }
}
