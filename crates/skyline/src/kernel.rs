//! Block-based dominance kernels over [`PointBlock`] batches.
//!
//! These are the hot loops of the suite, written against the columnar
//! layout so the compiler sees contiguous `f64` rows with a known stride:
//!
//! * [`dominates_row`] / [`compare_rows`] — branchless row comparisons. The
//!   AoS [`crate::dominance`] versions early-exit, which is right for one
//!   comparison but defeats vectorization; the branchless forms trade a few
//!   redundant flops for straight-line SIMD-friendly code.
//! * [`block_bnl`] — Block-Nested-Loops whose self-organising window lives
//!   in one flat buffer (same multi-pass overflow + timestamp-emission
//!   semantics as [`crate::bnl::bnl_skyline`], bit-for-bit the same result
//!   set).
//! * [`block_sfs`] — columnar Sort-Filter-Skyline: entropy-score presort,
//!   one stop-aware filtering pass, no evictions. The local-kernel sibling
//!   of the merge below (see also [`crate::salsa`] and [`crate::select`]).
//! * [`presort_merge`] — the SFS-style merge: candidates are presorted by
//!   L1 norm (a monotone score: if `p` dominates `q` then
//!   `l1(p) < l1(q)`), after which a *single* filtering pass suffices —
//!   an accepted point can never be evicted by a later candidate, so the
//!   merge does no window bookkeeping at all.
//! * [`dominated_count`] — the bulk dominance sweep used by benchmarks and
//!   pruning heuristics: how many candidate rows are dominated by at least
//!   one window row. Runtime-dispatches to an AVX-512 mask-register lane
//!   kernel over a column-major window transpose where the host supports
//!   it, falling back to the portable row-wise scan otherwise.

use crate::block::PointBlock;
use crate::bnl::BnlConfig;
use crate::dominance::DomRelation;

/// Execution statistics of a block kernel run, mirroring the fields the
/// cluster cost model consumes from [`crate::bnl::BnlStats`]. Fields are
/// public so callers can fold them into their own accounting without an
/// intermediate counter object.
#[derive(Debug, Default, Clone)]
pub struct KernelStats {
    /// Pairwise dominance comparisons performed.
    pub comparisons: u64,
    /// Comparisons weighted by dimensionality (`Σ d`), the quantity the
    /// cost model converts to CPU seconds.
    pub dim_weighted: u64,
    /// Passes over (remaining) input — always 1 for the presorting merge.
    pub passes: u32,
    /// Points spilled to the overflow buffer across all passes.
    pub overflowed: u64,
    /// Rows discarded without a single comparison by a sort-order bound
    /// (the SaLSa early-stop watermark); zero for kernels without one.
    pub skipped: u64,
    /// Input cardinality.
    pub input_len: u64,
    /// Output (skyline) cardinality.
    pub output_len: u64,
}

impl KernelStats {
    /// Folds another stats record into this one (chunk → run aggregation).
    pub fn merge(&mut self, other: &KernelStats) {
        self.comparisons += other.comparisons;
        self.dim_weighted += other.dim_weighted;
        self.passes = self.passes.max(other.passes);
        self.overflowed += other.overflowed;
        self.skipped += other.skipped;
        self.input_len += other.input_len;
        self.output_len += other.output_len;
    }
}

/// Records a kernel run into the process-global metrics registry under the
/// `skyline.<name>.*` namespace. One relaxed-atomic branch when metrics are
/// disabled (the default), so the hot kernels can call it unconditionally.
pub(crate) fn record_kernel_metrics(name: &str, stats: &KernelStats) {
    let m = mrsky_trace::metrics();
    if !m.is_enabled() {
        return;
    }
    m.incr(&format!("skyline.{name}.calls"), 1);
    m.incr(&format!("skyline.{name}.comparisons"), stats.comparisons);
    m.incr(&format!("skyline.{name}.passes"), u64::from(stats.passes));
    m.incr(&format!("skyline.{name}.overflowed"), stats.overflowed);
    m.incr(&format!("skyline.{name}.skipped"), stats.skipped);
    m.observe(
        &format!("skyline.{name}.comparisons_per_call"),
        stats.comparisons,
    );
    m.observe(&format!("skyline.{name}.output_len"), stats.output_len);
}

/// Returns `true` iff row `a` dominates row `b`: `a ≤ b` on all dimensions
/// and `a < b` on at least one.
///
/// Branchless on purpose: both flags are accumulated over the full row with
/// no early exit, so the loop auto-vectorizes over contiguous rows of a
/// [`PointBlock`].
#[inline]
pub fn dominates_row(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len(), "dominance requires equal width rows");
    let mut all_le = true;
    let mut any_lt = false;
    for (&x, &y) in a.iter().zip(b) {
        all_le &= x <= y;
        any_lt |= x < y;
    }
    all_le && any_lt
}

/// Branchless classification of a row pair under the dominance order;
/// agrees with [`crate::dominance::compare`] on validated (finite) rows.
#[inline]
pub fn compare_rows(a: &[f64], b: &[f64]) -> DomRelation {
    debug_assert_eq!(a.len(), b.len(), "dominance requires equal width rows");
    let mut a_better = false;
    let mut b_better = false;
    for (&x, &y) in a.iter().zip(b) {
        a_better |= x < y;
        b_better |= x > y;
    }
    match (a_better, b_better) {
        (true, false) => DomRelation::LeftDominates,
        (false, true) => DomRelation::RightDominates,
        (false, false) => DomRelation::Equal,
        (true, true) => DomRelation::Incomparable,
    }
}

/// Counts the candidate rows dominated by at least one window row.
///
/// Dispatches at runtime: on x86-64 with AVX-512 the sweep runs a
/// mask-register lane kernel (window transposed to column-major, 64 window
/// rows compared per dimension as one vector op — see [`lane_sweep`]);
/// everywhere else it falls back to the row-wise scan, whose per-row early
/// exit is the better trade-off when the compiler only has 2-wide SSE2.
///
/// # Panics
///
/// Panics if the blocks disagree on dimensionality.
pub fn dominated_count(candidates: &PointBlock, window: &PointBlock) -> usize {
    assert_eq!(
        candidates.dim(),
        window.dim(),
        "block dimensionality mismatch"
    );
    if window.is_empty() || candidates.is_empty() {
        return 0;
    }
    #[cfg(target_arch = "x86_64")]
    if let Some(count) = simd::try_lane_sweep(candidates, window) {
        mrsky_trace::metrics().incr("skyline.sweep.dispatch.lane", 1);
        return count;
    }
    mrsky_trace::metrics().incr("skyline.sweep.dispatch.scalar", 1);
    scalar_sweep(candidates, window)
}

/// Portable dominance sweep: per candidate, scan window rows with the
/// branchless [`dominates_row`] and early-exit on the first witness.
fn scalar_sweep(candidates: &PointBlock, window: &PointBlock) -> usize {
    let d = candidates.dim();
    let wrows = window.coords();
    let mut count = 0usize;
    for cand in candidates.coords().chunks_exact(d) {
        let mut dominated = false;
        for wrow in wrows.chunks_exact(d) {
            if dominates_row(wrow, cand) {
                dominated = true;
                break;
            }
        }
        count += usize::from(dominated);
    }
    count
}

/// Lane-parallel dominance sweep: the window is transposed once into
/// column-major order and padded to a multiple of 64 rows with `+inf`
/// (infinity is never `<=` a finite coordinate, so pad rows cannot witness
/// dominance). For each candidate, each dimension then compares 64
/// contiguous window values against one broadcast coordinate, accumulating
/// `all_le`/`any_lt` as `u64` bitmasks — on AVX-512 each 64-row block is a
/// handful of vector compares straight into mask registers. The candidate
/// loop still early-exits, at 64-row-block granularity.
///
/// Only profitable when the surrounding function is compiled with wide
/// vector ISAs, hence `#[inline(always)]`: the body must inline into the
/// `#[target_feature]` wrapper below to be codegenned with AVX-512 enabled.
#[inline(always)]
fn lane_sweep(candidates: &PointBlock, window: &PointBlock) -> usize {
    const LANES: usize = 64;
    let d = candidates.dim();
    let wlen = window.len();
    let padded = wlen.div_ceil(LANES) * LANES;
    let mut cols = vec![f64::INFINITY; padded * d];
    for (j, row) in window.coords().chunks_exact(d).enumerate() {
        for (k, &v) in row.iter().enumerate() {
            cols[k * padded + j] = v;
        }
    }
    let mut count = 0usize;
    for cand in candidates.coords().chunks_exact(d) {
        let mut dominated = false;
        let mut j0 = 0;
        while j0 < padded {
            let mut le_mask = !0u64;
            let mut lt_mask = 0u64;
            for (k, &ck) in cand.iter().enumerate() {
                let col = &cols[k * padded + j0..k * padded + j0 + LANES];
                let mut le = 0u64;
                let mut lt = 0u64;
                for (j, &w) in col.iter().enumerate() {
                    le |= u64::from(w <= ck) << j;
                    lt |= u64::from(w < ck) << j;
                }
                le_mask &= le;
                lt_mask |= lt;
            }
            if le_mask & lt_mask != 0 {
                dominated = true;
                break;
            }
            j0 += LANES;
        }
        count += usize::from(dominated);
    }
    count
}

/// Runtime-dispatched SIMD entry points. The workspace denies `unsafe`
/// by default; this module is the one sanctioned exception, and every
/// `unsafe` block here is a `#[target_feature]` call guarded by the
/// matching `is_x86_feature_detected!` check.
#[cfg(target_arch = "x86_64")]
mod simd {
    #![allow(unsafe_code)]

    use super::PointBlock;

    #[target_feature(enable = "avx512f,avx512bw,avx512dq,avx512vl")]
    fn lane_sweep_avx512(candidates: &PointBlock, window: &PointBlock) -> usize {
        super::lane_sweep(candidates, window)
    }

    /// Runs the lane sweep with AVX-512 codegen when the host supports it;
    /// `None` tells the caller to take the portable path.
    pub(super) fn try_lane_sweep(candidates: &PointBlock, window: &PointBlock) -> Option<usize> {
        let supported = std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512bw")
            && std::arch::is_x86_feature_detected!("avx512dq")
            && std::arch::is_x86_feature_detected!("avx512vl");
        if !supported {
            return None;
        }
        // SAFETY: every feature named in `lane_sweep_avx512`'s
        // `#[target_feature]` list was just verified at runtime.
        Some(unsafe { lane_sweep_avx512(candidates, window) })
    }
}

/// Self-organising BNL window in one flat buffer: coordinates, ids and
/// entry timestamps are parallel arrays, so a window scan walks one
/// contiguous `f64` run instead of chasing per-point boxes.
struct FlatWindow {
    dim: usize,
    coords: Vec<f64>,
    ids: Vec<u64>,
    entered: Vec<u64>,
}

impl FlatWindow {
    fn new(dim: usize) -> Self {
        Self {
            dim,
            coords: Vec::new(),
            ids: Vec::new(),
            entered: Vec::new(),
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.ids.len()
    }

    #[inline]
    fn row(&self, i: usize) -> &[f64] {
        &self.coords[i * self.dim..(i + 1) * self.dim]
    }

    #[inline]
    fn push(&mut self, id: u64, row: &[f64], ts: u64) {
        self.coords.extend_from_slice(row);
        self.ids.push(id);
        self.entered.push(ts);
    }

    /// Swaps rows `i` and `j` (the move-to-front self-organisation).
    fn swap(&mut self, i: usize, j: usize) {
        for k in 0..self.dim {
            self.coords.swap(i * self.dim + k, j * self.dim + k);
        }
        self.ids.swap(i, j);
        self.entered.swap(i, j);
    }

    /// Removes row `i` by moving the last row into its place (order is not
    /// preserved, exactly like `Vec::swap_remove` in the AoS BNL).
    fn swap_remove(&mut self, i: usize) {
        let last = self.len() - 1;
        if i != last {
            let (head, tail) = self.coords.split_at_mut(last * self.dim);
            head[i * self.dim..(i + 1) * self.dim].copy_from_slice(&tail[..self.dim]);
        }
        self.coords.truncate(last * self.dim);
        self.ids.swap_remove(i);
        self.entered.swap_remove(i);
    }
}

/// Computes the skyline of `block` with the blocked BNL kernel.
///
/// Same algorithm, configuration and result set as
/// [`crate::bnl::bnl_skyline`] — only the data layout differs.
pub fn block_bnl(block: &PointBlock, cfg: &BnlConfig) -> PointBlock {
    block_bnl_stats(block, cfg).0
}

/// Like [`block_bnl`] but also returns execution statistics.
pub fn block_bnl_stats(block: &PointBlock, cfg: &BnlConfig) -> (PointBlock, KernelStats) {
    let d = block.dim();
    let mut stats = KernelStats {
        input_len: block.len() as u64,
        ..KernelStats::default()
    };
    let mut skyline = PointBlock::with_capacity(d, 0);
    if block.is_empty() {
        return (skyline, stats);
    }

    let window_cap = cfg.window_size.unwrap_or(usize::MAX);
    let mut window = FlatWindow::new(d);
    let mut input = block.clone();
    let mut clock = block.len() as u64;

    while !input.is_empty() {
        stats.passes += 1;
        let mut overflow = PointBlock::with_capacity(d, 0);
        // Timestamp of the first point overflowed in this pass; window rows
        // that entered before it have met every remaining candidate.
        let mut first_overflow_ts: Option<u64> = None;

        for idx in 0..input.len() {
            let ts = clock;
            clock += 1;
            let mut dominated = false;
            let mut i = 0;
            while i < window.len() {
                stats.comparisons += 1;
                stats.dim_weighted += d as u64;
                match compare_rows(window.row(i), input.row(idx)) {
                    DomRelation::LeftDominates => {
                        dominated = true;
                        if cfg.move_to_front && i > 0 {
                            window.swap(0, i);
                        }
                        break;
                    }
                    DomRelation::RightDominates => {
                        window.swap_remove(i);
                        // re-examine the row swapped into position i
                    }
                    // Distinct points with equal rows are mutually
                    // non-dominating: both stay.
                    DomRelation::Equal | DomRelation::Incomparable => {
                        i += 1;
                    }
                }
            }
            if dominated {
                continue;
            }
            if window.len() < window_cap {
                window.push(input.id(idx), input.row(idx), ts);
            } else {
                if first_overflow_ts.is_none() {
                    first_overflow_ts = Some(ts);
                }
                stats.overflowed += 1;
                overflow.push_row_from(&input, idx);
            }
        }

        // Emit confirmed window rows; retain the rest for the next pass.
        match first_overflow_ts {
            None => {
                for i in 0..window.len() {
                    skyline.push_trusted(window.ids[i], window.row(i));
                }
                window = FlatWindow::new(d);
            }
            Some(cut) => {
                let mut retained = FlatWindow::new(d);
                for i in 0..window.len() {
                    if window.entered[i] < cut {
                        skyline.push_trusted(window.ids[i], window.row(i));
                    } else {
                        retained.push(window.ids[i], window.row(i), window.entered[i]);
                    }
                }
                window = retained;
            }
        }
        input = overflow;
    }
    for i in 0..window.len() {
        skyline.push_trusted(window.ids[i], window.row(i));
    }

    crate::invariants::check_skyline_block("block-bnl", block, &skyline);
    stats.output_len = skyline.len() as u64;
    record_kernel_metrics("bnl", &stats);
    (skyline, stats)
}

/// Computes the skyline of `block` with the presorting merge kernel.
pub fn presort_merge(block: &PointBlock) -> PointBlock {
    presort_merge_stats(block).0
}

/// SFS-style merge: sorts candidates by ascending L1 norm (ties broken by
/// id for determinism), then filters in one pass.
///
/// Why a single pass is enough: the L1 norm is strictly monotone under
/// dominance — if `p` dominates `q` then `p ≤ q` everywhere and `p < q`
/// somewhere, so `l1(p) < l1(q)`. After the ascending sort a candidate can
/// only be dominated by an *earlier* row, so a survivor is final the moment
/// it is accepted and equal-norm rows (including exact duplicates, which
/// never dominate each other) all survive. This is the kernel the reduce-
/// side merge and `parallel::merge_locals` use: merge inputs are unions of
/// local skylines, mostly undominated, so the `O(n log n)` sort buys a
/// filtering pass that does near-zero evictions.
pub fn presort_merge_stats(block: &PointBlock) -> (PointBlock, KernelStats) {
    let d = block.dim();
    let n = block.len();
    let mut stats = KernelStats {
        input_len: n as u64,
        ..KernelStats::default()
    };
    let mut skyline = PointBlock::with_capacity(d, 0);
    if n == 0 {
        return (skyline, stats);
    }
    stats.passes = 1;

    let scores: Vec<f64> = (0..n).map(|i| block.l1_norm(i)).collect();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        scores[a]
            .total_cmp(&scores[b])
            .then_with(|| block.id(a).cmp(&block.id(b)))
    });

    for &i in &order {
        let cand = block.row(i);
        let mut dominated = false;
        for srow in skyline.coords().chunks_exact(d) {
            stats.comparisons += 1;
            stats.dim_weighted += d as u64;
            if dominates_row(srow, cand) {
                dominated = true;
                break;
            }
        }
        if !dominated {
            skyline.push_trusted(block.id(i), cand);
        }
    }

    crate::invariants::check_skyline_block("presort-merge", block, &skyline);
    stats.output_len = skyline.len() as u64;
    record_kernel_metrics("merge", &stats);
    (skyline, stats)
}

/// Computes the skyline of `block` with the columnar SFS kernel.
pub fn block_sfs(block: &PointBlock) -> PointBlock {
    block_sfs_stats(block).0
}

/// Columnar Sort-Filter-Skyline (Chomicki et al., ICDE 2003): candidates
/// are presorted by ascending entropy score `Σ ln(1 + v_k)` (ties broken by
/// id), then filtered in one pass against the accepted skyline.
///
/// The entropy score is *strictly* monotone under dominance on non-negative
/// coordinates — if `p` dominates `q` then `score(p) < score(q)` — which
/// buys two structural guarantees over BNL:
///
/// * **no evictions, one pass**: a candidate can only be dominated by an
///   *earlier* (lower-score) row, so an accepted point is final immediately
///   and no overflow/multi-pass machinery is needed;
/// * **a stop-aware window scan**: the accepted skyline is itself in
///   ascending score order, so the inner scan terminates at the first
///   accepted row whose score is `>=` the candidate's — rows at or past
///   that bound can never dominate it. On correlated inputs this keeps the
///   effective window a small prefix regardless of skyline size.
///
/// Exact duplicates tie on score and never dominate each other, so all
/// survive, matching the other kernels bit-for-bit.
pub fn block_sfs_stats(block: &PointBlock) -> (PointBlock, KernelStats) {
    let d = block.dim();
    let n = block.len();
    let mut stats = KernelStats {
        input_len: n as u64,
        ..KernelStats::default()
    };
    let mut skyline = PointBlock::with_capacity(d, 0);
    if n == 0 {
        return (skyline, stats);
    }
    stats.passes = 1;

    let scores: Vec<f64> = (0..n).map(|i| block.entropy_score(i)).collect();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        scores[a]
            .total_cmp(&scores[b])
            .then_with(|| block.id(a).cmp(&block.id(b)))
    });

    // Scores of accepted rows, parallel to `skyline` and ascending — the
    // stop bound for the inner scan.
    let mut accepted_scores: Vec<f64> = Vec::new();
    for &i in &order {
        let cand = block.row(i);
        let score = scores[i];
        let mut dominated = false;
        for (srow, &sscore) in skyline.coords().chunks_exact(d).zip(&accepted_scores) {
            if sscore >= score {
                break;
            }
            stats.comparisons += 1;
            stats.dim_weighted += d as u64;
            if dominates_row(srow, cand) {
                dominated = true;
                break;
            }
        }
        if !dominated {
            skyline.push_trusted(block.id(i), cand);
            accepted_scores.push(score);
        }
    }

    crate::invariants::check_skyline_block("block-sfs", block, &skyline);
    stats.output_len = skyline.len() as u64;
    record_kernel_metrics("sfs", &stats);
    (skyline, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bnl::bnl_skyline;
    use crate::dominance::{compare, dominates};
    use crate::point::Point;
    use crate::seq::naive_skyline_ids;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_block(n: usize, d: usize, seed: u64, grid: u32) -> PointBlock {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = PointBlock::with_capacity(d, n);
        for i in 0..n {
            let row: Vec<f64> = (0..d).map(|_| f64::from(rng.gen_range(0..grid))).collect();
            b.push(i as u64, &row).unwrap();
        }
        b
    }

    fn sorted_ids(block: &PointBlock) -> Vec<u64> {
        let mut out = block.ids().to_vec();
        out.sort_unstable();
        out
    }

    #[test]
    fn row_comparisons_agree_with_aos() {
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..500 {
            let d = rng.gen_range(1..7);
            let a: Vec<f64> = (0..d).map(|_| f64::from(rng.gen_range(0..4))).collect();
            let b: Vec<f64> = (0..d).map(|_| f64::from(rng.gen_range(0..4))).collect();
            let pa = Point::new(0, a.clone());
            let pb = Point::new(1, b.clone());
            assert_eq!(dominates_row(&a, &b), dominates(&pa, &pb), "{a:?} vs {b:?}");
            assert_eq!(compare_rows(&a, &b), compare(&pa, &pb), "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn block_bnl_matches_aos_bnl() {
        for seed in 0..10 {
            let block = random_block(200, 3, seed, 8);
            let points = block.to_points();
            for cfg in [
                BnlConfig::unbounded(),
                BnlConfig::with_window(1),
                BnlConfig::with_window(7),
            ] {
                let (sky, stats) = block_bnl_stats(&block, &cfg);
                let aos: Vec<u64> = {
                    let mut v: Vec<u64> =
                        bnl_skyline(&points, &cfg).iter().map(Point::id).collect();
                    v.sort_unstable();
                    v
                };
                assert_eq!(sorted_ids(&sky), aos, "seed {seed} cfg {cfg:?}");
                assert_eq!(stats.output_len, sky.len() as u64);
                assert!(stats.comparisons > 0);
            }
        }
    }

    #[test]
    fn block_bnl_tiny_window_multi_pass() {
        // anti-correlated diagonal: everything survives, maximal overflow
        let mut b = PointBlock::with_capacity(2, 50);
        for i in 0..50u64 {
            b.push(i, &[i as f64, 49.0 - i as f64]).unwrap();
        }
        for w in [1usize, 2, 7] {
            let (sky, stats) = block_bnl_stats(&b, &BnlConfig::with_window(w));
            assert_eq!(sky.len(), 50, "window {w}");
            assert!(stats.passes >= 2, "window {w} must overflow");
            assert!(stats.overflowed > 0);
        }
    }

    #[test]
    fn block_bnl_empty_input() {
        let (sky, stats) = block_bnl_stats(&PointBlock::new(3), &BnlConfig::default());
        assert!(sky.is_empty());
        assert_eq!(stats.passes, 0);
    }

    #[test]
    fn presort_merge_matches_oracle() {
        for seed in 20..30 {
            let block = random_block(150, 4, seed, 6);
            let points = block.to_points();
            let (sky, stats) = presort_merge_stats(&block);
            assert_eq!(sorted_ids(&sky), naive_skyline_ids(&points), "seed {seed}");
            assert_eq!(stats.passes, 1);
            assert_eq!(stats.overflowed, 0);
        }
    }

    #[test]
    fn presort_merge_keeps_duplicates() {
        let mut b = PointBlock::new(2);
        b.push(0, &[1.0, 1.0]).unwrap();
        b.push(1, &[1.0, 1.0]).unwrap();
        b.push(2, &[2.0, 2.0]).unwrap();
        // ties in L1 that are incomparable must also both survive
        b.push(3, &[0.0, 2.0]).unwrap();
        let sky = presort_merge(&b);
        assert_eq!(sorted_ids(&sky), vec![0, 1, 3]);
    }

    #[test]
    fn presort_merge_output_is_l1_sorted() {
        let block = random_block(100, 3, 99, 10);
        let sky = presort_merge(&block);
        for i in 1..sky.len() {
            assert!(sky.l1_norm(i - 1) <= sky.l1_norm(i));
        }
    }

    #[test]
    fn presort_merge_empty() {
        let (sky, stats) = presort_merge_stats(&PointBlock::new(2));
        assert!(sky.is_empty());
        assert_eq!(stats.passes, 0);
    }

    #[test]
    fn block_sfs_matches_oracle() {
        for seed in 40..50 {
            let block = random_block(170, 4, seed, 6);
            let (sky, stats) = block_sfs_stats(&block);
            assert_eq!(
                sorted_ids(&sky),
                naive_skyline_ids(&block.to_points()),
                "seed {seed}"
            );
            assert_eq!(stats.passes, 1);
            assert_eq!(stats.overflowed, 0);
            assert_eq!(stats.skipped, 0, "SFS has no early-stop skip");
        }
    }

    #[test]
    fn block_sfs_keeps_duplicates_and_score_ties() {
        let mut b = PointBlock::new(2);
        b.push(0, &[1.0, 1.0]).unwrap();
        b.push(1, &[1.0, 1.0]).unwrap();
        b.push(2, &[2.0, 2.0]).unwrap();
        // entropy tie with row 0/1? No — but incomparable pair must survive
        b.push(3, &[0.0, 2.5]).unwrap();
        let sky = block_sfs(&b);
        assert_eq!(sorted_ids(&sky), vec![0, 1, 3]);
    }

    #[test]
    fn block_sfs_output_is_entropy_sorted() {
        let block = random_block(140, 3, 77, 9);
        let sky = block_sfs(&block);
        for i in 1..sky.len() {
            assert!(sky.entropy_score(i - 1) <= sky.entropy_score(i));
        }
    }

    #[test]
    fn block_sfs_stop_bound_cuts_comparisons_on_correlated_input() {
        // correlated diagonal: singleton skyline; every candidate compares
        // against exactly one accepted row
        let mut b = PointBlock::new(2);
        for i in 0..300u64 {
            b.push(i, &[i as f64, i as f64 + 0.5]).unwrap();
        }
        let (sky, stats) = block_sfs_stats(&b);
        assert_eq!(sky.len(), 1);
        assert!(stats.comparisons <= 299 * 2);
    }

    #[test]
    fn block_sfs_empty() {
        let (sky, stats) = block_sfs_stats(&PointBlock::new(4));
        assert!(sky.is_empty());
        assert_eq!(stats.passes, 0);
    }

    #[test]
    fn dominated_count_matches_aos_sweep() {
        let cands = random_block(300, 4, 5, 10);
        let window = random_block(40, 4, 6, 10);
        let expected = cands
            .to_points()
            .iter()
            .filter(|c| window.to_points().iter().any(|w| dominates(w, c)))
            .count();
        assert_eq!(dominated_count(&cands, &window), expected);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn dominated_count_rejects_mixed_dims() {
        let _ = dominated_count(&PointBlock::new(2), &PointBlock::new(3));
    }

    #[test]
    fn kernels_record_into_the_global_registry() {
        let m = mrsky_trace::metrics();
        m.set_enabled(true);
        let before = m.snapshot();
        let block = random_block(100, 3, 42, 8);
        let (_, stats) = block_bnl_stats(&block, &BnlConfig::default());
        let _ = dominated_count(&block, &block);
        let after = m.snapshot();
        m.set_enabled(false);
        // Other tests may record concurrently while the flag is up, so the
        // deltas are lower bounds.
        let delta = |name: &str| {
            after.counters.get(name).copied().unwrap_or(0)
                - before.counters.get(name).copied().unwrap_or(0)
        };
        assert!(delta("skyline.bnl.calls") >= 1);
        assert!(delta("skyline.bnl.comparisons") >= stats.comparisons);
        assert!(
            delta("skyline.sweep.dispatch.lane") + delta("skyline.sweep.dispatch.scalar") >= 1,
            "one dispatch path must be taken"
        );
        let hist = after
            .histograms
            .get("skyline.bnl.comparisons_per_call")
            .unwrap();
        assert!(hist.count() >= 1);
    }

    #[test]
    fn lane_sweep_agrees_with_scalar_sweep() {
        // Window sizes straddle the 64-lane padding boundary so the +inf
        // pad rows are exercised; equal rows check the strictness bit.
        for (seed, wlen) in [(1u64, 1usize), (2, 63), (3, 64), (4, 65), (5, 130)] {
            let cands = random_block(257, 5, seed, 4);
            let window = random_block(wlen, 5, seed.wrapping_add(100), 4);
            assert_eq!(
                lane_sweep(&cands, &window),
                scalar_sweep(&cands, &window),
                "wlen={wlen}"
            );
        }
        let dup = random_block(50, 3, 9, 2);
        assert_eq!(lane_sweep(&dup, &dup), scalar_sweep(&dup, &dup));
    }
}
