//! Incremental skyline maintenance under dynamic service churn.
//!
//! Section II of the paper motivates the partitioned design with dynamism:
//! *"Given a new service which is added into UDDI, traditional approach has
//! to compute the global skyline again. With the MapReduce approach, the new
//! service is first mapped into a group and added into the local skyline
//! computation"* — i.e. an insert touches one partition's local skyline plus
//! the (small) global merge, never the full dataset.
//!
//! [`IncrementalSkyline`] maintains exactly that state: per-partition point
//! stores, per-partition local skylines, and the global skyline, with
//! instrumented comparison counts so examples and benches can demonstrate
//! the savings versus recomputation from scratch.

use crate::bnl::{bnl_skyline_stats, BnlConfig};
use crate::dominance::{DomCounter, DomRelation};
use crate::partition::SpacePartitioner;
use crate::point::Point;

/// A dynamically maintained, partitioned skyline.
pub struct IncrementalSkyline<P: SpacePartitioner> {
    partitioner: P,
    /// All points, bucketed by partition (the "UDDI registry" contents).
    partitions: Vec<Vec<Point>>,
    /// Local skyline of each partition.
    local_skylines: Vec<Vec<Point>>,
    /// Global skyline (skyline of the union of local skylines).
    global: Vec<Point>,
    counter: DomCounter,
    len: usize,
}

impl<P: SpacePartitioner> IncrementalSkyline<P> {
    /// Creates an empty maintained skyline over `partitioner`'s space.
    pub fn new(partitioner: P) -> Self {
        let n = partitioner.num_partitions();
        Self {
            partitioner,
            partitions: vec![Vec::new(); n],
            local_skylines: vec![Vec::new(); n],
            global: Vec::new(),
            counter: DomCounter::new(),
            len: 0,
        }
    }

    /// Bulk-loads `points` (batch BNL per partition, then a global merge).
    pub fn from_points(partitioner: P, points: &[Point]) -> Self {
        let mut s = Self::new(partitioner);
        for p in points {
            s.partitions[s.partitioner.partition_of(p)].push(p.clone());
        }
        s.len = points.len();
        let cfg = BnlConfig::default();
        for i in 0..s.partitions.len() {
            let (sky, stats) = bnl_skyline_stats(&s.partitions[i], &cfg);
            s.counter.merge(&stats.counter);
            s.local_skylines[i] = sky;
        }
        s.rebuild_global();
        s
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no points are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The current global skyline.
    pub fn global_skyline(&self) -> &[Point] {
        &self.global
    }

    /// The current local skylines, one per partition.
    pub fn local_skylines(&self) -> &[Vec<Point>] {
        &self.local_skylines
    }

    /// Total dominance comparisons spent on maintenance so far.
    pub fn comparisons(&self) -> u64 {
        self.counter.comparisons()
    }

    /// Inserts a service. Returns `true` iff the global skyline changed.
    ///
    /// Cost: `O(|local skyline| + |global skyline|)` comparisons — the
    /// paper's "we only need to compare the new service with the services in
    /// a subdivided group".
    pub fn insert(&mut self, p: Point) -> bool {
        let part = self.partitioner.partition_of(&p);
        self.partitions[part].push(p.clone());
        self.len += 1;

        // Update the local skyline: p only needs to meet current local
        // skyline members (transitivity covers dominated non-members).
        let local = &mut self.local_skylines[part];
        let mut i = 0;
        while i < local.len() {
            match self.counter.compare(&local[i], &p) {
                DomRelation::LeftDominates => return false, // locally dominated
                DomRelation::RightDominates => {
                    local.swap_remove(i);
                }
                DomRelation::Equal | DomRelation::Incomparable => i += 1,
            }
        }
        local.push(p.clone());

        // Update the global skyline. Evicted local members need no explicit
        // global removal scan of their own: anything p evicted locally is
        // dominated by p, and p is about to sweep the global set too.
        let mut changed = false;
        let mut i = 0;
        let mut dominated_globally = false;
        while i < self.global.len() {
            match self.counter.compare(&self.global[i], &p) {
                DomRelation::LeftDominates => {
                    dominated_globally = true;
                    break;
                }
                DomRelation::RightDominates => {
                    self.global.swap_remove(i);
                    changed = true;
                }
                DomRelation::Equal | DomRelation::Incomparable => i += 1,
            }
        }
        if !dominated_globally {
            self.global.push(p);
            changed = true;
        }
        changed
    }

    /// Removes the service with identifier `id`. Returns `true` iff a point
    /// was removed. Removal of a local-skyline member triggers recomputation
    /// of that partition's local skyline and a rebuild of the global merge;
    /// removal of a dominated point is O(partition scan) with no skyline
    /// work.
    pub fn remove(&mut self, id: u64) -> bool {
        for part in 0..self.partitions.len() {
            if let Some(pos) = self.partitions[part].iter().position(|p| p.id() == id) {
                self.partitions[part].swap_remove(pos);
                self.len -= 1;
                let was_local = self.local_skylines[part].iter().any(|p| p.id() == id);
                if was_local {
                    let (sky, stats) =
                        bnl_skyline_stats(&self.partitions[part], &BnlConfig::default());
                    self.counter.merge(&stats.counter);
                    self.local_skylines[part] = sky;
                    self.rebuild_global();
                }
                return true;
            }
        }
        false
    }

    fn rebuild_global(&mut self) {
        let union: Vec<Point> = self
            .local_skylines
            .iter()
            .flat_map(|s| s.iter().cloned())
            .collect();
        let (global, stats) = bnl_skyline_stats(&union, &BnlConfig::default());
        self.counter.merge(&stats.counter);
        self.global = global;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{AnglePartitioner, Bounds};
    use crate::seq::naive_skyline_ids;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn ids(sky: &[Point]) -> Vec<u64> {
        let mut v: Vec<u64> = sky.iter().map(Point::id).collect();
        v.sort_unstable();
        v
    }

    fn partitioner() -> AnglePartitioner {
        AnglePartitioner::fit(&Bounds::zero_to(10.0, 2), 4).unwrap()
    }

    #[test]
    fn insert_matches_batch_oracle() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut inc = IncrementalSkyline::new(partitioner());
        let mut all = Vec::new();
        for i in 0..400u64 {
            let p = Point::new(i, vec![rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)]);
            all.push(p.clone());
            inc.insert(p);
            if i % 50 == 49 {
                assert_eq!(
                    ids(inc.global_skyline()),
                    naive_skyline_ids(&all),
                    "after {i}"
                );
            }
        }
        assert_eq!(inc.len(), 400);
    }

    #[test]
    fn bulk_load_matches_insert_by_insert() {
        let mut rng = StdRng::seed_from_u64(18);
        let points: Vec<Point> = (0..200)
            .map(|i| Point::new(i, vec![rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)]))
            .collect();
        let bulk = IncrementalSkyline::from_points(partitioner(), &points);
        let mut one_by_one = IncrementalSkyline::new(partitioner());
        for p in &points {
            one_by_one.insert(p.clone());
        }
        assert_eq!(ids(bulk.global_skyline()), ids(one_by_one.global_skyline()));
        assert_eq!(bulk.len(), one_by_one.len());
    }

    #[test]
    fn insert_reports_global_change() {
        let mut inc = IncrementalSkyline::new(partitioner());
        assert!(
            inc.insert(Point::new(0, vec![5.0, 5.0])),
            "first point joins"
        );
        assert!(
            !inc.insert(Point::new(1, vec![6.0, 6.0])),
            "dominated point changes nothing"
        );
        assert!(
            inc.insert(Point::new(2, vec![1.0, 1.0])),
            "dominating point evicts"
        );
        assert_eq!(ids(inc.global_skyline()), vec![2]);
    }

    #[test]
    fn dominated_insert_is_cheap() {
        let mut inc = IncrementalSkyline::new(partitioner());
        for i in 0..100u64 {
            // a tight cluster near the origin in one sector
            inc.insert(Point::new(i, vec![1.0 + (i as f64) * 1e-3, 0.1]));
        }
        let before = inc.comparisons();
        // deep in the dominated region of the same sector
        inc.insert(Point::new(1000, vec![9.0, 0.5]));
        let spent = inc.comparisons() - before;
        assert!(
            spent <= (inc.local_skylines().iter().map(Vec::len).sum::<usize>() as u64) + 2,
            "dominated insert cost {spent} should be bounded by local skyline size"
        );
    }

    #[test]
    fn remove_non_skyline_point_keeps_global() {
        let mut inc = IncrementalSkyline::new(partitioner());
        inc.insert(Point::new(0, vec![1.0, 1.0]));
        inc.insert(Point::new(1, vec![5.0, 5.0])); // dominated
        let before = ids(inc.global_skyline());
        assert!(inc.remove(1));
        assert_eq!(ids(inc.global_skyline()), before);
        assert_eq!(inc.len(), 1);
    }

    #[test]
    fn remove_skyline_point_promotes_successor() {
        let mut inc = IncrementalSkyline::new(partitioner());
        inc.insert(Point::new(0, vec![1.0, 1.0]));
        inc.insert(Point::new(1, vec![2.0, 2.0])); // shadowed by 0
        assert_eq!(ids(inc.global_skyline()), vec![0]);
        assert!(inc.remove(0));
        assert_eq!(ids(inc.global_skyline()), vec![1]);
    }

    #[test]
    fn remove_missing_id_is_noop() {
        let mut inc = IncrementalSkyline::new(partitioner());
        inc.insert(Point::new(0, vec![1.0, 1.0]));
        assert!(!inc.remove(99));
        assert_eq!(inc.len(), 1);
    }

    #[test]
    fn churn_stays_consistent_with_oracle() {
        let mut rng = StdRng::seed_from_u64(19);
        let mut inc = IncrementalSkyline::new(partitioner());
        let mut live: Vec<Point> = Vec::new();
        let mut next_id = 0u64;
        for step in 0..300 {
            if live.is_empty() || rng.gen_bool(0.7) {
                let p = Point::new(
                    next_id,
                    vec![rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)],
                );
                next_id += 1;
                live.push(p.clone());
                inc.insert(p);
            } else {
                let k = rng.gen_range(0..live.len());
                let victim = live.swap_remove(k);
                assert!(inc.remove(victim.id()));
            }
            if step % 37 == 0 {
                assert_eq!(ids(inc.global_skyline()), naive_skyline_ids(&live));
            }
        }
        assert_eq!(inc.len(), live.len());
        assert_eq!(ids(inc.global_skyline()), naive_skyline_ids(&live));
    }
}
