//! Incremental skyline maintenance under dynamic service churn.
//!
//! Section II of the paper motivates the partitioned design with dynamism:
//! *"Given a new service which is added into UDDI, traditional approach has
//! to compute the global skyline again. With the MapReduce approach, the new
//! service is first mapped into a group and added into the local skyline
//! computation"* — i.e. an insert touches one partition's local skyline plus
//! the (small) global merge, never the full dataset.
//!
//! [`IncrementalSkyline`] maintains exactly that state: per-partition point
//! stores, per-partition local skylines, and the global skyline, with
//! instrumented comparison counts so examples and benches can demonstrate
//! the savings versus recomputation from scratch.

use crate::block::PointBlock;
use crate::bnl::{bnl_skyline_stats, BnlConfig};
use crate::dominance::{DomCounter, DomRelation};
use crate::kernel::compare_rows;
use crate::partition::SpacePartitioner;
use crate::point::Point;
use std::collections::HashSet;

/// A barrier-free global merge: local-skyline blocks are absorbed as their
/// reduce tasks complete, maintaining the running skyline incrementally
/// instead of collecting everything and running one final BNL.
///
/// Absorption is **idempotent per id** — a `seen` set drops rows whose id
/// was already absorbed — so retried or speculatively duplicated reduce
/// outputs (the `mrsky-chaos` failure modes) cannot corrupt the result, and
/// the final skyline is independent of completion order (the skyline of a
/// union is order-insensitive).
pub struct StreamingMerge {
    dim: usize,
    sky: PointBlock,
    seen: HashSet<u64>,
    absorbed: u64,
    comparisons: u64,
}

impl StreamingMerge {
    /// An empty merge over `dim`-dimensional rows.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        Self {
            dim,
            sky: PointBlock::new(dim),
            seen: HashSet::new(),
            absorbed: 0,
            comparisons: 0,
        }
    }

    /// Absorbs one local-skyline block, updating the running global skyline.
    /// Rows with an already-seen id are skipped (retry/speculation dedup).
    /// Returns the number of *new* rows absorbed.
    ///
    /// # Panics
    ///
    /// Panics if `block` has a different dimensionality (unless empty).
    pub fn absorb_block(&mut self, block: &PointBlock) -> usize {
        let mut fresh = 0usize;
        for idx in 0..block.len() {
            if !self.seen.insert(block.id(idx)) {
                continue;
            }
            fresh += 1;
            self.absorbed += 1;
            self.insert_row(block, idx);
        }
        fresh
    }

    fn insert_row(&mut self, block: &PointBlock, idx: usize) {
        let row = block.row(idx);
        debug_assert_eq!(row.len(), self.dim);
        // One sweep decides the row's fate. An incumbent dominating `row`
        // and another dominated by it cannot coexist (the running skyline is
        // mutually non-dominating), so returning early on the first
        // dominator never forgets a pending eviction.
        let mut evicted: Vec<usize> = Vec::new();
        for i in 0..self.sky.len() {
            self.comparisons += 1;
            match compare_rows(self.sky.row(i), row) {
                DomRelation::LeftDominates => return,
                DomRelation::RightDominates => evicted.push(i),
                DomRelation::Equal | DomRelation::Incomparable => {}
            }
        }
        if !evicted.is_empty() {
            let mut survivors = PointBlock::with_capacity(self.dim, self.sky.len());
            let mut next_evicted = 0usize;
            for i in 0..self.sky.len() {
                if next_evicted < evicted.len() && evicted[next_evicted] == i {
                    next_evicted += 1;
                    continue;
                }
                survivors.push_row_from(&self.sky, i);
            }
            self.sky = survivors;
        }
        self.sky.push_row_from(block, idx);
    }

    /// The running global skyline, in absorption order.
    pub fn skyline(&self) -> &PointBlock {
        &self.sky
    }

    /// Consumes the merge and returns the skyline block.
    pub fn into_skyline(self) -> PointBlock {
        self.sky
    }

    /// Total distinct rows absorbed so far (the merge's candidate volume).
    pub fn absorbed(&self) -> u64 {
        self.absorbed
    }

    /// Dominance comparisons spent so far.
    pub fn comparisons(&self) -> u64 {
        self.comparisons
    }
}

/// A [`StreamingMerge`] shareable across reduce workers: the merge
/// state sits behind the `mrsky-model` sync facade's mutex, so the
/// absorb path is model-checked under `--cfg mrsky_model`
/// (`tests/model.rs`) — racing absorbers must converge to the same
/// skyline with each id credited exactly once.
///
/// Each [`absorb_block`](SharedStreamingMerge::absorb_block) holds the
/// lock for the whole block, so the seen-check and the skyline update
/// are atomic together — the linearization point the exactness
/// argument needs.
pub struct SharedStreamingMerge {
    inner: mrsky_model::sync::Mutex<StreamingMerge>,
}

impl SharedStreamingMerge {
    /// Wraps a merge for shared use.
    pub fn new(merge: StreamingMerge) -> Self {
        Self {
            inner: mrsky_model::sync::Mutex::new(merge),
        }
    }

    /// Absorbs one local-skyline block (see [`StreamingMerge::absorb_block`]).
    pub fn absorb_block(&self, block: &PointBlock) -> usize {
        self.inner.lock().absorb_block(block)
    }

    /// Total distinct rows absorbed so far.
    pub fn absorbed(&self) -> u64 {
        self.inner.lock().absorbed()
    }

    /// Dominance comparisons spent so far.
    pub fn comparisons(&self) -> u64 {
        self.inner.lock().comparisons()
    }

    /// A clone of the current running skyline.
    pub fn skyline_snapshot(&self) -> PointBlock {
        self.inner.lock().skyline().clone()
    }

    /// Consumes the wrapper and returns the final skyline block.
    pub fn into_skyline(self) -> PointBlock {
        self.inner.into_inner().into_skyline()
    }
}

/// A dynamically maintained, partitioned skyline.
pub struct IncrementalSkyline<P: SpacePartitioner> {
    partitioner: P,
    /// All points, bucketed by partition (the "UDDI registry" contents).
    partitions: Vec<Vec<Point>>,
    /// Local skyline of each partition.
    local_skylines: Vec<Vec<Point>>,
    /// Global skyline (skyline of the union of local skylines).
    global: Vec<Point>,
    counter: DomCounter,
    len: usize,
}

impl<P: SpacePartitioner> IncrementalSkyline<P> {
    /// Creates an empty maintained skyline over `partitioner`'s space.
    pub fn new(partitioner: P) -> Self {
        let n = partitioner.num_partitions();
        Self {
            partitioner,
            partitions: vec![Vec::new(); n],
            local_skylines: vec![Vec::new(); n],
            global: Vec::new(),
            counter: DomCounter::new(),
            len: 0,
        }
    }

    /// Bulk-loads `points` (batch BNL per partition, then a global merge).
    pub fn from_points(partitioner: P, points: &[Point]) -> Self {
        let mut s = Self::new(partitioner);
        for p in points {
            s.partitions[s.partitioner.partition_of(p)].push(p.clone());
        }
        s.len = points.len();
        let cfg = BnlConfig::default();
        for i in 0..s.partitions.len() {
            let (sky, stats) = bnl_skyline_stats(&s.partitions[i], &cfg);
            s.counter.merge(&stats.counter);
            s.local_skylines[i] = sky;
        }
        s.rebuild_global();
        s
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no points are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The current global skyline.
    pub fn global_skyline(&self) -> &[Point] {
        &self.global
    }

    /// The current local skylines, one per partition.
    pub fn local_skylines(&self) -> &[Vec<Point>] {
        &self.local_skylines
    }

    /// Total dominance comparisons spent on maintenance so far.
    pub fn comparisons(&self) -> u64 {
        self.counter.comparisons()
    }

    /// Inserts a service. Returns `true` iff the global skyline changed.
    ///
    /// Cost: `O(|local skyline| + |global skyline|)` comparisons — the
    /// paper's "we only need to compare the new service with the services in
    /// a subdivided group".
    pub fn insert(&mut self, p: Point) -> bool {
        let part = self.partitioner.partition_of(&p);
        self.partitions[part].push(p.clone());
        self.len += 1;

        // Update the local skyline: p only needs to meet current local
        // skyline members (transitivity covers dominated non-members).
        let local = &mut self.local_skylines[part];
        let mut i = 0;
        while i < local.len() {
            match self.counter.compare(&local[i], &p) {
                DomRelation::LeftDominates => return false, // locally dominated
                DomRelation::RightDominates => {
                    local.swap_remove(i);
                }
                DomRelation::Equal | DomRelation::Incomparable => i += 1,
            }
        }
        local.push(p.clone());

        // Update the global skyline. Evicted local members need no explicit
        // global removal scan of their own: anything p evicted locally is
        // dominated by p, and p is about to sweep the global set too.
        let mut changed = false;
        let mut i = 0;
        let mut dominated_globally = false;
        while i < self.global.len() {
            match self.counter.compare(&self.global[i], &p) {
                DomRelation::LeftDominates => {
                    dominated_globally = true;
                    break;
                }
                DomRelation::RightDominates => {
                    self.global.swap_remove(i);
                    changed = true;
                }
                DomRelation::Equal | DomRelation::Incomparable => i += 1,
            }
        }
        if !dominated_globally {
            self.global.push(p);
            changed = true;
        }
        changed
    }

    /// Removes the service with identifier `id`. Returns `true` iff a point
    /// was removed. Removal of a local-skyline member triggers recomputation
    /// of that partition's local skyline and a rebuild of the global merge;
    /// removal of a dominated point is O(partition scan) with no skyline
    /// work.
    pub fn remove(&mut self, id: u64) -> bool {
        for part in 0..self.partitions.len() {
            if let Some(pos) = self.partitions[part].iter().position(|p| p.id() == id) {
                self.partitions[part].swap_remove(pos);
                self.len -= 1;
                let was_local = self.local_skylines[part].iter().any(|p| p.id() == id);
                if was_local {
                    let (sky, stats) =
                        bnl_skyline_stats(&self.partitions[part], &BnlConfig::default());
                    self.counter.merge(&stats.counter);
                    self.local_skylines[part] = sky;
                    self.rebuild_global();
                }
                return true;
            }
        }
        false
    }

    fn rebuild_global(&mut self) {
        let union: Vec<Point> = self
            .local_skylines
            .iter()
            .flat_map(|s| s.iter().cloned())
            .collect();
        let (global, stats) = bnl_skyline_stats(&union, &BnlConfig::default());
        self.counter.merge(&stats.counter);
        self.global = global;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{AnglePartitioner, Bounds};
    use crate::seq::naive_skyline_ids;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn ids(sky: &[Point]) -> Vec<u64> {
        let mut v: Vec<u64> = sky.iter().map(Point::id).collect();
        v.sort_unstable();
        v
    }

    fn partitioner() -> AnglePartitioner {
        AnglePartitioner::fit(&Bounds::zero_to(10.0, 2), 4).unwrap()
    }

    #[test]
    fn insert_matches_batch_oracle() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut inc = IncrementalSkyline::new(partitioner());
        let mut all = Vec::new();
        for i in 0..400u64 {
            let p = Point::new(i, vec![rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)]);
            all.push(p.clone());
            inc.insert(p);
            if i % 50 == 49 {
                assert_eq!(
                    ids(inc.global_skyline()),
                    naive_skyline_ids(&all),
                    "after {i}"
                );
            }
        }
        assert_eq!(inc.len(), 400);
    }

    #[test]
    fn bulk_load_matches_insert_by_insert() {
        let mut rng = StdRng::seed_from_u64(18);
        let points: Vec<Point> = (0..200)
            .map(|i| Point::new(i, vec![rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)]))
            .collect();
        let bulk = IncrementalSkyline::from_points(partitioner(), &points);
        let mut one_by_one = IncrementalSkyline::new(partitioner());
        for p in &points {
            one_by_one.insert(p.clone());
        }
        assert_eq!(ids(bulk.global_skyline()), ids(one_by_one.global_skyline()));
        assert_eq!(bulk.len(), one_by_one.len());
    }

    #[test]
    fn insert_reports_global_change() {
        let mut inc = IncrementalSkyline::new(partitioner());
        assert!(
            inc.insert(Point::new(0, vec![5.0, 5.0])),
            "first point joins"
        );
        assert!(
            !inc.insert(Point::new(1, vec![6.0, 6.0])),
            "dominated point changes nothing"
        );
        assert!(
            inc.insert(Point::new(2, vec![1.0, 1.0])),
            "dominating point evicts"
        );
        assert_eq!(ids(inc.global_skyline()), vec![2]);
    }

    #[test]
    fn dominated_insert_is_cheap() {
        let mut inc = IncrementalSkyline::new(partitioner());
        for i in 0..100u64 {
            // a tight cluster near the origin in one sector
            inc.insert(Point::new(i, vec![1.0 + (i as f64) * 1e-3, 0.1]));
        }
        let before = inc.comparisons();
        // deep in the dominated region of the same sector
        inc.insert(Point::new(1000, vec![9.0, 0.5]));
        let spent = inc.comparisons() - before;
        assert!(
            spent <= (inc.local_skylines().iter().map(Vec::len).sum::<usize>() as u64) + 2,
            "dominated insert cost {spent} should be bounded by local skyline size"
        );
    }

    #[test]
    fn remove_non_skyline_point_keeps_global() {
        let mut inc = IncrementalSkyline::new(partitioner());
        inc.insert(Point::new(0, vec![1.0, 1.0]));
        inc.insert(Point::new(1, vec![5.0, 5.0])); // dominated
        let before = ids(inc.global_skyline());
        assert!(inc.remove(1));
        assert_eq!(ids(inc.global_skyline()), before);
        assert_eq!(inc.len(), 1);
    }

    #[test]
    fn remove_skyline_point_promotes_successor() {
        let mut inc = IncrementalSkyline::new(partitioner());
        inc.insert(Point::new(0, vec![1.0, 1.0]));
        inc.insert(Point::new(1, vec![2.0, 2.0])); // shadowed by 0
        assert_eq!(ids(inc.global_skyline()), vec![0]);
        assert!(inc.remove(0));
        assert_eq!(ids(inc.global_skyline()), vec![1]);
    }

    #[test]
    fn remove_missing_id_is_noop() {
        let mut inc = IncrementalSkyline::new(partitioner());
        inc.insert(Point::new(0, vec![1.0, 1.0]));
        assert!(!inc.remove(99));
        assert_eq!(inc.len(), 1);
    }

    #[test]
    fn streaming_merge_matches_batch_oracle_in_any_order() {
        let mut rng = StdRng::seed_from_u64(23);
        let points: Vec<Point> = (0..600)
            .map(|i| {
                Point::new(
                    i,
                    vec![
                        rng.gen_range(0.0..10.0),
                        rng.gen_range(0.0..10.0),
                        rng.gen_range(0.0..10.0),
                    ],
                )
            })
            .collect();
        let oracle = naive_skyline_ids(&points);
        // split into blocks and absorb in two different orders
        let all = PointBlock::from_points(&points).unwrap();
        let chunks = all.chunks(64);
        for reversed in [false, true] {
            let mut merge = StreamingMerge::new(3);
            let order: Vec<&PointBlock> = if reversed {
                chunks.iter().rev().collect()
            } else {
                chunks.iter().collect()
            };
            for c in order {
                merge.absorb_block(c);
            }
            let mut got: Vec<u64> = merge.skyline().ids().to_vec();
            got.sort_unstable();
            assert_eq!(got, oracle, "reversed={reversed}");
            assert_eq!(merge.absorbed(), 600);
        }
    }

    #[test]
    fn streaming_merge_dedups_replayed_blocks() {
        let points = vec![
            Point::new(0, vec![1.0, 4.0]),
            Point::new(1, vec![2.0, 2.0]),
            Point::new(2, vec![4.0, 1.0]),
            Point::new(3, vec![3.0, 3.0]),
        ];
        let block = PointBlock::from_points(&points).unwrap();
        let mut merge = StreamingMerge::new(2);
        assert_eq!(merge.absorb_block(&block), 4);
        // a chaos retry re-delivers the same output: nothing new absorbed
        assert_eq!(merge.absorb_block(&block), 0);
        assert_eq!(merge.absorbed(), 4);
        let mut got: Vec<u64> = merge.into_skyline().ids().to_vec();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2]);
    }

    #[test]
    fn streaming_merge_keeps_equal_rows_with_distinct_ids() {
        // matches BNL semantics: coordinate ties never dominate
        let points = vec![Point::new(0, vec![1.0, 1.0]), Point::new(1, vec![1.0, 1.0])];
        let block = PointBlock::from_points(&points).unwrap();
        let mut merge = StreamingMerge::new(2);
        merge.absorb_block(&block);
        assert_eq!(merge.skyline().len(), 2);
    }

    #[test]
    fn streaming_merge_counts_comparisons() {
        let points = vec![
            Point::new(0, vec![1.0, 4.0]),
            Point::new(1, vec![2.0, 2.0]),
            Point::new(2, vec![0.5, 5.0]), // evicts nothing, joins
        ];
        let block = PointBlock::from_points(&points).unwrap();
        let mut merge = StreamingMerge::new(2);
        merge.absorb_block(&block);
        assert!(merge.comparisons() > 0);
    }

    #[test]
    fn churn_stays_consistent_with_oracle() {
        let mut rng = StdRng::seed_from_u64(19);
        let mut inc = IncrementalSkyline::new(partitioner());
        let mut live: Vec<Point> = Vec::new();
        let mut next_id = 0u64;
        for step in 0..300 {
            if live.is_empty() || rng.gen_bool(0.7) {
                let p = Point::new(
                    next_id,
                    vec![rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)],
                );
                next_id += 1;
                live.push(p.clone());
                inc.insert(p);
            } else {
                let k = rng.gen_range(0..live.len());
                let victim = live.swap_remove(k);
                assert!(inc.remove(victim.id()));
            }
            if step % 37 == 0 {
                assert_eq!(ids(inc.global_skyline()), naive_skyline_ids(&live));
            }
        }
        assert_eq!(inc.len(), live.len());
        assert_eq!(ids(inc.global_skyline()), naive_skyline_ids(&live));
    }
}
