//! Shared-memory parallel skyline — the multi-core analogue of the paper's
//! cluster pipeline.
//!
//! The same partition → local skyline → merge structure that the paper runs
//! on Hadoop works on one machine with threads: split the input into chunks
//! (optionally by a geometric [`SpacePartitioner`] instead of blindly), have
//! each thread compute its chunk's skyline with BNL, then merge the local
//! skylines. Crossbeam scoped threads keep it allocation-light and
//! borrow-checked — no `Arc` cloning of the input.
//!
//! Two chunking strategies are exposed because they reproduce, in
//! microcosm, the paper's whole point:
//!
//! * [`parallel_skyline`] — block chunking (thread `t` takes the `t`-th
//!   slice): balanced, but every local skyline is a random sample's skyline,
//!   so the merge sees many globally dominated candidates;
//! * [`parallel_skyline_partitioned`] — chunk by a geometric partitioner
//!   (e.g. [`AnglePartitioner`](crate::partition::AnglePartitioner)): local
//!   winners are likelier global winners and the merge input shrinks.

use crate::bnl::{bnl_skyline_stats, BnlConfig};
use crate::dominance::DomCounter;
use crate::partition::SpacePartitioner;
use crate::point::Point;
use parking_lot::Mutex;

/// Statistics of a parallel skyline run.
#[derive(Debug, Default, Clone)]
pub struct ParallelStats {
    /// Threads actually used.
    pub threads: usize,
    /// Total dominance comparisons across local passes.
    pub local_comparisons: u64,
    /// Candidates entering the merge.
    pub merge_candidates: u64,
    /// Comparisons spent in the merge pass.
    pub merge_comparisons: u64,
}

fn merge_locals(locals: Vec<Vec<Point>>, stats: &mut ParallelStats) -> Vec<Point> {
    let mut candidates: Vec<Point> = locals.into_iter().flatten().collect();
    candidates.sort_by_key(Point::id);
    stats.merge_candidates = candidates.len() as u64;
    let (sky, merge_stats) = bnl_skyline_stats(&candidates, &BnlConfig::default());
    stats.merge_comparisons = merge_stats.counter.comparisons();
    sky
}

type ChunkResult = Mutex<Option<(Vec<Point>, DomCounter)>>;

fn run_chunks(chunks: Vec<Vec<Point>>, threads: usize) -> (Vec<Vec<Point>>, DomCounter) {
    let results: Vec<ChunkResult> = chunks.iter().map(|_| Mutex::new(None)).collect();
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    crossbeam::scope(|scope| {
        for _ in 0..threads.min(chunks.len()).max(1) {
            scope.spawn(|_| loop {
                let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= chunks.len() {
                    break;
                }
                let (sky, stats) = bnl_skyline_stats(&chunks[i], &BnlConfig::default());
                *results[i].lock() = Some((sky, stats.counter));
            });
        }
    })
    .expect("skyline worker panicked");
    let mut counter = DomCounter::new();
    let locals = results
        .into_iter()
        .map(|m| {
            let (sky, c) = m.into_inner().expect("every chunk processed");
            counter.merge(&c);
            sky
        })
        .collect();
    (locals, counter)
}

/// Computes the skyline of `points` on `threads` threads with block
/// chunking. `threads = 0` uses the host's available parallelism.
///
/// # Examples
///
/// ```
/// use skyline_algos::parallel::parallel_skyline;
/// use skyline_algos::point::Point;
///
/// let pts: Vec<Point> = (0..1000)
///     .map(|i| Point::new(i, vec![(i % 37) as f64, (i % 11) as f64]))
///     .collect();
/// let sky = parallel_skyline(&pts, 4);
/// assert!(!sky.is_empty());
/// ```
pub fn parallel_skyline(points: &[Point], threads: usize) -> Vec<Point> {
    parallel_skyline_stats(points, threads).0
}

/// Like [`parallel_skyline`] but returns statistics.
pub fn parallel_skyline_stats(points: &[Point], threads: usize) -> (Vec<Point>, ParallelStats) {
    let threads = effective_threads(threads);
    let mut stats = ParallelStats {
        threads,
        ..ParallelStats::default()
    };
    if points.is_empty() {
        return (Vec::new(), stats);
    }
    let chunk_size = points.len().div_ceil(threads);
    let chunks: Vec<Vec<Point>> = points.chunks(chunk_size).map(<[Point]>::to_vec).collect();
    let (locals, counter) = run_chunks(chunks, threads);
    stats.local_comparisons = counter.comparisons();
    let sky = merge_locals(locals, &mut stats);
    crate::invariants::check_skyline("parallel", points, &sky);
    (sky, stats)
}

/// Computes the skyline with chunks defined by `partitioner` (one chunk per
/// partition), processed on `threads` threads.
pub fn parallel_skyline_partitioned(
    points: &[Point],
    partitioner: &dyn SpacePartitioner,
    threads: usize,
) -> (Vec<Point>, ParallelStats) {
    let threads = effective_threads(threads);
    let mut stats = ParallelStats {
        threads,
        ..ParallelStats::default()
    };
    if points.is_empty() {
        return (Vec::new(), stats);
    }
    let mut chunks: Vec<Vec<Point>> = vec![Vec::new(); partitioner.num_partitions()];
    for p in points {
        chunks[partitioner.partition_of(p)].push(p.clone());
    }
    chunks.retain(|c| !c.is_empty());
    let (locals, counter) = run_chunks(chunks, threads);
    stats.local_comparisons = counter.comparisons();
    let sky = merge_locals(locals, &mut stats);
    crate::invariants::check_skyline("parallel-partitioned", points, &sky);
    (sky, stats)
}

fn effective_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4)
    } else {
        threads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::AnglePartitioner;
    use crate::seq::naive_skyline_ids;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_points(n: usize, d: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                Point::new(
                    i as u64,
                    (0..d).map(|_| rng.gen_range(0.0..8.0)).collect::<Vec<_>>(),
                )
            })
            .collect()
    }

    fn ids(v: &[Point]) -> Vec<u64> {
        let mut out: Vec<u64> = v.iter().map(Point::id).collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn empty_and_single() {
        assert!(parallel_skyline(&[], 4).is_empty());
        let one = vec![Point::new(0, vec![1.0])];
        assert_eq!(ids(&parallel_skyline(&one, 4)), vec![0]);
    }

    #[test]
    fn matches_oracle_across_thread_counts() {
        let pts = random_points(700, 3, 71);
        let oracle = naive_skyline_ids(&pts);
        for threads in [1usize, 2, 4, 16] {
            assert_eq!(
                ids(&parallel_skyline(&pts, threads)),
                oracle,
                "{threads} threads"
            );
        }
    }

    #[test]
    fn partitioned_variant_matches_oracle() {
        let pts = random_points(700, 3, 72);
        let oracle = naive_skyline_ids(&pts);
        let part = AnglePartitioner::fit_quantile(&pts, 8).unwrap();
        let (sky, stats) = parallel_skyline_partitioned(&pts, &part, 4);
        assert_eq!(ids(&sky), oracle);
        assert!(stats.merge_candidates >= oracle.len() as u64);
    }

    #[test]
    fn geometric_chunking_ships_fewer_candidates() {
        // the paper's claim in shared-memory form: angular chunks produce
        // fewer merge candidates than blind block chunks (here, with the
        // same number of chunks)
        let pts = random_points(4000, 3, 73);
        let np = 8;
        let part = AnglePartitioner::fit_quantile(&pts, np).unwrap();
        let (_, angular) = parallel_skyline_partitioned(&pts, &part, 4);
        // block chunking with the same chunk count
        let chunk = pts.len().div_ceil(np);
        let blocks: Vec<Vec<Point>> = pts.chunks(chunk).map(<[Point]>::to_vec).collect();
        let mut block_stats = ParallelStats::default();
        let (locals, _) = run_chunks(blocks, 4);
        let _ = merge_locals(locals, &mut block_stats);
        assert!(
            angular.merge_candidates < block_stats.merge_candidates,
            "angular {} vs block {}",
            angular.merge_candidates,
            block_stats.merge_candidates
        );
    }

    #[test]
    fn zero_threads_means_auto() {
        let pts = random_points(100, 2, 74);
        let (sky, stats) = parallel_skyline_stats(&pts, 0);
        assert_eq!(ids(&sky), naive_skyline_ids(&pts));
        assert!(stats.threads >= 1);
    }

    #[test]
    fn stats_are_populated() {
        let pts = random_points(500, 3, 75);
        let (_, stats) = parallel_skyline_stats(&pts, 4);
        assert!(stats.local_comparisons > 0);
        assert!(stats.merge_candidates > 0);
        assert!(stats.merge_comparisons > 0);
    }
}
