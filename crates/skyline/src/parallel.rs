//! Shared-memory parallel skyline — the multi-core analogue of the paper's
//! cluster pipeline.
//!
//! The same partition → local skyline → merge structure that the paper runs
//! on Hadoop works on one machine with threads: split the input into chunks
//! (optionally by a geometric [`SpacePartitioner`] instead of blindly), have
//! each thread compute its chunk's skyline with the blocked BNL kernel, then
//! merge the local skylines with the L1-presorting merge. Input is converted
//! to a columnar [`PointBlock`] once up front, so workers scan contiguous
//! rows instead of chasing per-point boxes, and `std` scoped threads keep it
//! allocation-light and borrow-checked — no `Arc` cloning of the input.
//!
//! Failure handling is per *chunk*, not per worker: every chunk attempt
//! runs under `catch_unwind`, so a panicking kernel costs one attempt of
//! one chunk while the surviving workers keep draining the queue. With a
//! chaos context ([`ChaosContext`]) each chunk gets the plan's bounded
//! retry budget — injected panics and transient errors are genuinely
//! re-executed — and only a chunk that exhausts its budget aborts the run,
//! surfacing as [`SkylineError::WorkerPanic`] with the chunk index,
//! attempts consumed, and how many local skylines had completed.
//!
//! Two chunking strategies are exposed because they reproduce, in
//! microcosm, the paper's whole point:
//!
//! * [`parallel_skyline`] — block chunking (thread `t` takes the `t`-th
//!   slice): balanced, but every local skyline is a random sample's skyline,
//!   so the merge sees many globally dominated candidates;
//! * [`parallel_skyline_partitioned`] — chunk by a geometric partitioner
//!   (e.g. [`AnglePartitioner`](crate::partition::AnglePartitioner)): local
//!   winners are likelier global winners and the merge input shrinks.

use crate::block::PointBlock;
use crate::bnl::BnlConfig;
use crate::error::SkylineError;
use crate::kernel::{self, KernelStats};
use crate::partition::SpacePartitioner;
use crate::point::Point;
use mrsky_chaos::{FaultKind, FaultPlan, FaultSite};
use mrsky_trace::{EventKind, Tracer};

/// Statistics of a parallel skyline run.
#[derive(Debug, Default, Clone)]
pub struct ParallelStats {
    /// Threads actually used.
    pub threads: usize,
    /// Total dominance comparisons across local passes.
    pub local_comparisons: u64,
    /// Candidates entering the merge.
    pub merge_candidates: u64,
    /// Comparisons spent in the merge pass.
    pub merge_comparisons: u64,
    /// Chunk attempts that failed and were re-executed.
    pub retries: u64,
    /// Chaos faults injected into chunk tasks.
    pub faults_injected: u64,
}

/// Chaos wiring for a parallel run: the seeded plan deciding which chunk
/// attempts fault, the scope its hash is keyed on, and a tracer receiving
/// [`EventKind::FaultInjected`] / [`EventKind::TaskRetryExhausted`].
#[derive(Clone, Copy)]
pub struct ChaosContext<'a> {
    /// The plan; its `max_attempts` is also the per-chunk retry budget.
    pub plan: &'a FaultPlan,
    /// Scope string folded into every injection decision (e.g. job name).
    pub scope: &'a str,
    /// Event sink; pass [`Tracer::disabled`] to record nothing.
    pub tracer: &'a Tracer,
}

/// Merges local skylines: concatenate into one block, then run the
/// L1-presorting merge kernel — monotone score, so one filtering pass
/// replaces the full BNL the id-ordered merge used to need.
fn merge_locals(
    locals: Vec<PointBlock>,
    dim: usize,
    stats: &mut ParallelStats,
) -> Result<PointBlock, SkylineError> {
    let total: usize = locals.iter().map(PointBlock::len).sum();
    let registry = mrsky_trace::metrics();
    if registry.is_enabled() {
        for local in &locals {
            registry.observe("skyline.parallel.local_skyline_size", local.len() as u64);
        }
        registry.incr("skyline.parallel.merge_candidates", total as u64);
        registry.incr("skyline.parallel.merges", 1);
    }
    let mut candidates = PointBlock::with_capacity(dim, total);
    for local in &locals {
        candidates.append(local)?;
    }
    stats.merge_candidates = candidates.len() as u64;
    let (sky, merge_stats) = kernel::presort_merge_stats(&candidates);
    stats.merge_comparisons = merge_stats.comparisons;
    Ok(sky)
}

/// Renders a payload caught from a panicking worker thread.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
fn run_chunks(
    chunks: &[PointBlock],
    threads: usize,
) -> Result<(Vec<PointBlock>, KernelStats), SkylineError> {
    run_chunks_with(chunks, threads, |chunk| {
        kernel::block_bnl_stats(chunk, &BnlConfig::default())
    })
}

#[cfg(test)]
fn run_chunks_with<F>(
    chunks: &[PointBlock],
    threads: usize,
    work: F,
) -> Result<(Vec<PointBlock>, KernelStats), SkylineError>
where
    F: Fn(&PointBlock) -> (PointBlock, KernelStats) + Sync,
{
    run_chunks_engine(chunks, threads, None, work).map(|(locals, stats, _)| (locals, stats))
}

/// One chunk task that failed every attempt it was granted.
struct ChunkFailure {
    chunk: usize,
    attempts: u32,
    message: String,
}

/// Fault/retry counters accumulated by one engine run.
#[derive(Debug, Default, Clone, Copy)]
struct ChaosCounters {
    retries: u64,
    faults: u64,
}

/// Fans `chunks` out over at most `threads` scoped worker threads pulling
/// work from a shared cursor, and collects per-chunk results in order.
///
/// Every chunk *attempt* runs under `catch_unwind`, so a panicking kernel
/// (real or chaos-injected) costs one attempt of one chunk and the worker
/// survives to keep draining the queue. Without a chaos context the budget
/// is one attempt; with one, each chunk retries up to the plan's
/// `max_attempts`. Only a chunk that exhausts its budget fails the run —
/// and even then the remaining chunks are drained first, so the returned
/// [`SkylineError::WorkerPanic`] reports an accurate completed count.
fn run_chunks_engine<F>(
    chunks: &[PointBlock],
    threads: usize,
    chaos: Option<ChaosContext<'_>>,
    work: F,
) -> Result<(Vec<PointBlock>, KernelStats, ChaosCounters), SkylineError>
where
    F: Fn(&PointBlock) -> (PointBlock, KernelStats) + Sync,
{
    let n = chunks.len();
    let workers = threads.min(n).max(1);
    let budget = chaos.map_or(1, |c| c.plan.max_attempts.max(1));
    let cursor = mrsky_model::sync::AtomicUsize::new(0);
    let work = &work;
    mrsky_model::sync::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut done: Vec<(usize, PointBlock, KernelStats)> = Vec::new();
                    let mut failures: Vec<ChunkFailure> = Vec::new();
                    let mut counters = ChaosCounters::default();
                    loop {
                        // ORDERING: Relaxed — pure ticket dispenser; results
                        // travel through each worker's return value, not
                        // through memory ordered by the cursor.
                        let i = cursor.fetch_add(1, mrsky_model::sync::Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        match run_one_chunk(&chunks[i], i, budget, chaos, &mut counters, work) {
                            Ok((sky, stats)) => done.push((i, sky, stats)),
                            Err(failure) => failures.push(failure),
                        }
                    }
                    (done, failures, counters)
                })
            })
            .collect();

        let mut locals: Vec<Option<PointBlock>> = vec![None; n];
        let mut stats = KernelStats::default();
        let mut failures: Vec<ChunkFailure> = Vec::new();
        let mut counters = ChaosCounters::default();
        for handle in handles {
            match handle.join() {
                Ok((done, worker_failures, worker_counters)) => {
                    for (i, sky, chunk_stats) in done {
                        stats.merge(&chunk_stats);
                        locals[i] = Some(sky);
                    }
                    failures.extend(worker_failures);
                    counters.retries += worker_counters.retries;
                    counters.faults += worker_counters.faults;
                }
                // Per-attempt catch_unwind means a worker closure can only
                // panic in its own bookkeeping; report it against chunk `n`
                // (one past the last real index) rather than losing it.
                Err(payload) => failures.push(ChunkFailure {
                    chunk: n,
                    attempts: 0,
                    message: panic_message(payload),
                }),
            }
        }
        if let Some(first) = failures.into_iter().min_by_key(|f| f.chunk) {
            let completed = locals.iter().filter(|l| l.is_some()).count();
            return Err(SkylineError::WorkerPanic {
                chunk: first.chunk,
                attempts: first.attempts,
                completed,
                message: first.message,
            });
        }
        // No chunk failed, so the cursor handed out every index and every
        // slot is filled.
        Ok((locals.into_iter().flatten().collect(), stats, counters))
    })
}

/// Runs one chunk task with its bounded retry budget.
fn run_one_chunk<F>(
    chunk: &PointBlock,
    index: usize,
    budget: u32,
    chaos: Option<ChaosContext<'_>>,
    counters: &mut ChaosCounters,
    work: &F,
) -> Result<(PointBlock, KernelStats), ChunkFailure>
where
    F: Fn(&PointBlock) -> (PointBlock, KernelStats) + Sync,
{
    let registry = mrsky_trace::metrics();
    let mut attempt = 0u32;
    loop {
        let injected = chaos.and_then(|c| {
            c.plan
                .decide(FaultSite::ParallelChunk, c.scope, index as u64, attempt)
        });
        if let (Some(kind), Some(c)) = (injected, chaos) {
            counters.faults += 1;
            if registry.is_enabled() {
                registry.incr("chaos.parallel.faults_injected", 1);
            }
            c.tracer.emit(|| EventKind::FaultInjected {
                site: FaultSite::ParallelChunk.as_str().into(),
                fault: kind.as_str().into(),
                scope: c.scope.into(),
                index: index as u64,
                attempt: u64::from(attempt),
            });
        }
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match injected {
            Some(FaultKind::Panic) => {
                panic!("chaos: injected panic in chunk {index} (attempt {attempt})")
            }
            Some(kind) => Err(format!(
                "chaos: injected {kind} in chunk {index} (attempt {attempt})"
            )),
            None => Ok(work(chunk)),
        }));
        let message = match outcome {
            Ok(Ok(result)) => return Ok(result),
            Ok(Err(message)) => message,
            Err(payload) => panic_message(payload),
        };
        if attempt + 1 >= budget {
            if let Some(c) = chaos {
                c.tracer.emit(|| EventKind::TaskRetryExhausted {
                    site: FaultSite::ParallelChunk.as_str().into(),
                    scope: c.scope.into(),
                    index: index as u64,
                    attempts: u64::from(attempt + 1),
                });
            }
            if registry.is_enabled() {
                registry.incr("chaos.parallel.retry_exhausted", 1);
            }
            return Err(ChunkFailure {
                chunk: index,
                attempts: attempt + 1,
                message,
            });
        }
        counters.retries += 1;
        if registry.is_enabled() {
            registry.incr("chaos.parallel.retries", 1);
        }
        attempt += 1;
    }
}

/// Computes the skyline of `points` on `threads` threads with block
/// chunking. `threads = 0` uses the host's available parallelism.
///
/// # Errors
///
/// Returns [`SkylineError::WorkerPanic`] if a worker thread panicked.
///
/// # Examples
///
/// ```
/// use skyline_algos::parallel::parallel_skyline;
/// use skyline_algos::point::Point;
///
/// let pts: Vec<Point> = (0..1000)
///     .map(|i| Point::new(i, vec![(i % 37) as f64, (i % 11) as f64]))
///     .collect();
/// let sky = parallel_skyline(&pts, 4).unwrap();
/// assert!(!sky.is_empty());
/// ```
pub fn parallel_skyline(points: &[Point], threads: usize) -> Result<Vec<Point>, SkylineError> {
    Ok(parallel_skyline_stats(points, threads)?.0)
}

/// Like [`parallel_skyline`] but returns statistics.
pub fn parallel_skyline_stats(
    points: &[Point],
    threads: usize,
) -> Result<(Vec<Point>, ParallelStats), SkylineError> {
    parallel_skyline_inner(points, threads, None)
}

/// Like [`parallel_skyline_stats`] but with chaos faults injected into
/// chunk tasks per `chaos.plan` — and recovered from, within the plan's
/// retry budget. Within that budget the result is bit-identical to the
/// fault-free run.
///
/// # Errors
///
/// Returns [`SkylineError::WorkerPanic`] if a chunk exhausted its budget.
pub fn parallel_skyline_chaos(
    points: &[Point],
    threads: usize,
    chaos: ChaosContext<'_>,
) -> Result<(Vec<Point>, ParallelStats), SkylineError> {
    parallel_skyline_inner(points, threads, Some(chaos))
}

fn parallel_skyline_inner(
    points: &[Point],
    threads: usize,
    chaos: Option<ChaosContext<'_>>,
) -> Result<(Vec<Point>, ParallelStats), SkylineError> {
    let threads = effective_threads(threads);
    let mut stats = ParallelStats {
        threads,
        ..ParallelStats::default()
    };
    if points.is_empty() {
        return Ok((Vec::new(), stats));
    }
    let block = PointBlock::from_points(points)?;
    let chunks = block.chunks(block.len().div_ceil(threads));
    let (locals, counter, counters) = run_chunks_engine(&chunks, threads, chaos, |chunk| {
        kernel::block_bnl_stats(chunk, &BnlConfig::default())
    })?;
    stats.local_comparisons = counter.comparisons;
    stats.retries = counters.retries;
    stats.faults_injected = counters.faults;
    let sky_block = merge_locals(locals, block.dim(), &mut stats)?;
    crate::invariants::check_skyline_block("parallel", &block, &sky_block);
    Ok((sky_block.to_points(), stats))
}

/// Computes the skyline with chunks defined by `partitioner` (one chunk per
/// partition), processed on `threads` threads.
///
/// # Errors
///
/// Returns [`SkylineError::WorkerPanic`] if a worker thread panicked.
pub fn parallel_skyline_partitioned(
    points: &[Point],
    partitioner: &dyn SpacePartitioner,
    threads: usize,
) -> Result<(Vec<Point>, ParallelStats), SkylineError> {
    parallel_skyline_partitioned_inner(points, partitioner, threads, None)
}

/// Like [`parallel_skyline_partitioned`] but with chaos faults injected
/// into the per-partition chunk tasks, recovered within the plan's budget.
///
/// # Errors
///
/// Returns [`SkylineError::WorkerPanic`] if a chunk exhausted its budget.
pub fn parallel_skyline_partitioned_chaos(
    points: &[Point],
    partitioner: &dyn SpacePartitioner,
    threads: usize,
    chaos: ChaosContext<'_>,
) -> Result<(Vec<Point>, ParallelStats), SkylineError> {
    parallel_skyline_partitioned_inner(points, partitioner, threads, Some(chaos))
}

fn parallel_skyline_partitioned_inner(
    points: &[Point],
    partitioner: &dyn SpacePartitioner,
    threads: usize,
    chaos: Option<ChaosContext<'_>>,
) -> Result<(Vec<Point>, ParallelStats), SkylineError> {
    let threads = effective_threads(threads);
    let mut stats = ParallelStats {
        threads,
        ..ParallelStats::default()
    };
    if points.is_empty() {
        return Ok((Vec::new(), stats));
    }
    let dim = points[0].dim();
    let mut chunks: Vec<PointBlock> = (0..partitioner.num_partitions())
        .map(|_| PointBlock::new(dim))
        .collect();
    for p in points {
        chunks[partitioner.partition_of(p)].push_point(p);
    }
    chunks.retain(|c| !c.is_empty());
    let (locals, counter, counters) = run_chunks_engine(&chunks, threads, chaos, |chunk| {
        kernel::block_bnl_stats(chunk, &BnlConfig::default())
    })?;
    stats.local_comparisons = counter.comparisons;
    stats.retries = counters.retries;
    stats.faults_injected = counters.faults;
    let sky_block = merge_locals(locals, dim, &mut stats)?;
    #[cfg(feature = "strict-invariants")]
    {
        let input = PointBlock::from_points(points)?;
        crate::invariants::check_skyline_block("parallel-partitioned", &input, &sky_block);
    }
    Ok((sky_block.to_points(), stats))
}

fn effective_threads(threads: usize) -> usize {
    if threads == 0 {
        threads_from_env(std::env::var("MRSKY_THREADS").ok().as_deref())
    } else {
        threads
    }
}

/// Resolves the auto (`threads == 0`) worker count: an `MRSKY_THREADS`
/// override (clamped to at least 1) wins over detected parallelism, so a
/// whole run can be pinned from the environment. Pure in its argument so
/// tests never have to mutate process env.
fn threads_from_env(var: Option<&str>) -> usize {
    if let Some(v) = var {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::AnglePartitioner;
    use crate::seq::naive_skyline_ids;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_points(n: usize, d: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                Point::new(
                    i as u64,
                    (0..d).map(|_| rng.gen_range(0.0..8.0)).collect::<Vec<_>>(),
                )
            })
            .collect()
    }

    fn ids(v: &[Point]) -> Vec<u64> {
        let mut out: Vec<u64> = v.iter().map(Point::id).collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn empty_and_single() {
        assert!(parallel_skyline(&[], 4).unwrap().is_empty());
        let one = vec![Point::new(0, vec![1.0])];
        assert_eq!(ids(&parallel_skyline(&one, 4).unwrap()), vec![0]);
    }

    #[test]
    fn matches_oracle_across_thread_counts() {
        let pts = random_points(700, 3, 71);
        let oracle = naive_skyline_ids(&pts);
        for threads in [1usize, 2, 4, 16] {
            assert_eq!(
                ids(&parallel_skyline(&pts, threads).unwrap()),
                oracle,
                "{threads} threads"
            );
        }
    }

    #[test]
    fn partitioned_variant_matches_oracle() {
        let pts = random_points(700, 3, 72);
        let oracle = naive_skyline_ids(&pts);
        let part = AnglePartitioner::fit_quantile(&pts, 8).unwrap();
        let (sky, stats) = parallel_skyline_partitioned(&pts, &part, 4).unwrap();
        assert_eq!(ids(&sky), oracle);
        assert!(stats.merge_candidates >= oracle.len() as u64);
    }

    #[test]
    fn geometric_chunking_ships_fewer_candidates() {
        // the paper's claim in shared-memory form: angular chunks produce
        // fewer merge candidates than blind block chunks (here, with the
        // same number of chunks)
        let pts = random_points(4000, 3, 73);
        let np = 8;
        let part = AnglePartitioner::fit_quantile(&pts, np).unwrap();
        let (_, angular) = parallel_skyline_partitioned(&pts, &part, 4).unwrap();
        // block chunking with the same chunk count
        let block = PointBlock::from_points(&pts).unwrap();
        let blocks = block.chunks(pts.len().div_ceil(np));
        let mut block_stats = ParallelStats::default();
        let (locals, _) = run_chunks(&blocks, 4).unwrap();
        let _ = merge_locals(locals, block.dim(), &mut block_stats).unwrap();
        assert!(
            angular.merge_candidates < block_stats.merge_candidates,
            "angular {} vs block {}",
            angular.merge_candidates,
            block_stats.merge_candidates
        );
    }

    #[test]
    fn threads_from_env_override_wins_and_clamps() {
        assert_eq!(threads_from_env(Some("6")), 6);
        assert_eq!(threads_from_env(Some(" 2 ")), 2);
        // zero clamps up to one worker rather than deadlocking
        assert_eq!(threads_from_env(Some("0")), 1);
        // garbage falls back to detected parallelism
        assert!(threads_from_env(Some("lots")) >= 1);
        assert!(threads_from_env(None) >= 1);
    }

    #[test]
    fn zero_threads_means_auto() {
        let pts = random_points(100, 2, 74);
        let (sky, stats) = parallel_skyline_stats(&pts, 0).unwrap();
        assert_eq!(ids(&sky), naive_skyline_ids(&pts));
        assert!(stats.threads >= 1);
    }

    #[test]
    fn stats_are_populated() {
        let pts = random_points(500, 3, 75);
        let (_, stats) = parallel_skyline_stats(&pts, 4).unwrap();
        assert!(stats.local_comparisons > 0);
        assert!(stats.merge_candidates > 0);
        assert!(stats.merge_comparisons > 0);
    }

    #[test]
    fn merge_records_local_skyline_sizes() {
        let m = mrsky_trace::metrics();
        m.set_enabled(true);
        let before = m
            .snapshot()
            .histograms
            .get("skyline.parallel.local_skyline_size")
            .map_or(0, mrsky_trace::Histogram::count);
        let pts = random_points(400, 3, 77);
        let part = AnglePartitioner::fit_quantile(&pts, 4).unwrap();
        let _ = parallel_skyline_partitioned(&pts, &part, 2).unwrap();
        let after = m
            .snapshot()
            .histograms
            .get("skyline.parallel.local_skyline_size")
            .map_or(0, mrsky_trace::Histogram::count);
        m.set_enabled(false);
        assert!(
            after >= before + 2,
            "one observation per non-empty partition: {before} -> {after}"
        );
    }

    #[test]
    fn worker_panic_surfaces_as_error() {
        let block = PointBlock::from_points(&random_points(64, 2, 76)).unwrap();
        let chunks = block.chunks(8);
        assert_eq!(chunks.len(), 8);
        let result = run_chunks_with(&chunks, 4, |chunk| {
            // deterministic victim: the chunk whose first id is 16 (chunk 2)
            if chunk.ids().first() == Some(&16) {
                panic!("injected worker failure");
            }
            kernel::block_bnl_stats(chunk, &BnlConfig::default())
        });
        match result {
            Err(SkylineError::WorkerPanic {
                chunk,
                attempts,
                completed,
                message,
            }) => {
                assert_eq!(chunk, 2);
                assert_eq!(attempts, 1);
                // the surviving workers drained every other chunk first
                assert_eq!(completed, 7);
                assert!(message.contains("injected worker failure"), "{message}");
            }
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
    }

    #[test]
    fn chaos_transient_errors_are_retried_to_the_exact_skyline() {
        let pts = random_points(900, 3, 81);
        let oracle = naive_skyline_ids(&pts);
        let plan = mrsky_chaos::FaultPlan {
            rules: vec![mrsky_chaos::SiteRule {
                site: FaultSite::ParallelChunk,
                kind: FaultKind::TransientError,
                permille: 400,
            }],
            max_attempts: 6,
            ..mrsky_chaos::FaultPlan::off()
        };
        let tracer = Tracer::in_memory();
        let mut saw_faults = false;
        for seed in 0..6u64 {
            let plan = mrsky_chaos::FaultPlan {
                seed,
                ..plan.clone()
            };
            let (sky, stats) = parallel_skyline_chaos(
                &pts,
                4,
                ChaosContext {
                    plan: &plan,
                    scope: "unit",
                    tracer: &tracer,
                },
            )
            .unwrap();
            assert_eq!(ids(&sky), oracle, "seed {seed}");
            assert_eq!(stats.retries, stats.faults_injected, "seed {seed}");
            saw_faults |= stats.faults_injected > 0;
        }
        assert!(saw_faults, "40% transient rate never fired across 6 seeds");
        let events = tracer.drain();
        assert!(events.iter().any(
            |e| matches!(&e.kind, EventKind::FaultInjected { site, .. } if site == "parallel-chunk")
        ));
    }

    #[test]
    fn chaos_injected_panics_are_contained_and_retried() {
        let pts = random_points(600, 3, 82);
        let oracle = naive_skyline_ids(&pts);
        let plan = mrsky_chaos::FaultPlan {
            seed: 11,
            rules: vec![mrsky_chaos::SiteRule {
                site: FaultSite::ParallelChunk,
                kind: FaultKind::Panic,
                permille: 500,
            }],
            max_attempts: 8,
            ..mrsky_chaos::FaultPlan::off()
        };
        let (sky, stats) = parallel_skyline_chaos(
            &pts,
            3,
            ChaosContext {
                plan: &plan,
                scope: "unit-panics",
                tracer: &Tracer::disabled(),
            },
        )
        .unwrap();
        assert_eq!(ids(&sky), oracle);
        assert!(stats.faults_injected > 0, "50% panic rate never fired");
    }

    #[test]
    fn exhausted_budget_emits_trace_and_reports_attempts() {
        // real (non-injected) failure that outlives the chaos budget: the
        // victim chunk panics on every attempt
        let block = PointBlock::from_points(&random_points(64, 2, 83)).unwrap();
        let chunks = block.chunks(8);
        let plan = mrsky_chaos::FaultPlan {
            max_attempts: 3,
            ..mrsky_chaos::FaultPlan::off()
        };
        let tracer = Tracer::in_memory();
        let result = run_chunks_engine(
            &chunks,
            2,
            Some(ChaosContext {
                plan: &plan,
                scope: "unit-exhaust",
                tracer: &tracer,
            }),
            |chunk| {
                if chunk.ids().first() == Some(&24) {
                    panic!("chaos: persistent hardware fault");
                }
                kernel::block_bnl_stats(chunk, &BnlConfig::default())
            },
        );
        match result {
            Err(SkylineError::WorkerPanic {
                chunk,
                attempts,
                completed,
                ..
            }) => {
                assert_eq!(chunk, 3);
                assert_eq!(attempts, 3);
                assert_eq!(completed, 7);
            }
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
        let events = tracer.drain();
        assert!(events.iter().any(|e| matches!(
            &e.kind,
            EventKind::TaskRetryExhausted {
                index: 3,
                attempts: 3,
                ..
            }
        )));
    }

    #[test]
    fn merge_is_l1_presorted_not_id_sorted() {
        // two "local skylines" whose union needs filtering: the merge must
        // keep exactly the global skyline regardless of id order
        let a = PointBlock::from_points(&[
            Point::new(10, vec![1.0, 5.0]),
            Point::new(11, vec![5.0, 1.0]),
        ])
        .unwrap();
        let b = PointBlock::from_points(&[
            Point::new(2, vec![2.0, 6.0]), // dominated by id 10
            Point::new(3, vec![0.5, 6.0]),
        ])
        .unwrap();
        let mut stats = ParallelStats::default();
        let sky = merge_locals(vec![a, b], 2, &mut stats).unwrap();
        let mut got = sky.ids().to_vec();
        got.sort_unstable();
        assert_eq!(got, vec![3, 10, 11]);
        assert_eq!(stats.merge_candidates, 4);
        // output rows ascend in L1 norm — the presort contract
        for i in 1..sky.len() {
            assert!(sky.l1_norm(i - 1) <= sky.l1_norm(i));
        }
    }
}
