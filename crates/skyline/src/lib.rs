//! # skyline-algos
//!
//! Skyline (Pareto-front) computation kernels, data-space partitioners, and
//! quality metrics.
//!
//! This crate is the algorithmic substrate for the reproduction of
//! *"MapReduce Skyline Query Processing with a New Angular Partitioning
//! Approach"* (Chen, Hwang, Wu — IEEE IPDPSW 2012). It contains everything
//! that is independent of the MapReduce execution model:
//!
//! * [`point`] — the `d`-dimensional [`Point`] type (lower is better on every
//!   dimension, as in the paper's QoS convention).
//! * [`dominance`] — the dominance relation and instrumented comparison
//!   counting used by the cluster cost model.
//! * [`block`] — the columnar [`PointBlock`] batch type (SoA layout: flat
//!   coordinate buffer + parallel id vector), the transport and compute
//!   representation of the hot paths.
//! * [`kernel`] — block-based dominance kernels: branchless row compares,
//!   a blocked BNL over flat buffers, the columnar SFS, and the
//!   L1-presorting merge.
//! * [`salsa`] — the SaLSa kernel (min-coordinate presort with an
//!   early-stop watermark).
//! * [`select`] — runtime kernel selection: [`BlockKernel`] dispatch and
//!   the [`KernelChoice`] cost heuristic over a sampled correlation
//!   estimate.
//! * [`bnl`] — the Block-Nested-Loops skyline algorithm (Börzsönyi et al.,
//!   ICDE 2001) with a bounded self-organising window and multi-pass overflow
//!   handling; the paper uses BNL for both local and global skylines.
//! * [`filter`] — deterministic filter-point selection for shuffle-side early
//!   pruning (drop dominated rows before they are shuffled).
//! * [`sfs`] — Sort-Filter-Skyline as a `Point` bridge over the block
//!   kernel; an independent oracle in tests and a pluggable local kernel.
//! * [`seq`] — a trivial quadratic reference implementation.
//! * [`hypersphere`] — the Cartesian → hyperspherical transform of the paper's
//!   Eq. (1)/(2), which underlies angular partitioning.
//! * [`partition`] — the [`SpacePartitioner`] trait and the three partitioners
//!   the paper evaluates (dimensional, grid, angular) plus a random baseline.
//! * [`metrics`] — local-skyline optimality (paper Eq. 5), dominance-ability
//!   formulas (Theorems 1 and 2), and load-balance statistics.
//! * [`incremental`] — incremental skyline maintenance when services are added
//!   or removed (the paper's Section II motivation).
//!
//! ## Quick example
//!
//! ```
//! use skyline_algos::prelude::*;
//!
//! let points = vec![
//!     Point::new(0, vec![1.0, 4.0]),
//!     Point::new(1, vec![2.0, 2.0]),
//!     Point::new(2, vec![4.0, 1.0]),
//!     Point::new(3, vec![3.0, 3.0]), // dominated by point 1
//! ];
//! let sky = bnl_skyline(&points, &BnlConfig::default());
//! let mut ids: Vec<u64> = sky.iter().map(|p| p.id()).collect();
//! ids.sort_unstable();
//! assert_eq!(ids, vec![0, 1, 2]);
//! ```

#![warn(missing_docs)]

pub mod block;
pub mod bnl;
pub mod dnc;
pub mod dominance;
pub mod error;
pub mod filter;
pub mod hypersphere;
pub mod incremental;
pub mod invariants;
pub mod kdominant;
pub mod kernel;
pub mod metrics;
pub mod parallel;
pub mod partition;
pub mod point;
pub mod progressive;
pub mod ranking;
pub mod representative;
pub mod salsa;
pub mod select;
pub mod seq;
pub mod sfs;
pub mod skyband;
pub mod topk;

pub use block::PointBlock;
pub use bnl::{bnl_skyline, bnl_skyline_stats, BnlConfig, BnlStats};
pub use dnc::{dnc_skyline, dnc_skyline_stats, DncStats};
pub use dominance::{dominates, strictly_dominates, DomCounter, DomRelation};
pub use error::SkylineError;
pub use filter::{filtered_out, select_filter_points};
pub use hypersphere::{to_hyperspherical, to_hyperspherical_into, HyperPoint};
pub use kdominant::{k_dominant_skyline, k_dominates};
pub use kernel::{
    block_bnl, block_bnl_stats, block_sfs, block_sfs_stats, compare_rows, dominated_count,
    dominates_row, presort_merge, presort_merge_stats, KernelStats,
};
pub use parallel::{parallel_skyline, parallel_skyline_partitioned, parallel_skyline_stats};
pub use partition::{
    witness_prunable, AnglePartitioner, AxisProfile, BoundaryProfile, Bounds, DimPartitioner,
    GridPartitioner, PartitionSpace, RandomPartitioner, SpacePartitioner,
};
pub use point::Point;
pub use progressive::ProgressiveSkyline;
pub use ranking::WeightedScore;
pub use representative::{distance_based_representatives, max_dominance_representatives};
pub use salsa::{block_salsa, block_salsa_stats};
pub use select::{correlation_estimate, BlockKernel, KernelChoice};
pub use seq::naive_skyline;
pub use sfs::{sfs_skyline, sfs_skyline_stats};
pub use skyband::{DeleteOutcome, SkybandBuffer, SkybandStats};
pub use topk::{dominance_counts, top_k_dominating, DominatingEntry};

/// Convenience re-exports for downstream crates and examples.
pub mod prelude {
    pub use crate::block::PointBlock;
    pub use crate::bnl::{bnl_skyline, bnl_skyline_stats, BnlConfig, BnlStats};
    pub use crate::dnc::dnc_skyline;
    pub use crate::dominance::{dominates, strictly_dominates, DomCounter, DomRelation};
    pub use crate::hypersphere::{to_hyperspherical, HyperPoint};
    pub use crate::kdominant::{k_dominant_skyline, k_dominates};
    pub use crate::kernel::{block_bnl, block_sfs, dominates_row, presort_merge};
    pub use crate::salsa::block_salsa;
    pub use crate::select::{BlockKernel, KernelChoice};
    pub use crate::metrics::local_skyline_optimality;
    pub use crate::parallel::{parallel_skyline, parallel_skyline_partitioned};
    pub use crate::partition::{
        AnglePartitioner, AxisProfile, BoundaryProfile, Bounds, DimPartitioner, GridPartitioner,
        PartitionSpace, RandomPartitioner, SpacePartitioner,
    };
    pub use crate::point::Point;
    pub use crate::progressive::ProgressiveSkyline;
    pub use crate::ranking::WeightedScore;
    pub use crate::representative::{
        distance_based_representatives, max_dominance_representatives,
    };
    pub use crate::seq::naive_skyline;
    pub use crate::sfs::sfs_skyline;
    pub use crate::skyband::{DeleteOutcome, SkybandBuffer};
    pub use crate::topk::top_k_dominating;
}
