//! Utility-based ranking of skyline services.
//!
//! The skyline answers "which services are *not obviously worse* than some
//! other service"; a user still has to pick one. The standard QoS-selection
//! practice (Zeng et al., TSE 2004 — reference [32] of the paper) scores
//! each candidate with a weighted sum of range-normalised attributes and
//! ranks. Because every attribute in this workspace is oriented
//! lower-is-better, the best service minimises the weighted score.
//!
//! A key property ties this to the skyline: for any non-negative weight
//! vector, **some skyline point minimises the score** — so ranking the
//! skyline (a few hundred points) is as good as ranking the whole registry
//! (100,000 points), which is precisely why fast skyline extraction matters
//! for selection latency.

use crate::point::Point;

/// A weighted-sum scoring function over range-normalised attributes.
#[derive(Debug, Clone)]
pub struct WeightedScore {
    weights: Vec<f64>,
    min: Vec<f64>,
    width: Vec<f64>,
}

impl WeightedScore {
    /// Builds a scorer with the given per-attribute weights, normalising
    /// each attribute over the ranges observed in `reference`.
    ///
    /// # Panics
    ///
    /// Panics if `reference` is empty, weights are negative/non-finite, or
    /// the weight count does not match the dimensionality.
    pub fn fit(weights: &[f64], reference: &[Point]) -> Self {
        assert!(
            !reference.is_empty(),
            "need reference points for normalisation"
        );
        let d = reference[0].dim();
        assert_eq!(weights.len(), d, "one weight per attribute required");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be non-negative and finite"
        );
        let mut min = vec![f64::INFINITY; d];
        let mut max = vec![f64::NEG_INFINITY; d];
        for p in reference {
            assert_eq!(p.dim(), d, "mixed dimensionality in reference set");
            for i in 0..d {
                min[i] = min[i].min(p.coord(i));
                max[i] = max[i].max(p.coord(i));
            }
        }
        let width = (0..d).map(|i| max[i] - min[i]).collect();
        Self {
            weights: weights.to_vec(),
            min,
            width,
        }
    }

    /// Equal weights over all `d` attributes of `reference`.
    pub fn uniform(reference: &[Point]) -> Self {
        let d = reference
            .first()
            .expect("need reference points for normalisation")
            .dim();
        Self::fit(&vec![1.0; d], reference)
    }

    /// The (lower-is-better) score of `p`.
    pub fn score(&self, p: &Point) -> f64 {
        assert_eq!(p.dim(), self.weights.len(), "dimensionality mismatch");
        (0..p.dim())
            .map(|i| {
                let norm = if self.width[i] > 0.0 {
                    (p.coord(i) - self.min[i]) / self.width[i]
                } else {
                    0.0
                };
                self.weights[i] * norm
            })
            .sum()
    }

    /// Ranks `candidates` ascending by score (best first), ties broken by
    /// service id for determinism. Returns `(point, score)` pairs.
    pub fn rank(&self, candidates: &[Point]) -> Vec<(Point, f64)> {
        let mut scored: Vec<(Point, f64)> = candidates
            .iter()
            .map(|p| (p.clone(), self.score(p)))
            .collect();
        scored.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.id().cmp(&b.0.id())));
        scored
    }

    /// The single best candidate (lowest score), if any.
    pub fn best(&self, candidates: &[Point]) -> Option<(Point, f64)> {
        self.rank(candidates).into_iter().next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bnl::{bnl_skyline, BnlConfig};

    fn pts(rows: &[&[f64]]) -> Vec<Point> {
        rows.iter()
            .enumerate()
            .map(|(i, r)| Point::new(i as u64, r.to_vec()))
            .collect()
    }

    #[test]
    fn ranks_by_weighted_normalised_sum() {
        let candidates = pts(&[&[0.0, 10.0], &[10.0, 0.0], &[5.0, 5.0]]);
        // weight dim0 heavily: point 0 (best dim0) must win
        let scorer = WeightedScore::fit(&[10.0, 1.0], &candidates);
        let ranked = scorer.rank(&candidates);
        assert_eq!(ranked[0].0.id(), 0);
        // weight dim1 heavily: point 1 wins
        let scorer = WeightedScore::fit(&[1.0, 10.0], &candidates);
        assert_eq!(scorer.best(&candidates).unwrap().0.id(), 1);
    }

    #[test]
    fn uniform_prefers_the_balanced_point_here() {
        let candidates = pts(&[&[0.0, 10.0], &[10.0, 0.0], &[4.0, 4.0]]);
        let scorer = WeightedScore::uniform(&candidates);
        assert_eq!(scorer.best(&candidates).unwrap().0.id(), 2);
    }

    #[test]
    fn degenerate_dimension_contributes_zero() {
        let candidates = pts(&[&[3.0, 1.0], &[3.0, 2.0]]);
        let scorer = WeightedScore::uniform(&candidates);
        assert_eq!(scorer.score(&candidates[0]), 0.0);
        assert_eq!(scorer.score(&candidates[1]), 1.0);
    }

    #[test]
    fn some_skyline_point_is_globally_optimal_for_any_weights() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(41);
        let dataset: Vec<Point> = (0..300)
            .map(|i| {
                Point::new(
                    i,
                    vec![
                        rng.gen_range(0.0..1.0),
                        rng.gen_range(0.0..1.0),
                        rng.gen_range(0.0..1.0),
                    ],
                )
            })
            .collect();
        let sky = bnl_skyline(&dataset, &BnlConfig::default());
        for _ in 0..10 {
            let w = vec![
                rng.gen_range(0.0..2.0),
                rng.gen_range(0.0..2.0),
                rng.gen_range(0.0..2.0),
            ];
            let scorer = WeightedScore::fit(&w, &dataset);
            let global_best = scorer.best(&dataset).unwrap().1;
            let sky_best = scorer.best(&sky).unwrap().1;
            assert!(
                (sky_best - global_best).abs() < 1e-12,
                "weights {w:?}: skyline best {sky_best} vs global {global_best}"
            );
        }
    }

    #[test]
    fn rank_is_deterministic_on_ties() {
        let candidates = pts(&[&[1.0, 1.0], &[1.0, 1.0], &[1.0, 1.0]]);
        let scorer = WeightedScore::uniform(&candidates);
        let ranked = scorer.rank(&candidates);
        let ids: Vec<u64> = ranked.iter().map(|(p, _)| p.id()).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "one weight per attribute")]
    fn weight_count_must_match() {
        let candidates = pts(&[&[1.0, 1.0]]);
        let _ = WeightedScore::fit(&[1.0], &candidates);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weights_rejected() {
        let candidates = pts(&[&[1.0, 1.0]]);
        let _ = WeightedScore::fit(&[1.0, -1.0], &candidates);
    }
}
