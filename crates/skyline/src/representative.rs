//! Representative skylines — selecting `k` services that summarise the
//! skyline.
//!
//! High-dimensional skylines are large (the paper measures thousands of
//! skyline services at `d = 10`), which defeats the purpose of presenting
//! "the best" services to a user. The authors' own companion work (Chen et
//! al., *Service Recommendation: Similarity-based Representative Skyline*,
//! SERVICES 2010 — reference [12] of the paper) and Lin et al.'s *k most
//! representative skyline operator* (ICDE 2007 — reference [23]) both
//! postprocess the skyline down to `k` representatives. This module provides
//! the two classic selectors:
//!
//! * [`max_dominance_representatives`] — greedily picks the `k` skyline
//!   points whose dominance regions cover the most (remaining) dominated
//!   points, the Lin et al. objective under a greedy `(1 − 1/e)`
//!   approximation (the objective is submodular coverage).
//! * [`distance_based_representatives`] — greedy max-min (farthest-point)
//!   selection in normalised attribute space: a diversity-style summary in
//!   the spirit of similarity-based representative skylines.

use crate::dominance::dominates;
use crate::point::Point;

/// Picks up to `k` skyline points maximising the number of dataset points
/// covered (dominated) by at least one representative, greedily.
///
/// `skyline` must be the skyline of `dataset` (or a superset filter of it);
/// points of `dataset` that are themselves in `skyline` are never counted as
/// coverage. Returns the representatives in selection order (most covering
/// first).
pub fn max_dominance_representatives(skyline: &[Point], dataset: &[Point], k: usize) -> Vec<Point> {
    if k == 0 || skyline.is_empty() {
        return Vec::new();
    }
    // coverage[s][j] = skyline point s dominates dataset point j
    let targets: Vec<&Point> = dataset
        .iter()
        .filter(|p| !skyline.iter().any(|s| s.id() == p.id()))
        .collect();
    let mut covered = vec![false; targets.len()];
    let mut available: Vec<usize> = (0..skyline.len()).collect();
    let mut reps = Vec::with_capacity(k.min(skyline.len()));

    while reps.len() < k && !available.is_empty() {
        let Some((best_pos, best_gain)) = available
            .iter()
            .enumerate()
            .map(|(pos, &s)| {
                let gain = targets
                    .iter()
                    .enumerate()
                    .filter(|(j, t)| !covered[*j] && dominates(&skyline[s], t))
                    .count();
                (pos, gain)
            })
            .max_by_key(|&(pos, gain)| (gain, std::cmp::Reverse(pos)))
        else {
            break;
        };
        if best_gain == 0 && !reps.is_empty() {
            // Remaining picks cover nothing new — zero-gain representatives
            // carry no information, so stop early rather than padding to k.
            break;
        }
        let s = available.swap_remove(best_pos);
        for (j, t) in targets.iter().enumerate() {
            if !covered[j] && dominates(&skyline[s], t) {
                covered[j] = true;
            }
        }
        reps.push(skyline[s].clone());
    }
    reps
}

/// Picks up to `k` skyline points by greedy max-min distance in
/// range-normalised coordinates, seeding with the point closest to the
/// origin (the "best overall" service).
pub fn distance_based_representatives(skyline: &[Point], k: usize) -> Vec<Point> {
    if k == 0 || skyline.is_empty() {
        return Vec::new();
    }
    let d = skyline[0].dim();
    // normalise each dimension to [0, 1] over the skyline's own range
    let mut min = vec![f64::INFINITY; d];
    let mut max = vec![f64::NEG_INFINITY; d];
    for p in skyline {
        for i in 0..d {
            min[i] = min[i].min(p.coord(i));
            max[i] = max[i].max(p.coord(i));
        }
    }
    let norm = |p: &Point| -> Vec<f64> {
        (0..d)
            .map(|i| {
                let w = max[i] - min[i];
                if w > 0.0 {
                    (p.coord(i) - min[i]) / w
                } else {
                    0.0
                }
            })
            .collect()
    };
    let coords: Vec<Vec<f64>> = skyline.iter().map(norm).collect();
    let dist2 =
        |a: &[f64], b: &[f64]| -> f64 { a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum() };

    // seed: minimal normalised L2 from the origin
    let Some(seed) = (0..skyline.len()).min_by(|&a, &b| {
        let za = coords[a].iter().map(|v| v * v).sum::<f64>();
        let zb = coords[b].iter().map(|v| v * v).sum::<f64>();
        za.total_cmp(&zb)
            .then(skyline[a].id().cmp(&skyline[b].id()))
    }) else {
        return Vec::new();
    };

    let mut chosen = vec![seed];
    let mut min_d2: Vec<f64> = coords.iter().map(|c| dist2(c, &coords[seed])).collect();
    while chosen.len() < k.min(skyline.len()) {
        let Some(next) = (0..skyline.len())
            .filter(|i| !chosen.contains(i))
            .max_by(|&a, &b| {
                min_d2[a]
                    .total_cmp(&min_d2[b])
                    .then(skyline[b].id().cmp(&skyline[a].id()))
            })
        else {
            break;
        };
        chosen.push(next);
        for i in 0..skyline.len() {
            min_d2[i] = min_d2[i].min(dist2(&coords[i], &coords[next]));
        }
    }
    chosen.into_iter().map(|i| skyline[i].clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bnl::{bnl_skyline, BnlConfig};

    fn contour(n: usize) -> Vec<Point> {
        // anti-correlated contour: everything is a skyline point
        (0..n)
            .map(|i| Point::new(i as u64, vec![i as f64, (n - 1 - i) as f64]))
            .collect()
    }

    #[test]
    fn k_zero_and_empty() {
        assert!(max_dominance_representatives(&[], &[], 3).is_empty());
        assert!(max_dominance_representatives(&contour(5), &contour(5), 0).is_empty());
        assert!(distance_based_representatives(&[], 3).is_empty());
        assert!(distance_based_representatives(&contour(5), 0).is_empty());
    }

    #[test]
    fn max_dominance_picks_the_big_coverer() {
        // skyline {a, b}; a dominates 3 points, b dominates 1
        let a = Point::new(0, vec![0.0, 0.0]);
        let b = Point::new(1, vec![-1.0, 10.0]);
        let dataset = vec![
            a.clone(),
            b.clone(),
            Point::new(2, vec![1.0, 1.0]),
            Point::new(3, vec![2.0, 2.0]),
            Point::new(4, vec![3.0, 3.0]),
            Point::new(5, vec![-0.5, 11.0]),
        ];
        let sky = vec![a, b];
        let reps = max_dominance_representatives(&sky, &dataset, 1);
        assert_eq!(reps.len(), 1);
        assert_eq!(reps[0].id(), 0);
    }

    #[test]
    fn max_dominance_respects_marginal_gain() {
        // c's coverage is a subset of a's; after picking a, b (small but
        // disjoint coverage) must win over c.
        let a = Point::new(0, vec![0.0, 5.0]);
        let _c = Point::new(1, vec![0.5, 5.5]); // dominated? no: worse on both vs a... make skyline-valid
        let b = Point::new(2, vec![5.0, 0.0]);
        // a dominates p3,p4; c would dominate p4 only; b dominates p5
        let dataset = vec![
            a.clone(),
            b.clone(),
            Point::new(3, vec![1.0, 6.0]),
            Point::new(4, vec![2.0, 7.0]),
            Point::new(5, vec![6.0, 1.0]),
        ];
        let sky = bnl_skyline(&dataset, &BnlConfig::default());
        let ids: Vec<u64> = {
            let mut v: Vec<u64> = sky.iter().map(Point::id).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(ids, vec![0, 2]);
        let reps = max_dominance_representatives(&sky, &dataset, 2);
        let rep_ids: Vec<u64> = reps.iter().map(Point::id).collect();
        assert!(rep_ids.contains(&0) && rep_ids.contains(&2));
    }

    #[test]
    fn max_dominance_stops_at_zero_gain() {
        // a covers everything coverable; a second pick would add nothing and
        // is therefore omitted even though k = 2
        let a = Point::new(0, vec![0.0, 0.0]);
        let b = Point::new(1, vec![-1.0, 1000.0]);
        let dataset = vec![a.clone(), b.clone(), Point::new(2, vec![1.0, 1.0])];
        let reps = max_dominance_representatives(&[a, b], &dataset, 2);
        assert_eq!(reps.len(), 1);
        assert_eq!(reps[0].id(), 0);
    }

    #[test]
    fn max_dominance_with_no_coverage_returns_one() {
        // nothing is dominated at all: a single (arbitrary) representative
        let sky = contour(3);
        let reps = max_dominance_representatives(&sky, &sky, 2);
        assert_eq!(reps.len(), 1);
    }

    #[test]
    fn distance_reps_are_spread_along_the_contour() {
        let sky = contour(100);
        let reps = distance_based_representatives(&sky, 3);
        assert_eq!(reps.len(), 3);
        let mut xs: Vec<f64> = reps.iter().map(|p| p.coord(0)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // expect near both extremes and the middle-ish
        assert!(xs[0] < 25.0, "{xs:?}");
        assert!(xs[2] > 75.0, "{xs:?}");
    }

    #[test]
    fn distance_reps_seed_is_best_overall() {
        // symmetric contour: the seed minimises normalised distance to origin
        let sky = contour(11);
        let reps = distance_based_representatives(&sky, 1);
        assert_eq!(reps.len(), 1);
        assert_eq!(
            reps[0].id(),
            5,
            "middle of the contour is closest to origin"
        );
    }

    #[test]
    fn k_larger_than_skyline_returns_all() {
        let sky = contour(4);
        assert_eq!(distance_based_representatives(&sky, 10).len(), 4);
    }

    #[test]
    fn representatives_are_skyline_members() {
        let sky = contour(30);
        for rep in distance_based_representatives(&sky, 5) {
            assert!(sky.iter().any(|p| p.id() == rep.id()));
        }
    }
}
