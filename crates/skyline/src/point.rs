//! The `d`-dimensional data point type shared by every algorithm in the suite.
//!
//! Following the paper's QoS convention (Section II), **lower values are
//! better on every dimension**: attribute values are normalised so that the
//! skyline is the contour towards the origin. A [`Point`] carries a stable
//! `u64` identifier so that skylines computed by different algorithms (and on
//! different partitions of the same dataset) can be compared set-wise.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A point in a `d`-dimensional QoS data space.
///
/// Coordinates are stored as a boxed slice: two words on the stack instead of
/// a `Vec`'s three, which matters because skyline windows copy points around.
///
/// Invariants enforced by construction:
/// * at least one dimension,
/// * every coordinate is finite (NaN/±∞ would break the dominance relation's
///   partial-order axioms).
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Point {
    id: u64,
    coords: Box<[f64]>,
}

impl Point {
    /// Creates a point with identifier `id` and the given coordinates.
    ///
    /// # Panics
    ///
    /// Panics if `coords` is empty or contains a non-finite value.
    pub fn new(id: u64, coords: impl Into<Box<[f64]>>) -> Self {
        let coords = coords.into();
        assert!(!coords.is_empty(), "Point must have at least one dimension");
        assert!(
            coords.iter().all(|v| v.is_finite()),
            "Point coordinates must be finite (id={id})"
        );
        Self { id, coords }
    }

    /// Fallible constructor used when ingesting untrusted data.
    pub fn try_new(id: u64, coords: impl Into<Box<[f64]>>) -> Result<Self, crate::SkylineError> {
        let coords = coords.into();
        if coords.is_empty() {
            return Err(crate::SkylineError::EmptyPoint { id });
        }
        if let Some(i) = coords.iter().position(|v| !v.is_finite()) {
            return Err(crate::SkylineError::NonFiniteCoordinate { id, dim: i });
        }
        Ok(Self { id, coords })
    }

    /// The stable identifier of this point (e.g. a web-service id).
    #[inline]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Number of dimensions `d`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.coords.len()
    }

    /// The coordinate on dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.dim()`.
    #[inline]
    pub fn coord(&self, i: usize) -> f64 {
        self.coords[i]
    }

    /// All coordinates as a slice.
    #[inline]
    pub fn coords(&self) -> &[f64] {
        &self.coords
    }

    /// Euclidean distance from the origin (the radial coordinate `r` of the
    /// paper's Eq. (1)).
    pub fn radius(&self) -> f64 {
        self.coords.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Sum of coordinates — a cheap monotone scoring function: if
    /// `p.l1_norm() < q.l1_norm()` then `q` cannot dominate `p`. Used by the
    /// SFS presort.
    pub fn l1_norm(&self) -> f64 {
        self.coords.iter().sum()
    }

    /// The entropy score `Σ ln(1 + v_i)` of Chomicki et al., also monotone
    /// with respect to dominance for non-negative coordinates.
    pub fn entropy_score(&self) -> f64 {
        self.coords.iter().map(|v| (1.0 + v.max(0.0)).ln()).sum()
    }

    /// Projects the point onto the first `d` dimensions, keeping the id.
    ///
    /// Used by the dimensionality sweeps of Figures 5 and 7, where the same
    /// dataset is evaluated at d ∈ {2, 4, 6, 8, 10}.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0` or `d > self.dim()`.
    pub fn project(&self, d: usize) -> Point {
        assert!(
            d >= 1 && d <= self.dim(),
            "invalid projection dimension {d}"
        );
        Point {
            id: self.id,
            coords: self.coords[..d].into(),
        }
    }

    /// Approximate serialized size in bytes, used by the shuffle-volume
    /// accounting of the MapReduce cost model (8 bytes per coordinate plus
    /// the 8-byte id).
    #[inline]
    pub fn wire_size(&self) -> usize {
        8 + 8 * self.dim()
    }
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}{:?}", self.id, &self.coords[..])
    }
}

/// Builds points from rows of coordinates, assigning sequential ids.
///
/// Convenience for tests and examples:
///
/// ```
/// use skyline_algos::point::points_from_rows;
/// let pts = points_from_rows(&[vec![1.0, 2.0], vec![3.0, 0.5]]);
/// assert_eq!(pts[1].id(), 1);
/// ```
pub fn points_from_rows(rows: &[Vec<f64>]) -> Vec<Point> {
    rows.iter()
        .enumerate()
        .map(|(i, r)| Point::new(i as u64, r.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_stores_id_and_coords() {
        let p = Point::new(7, vec![1.0, 2.0, 3.0]);
        assert_eq!(p.id(), 7);
        assert_eq!(p.dim(), 3);
        assert_eq!(p.coord(1), 2.0);
        assert_eq!(p.coords(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "at least one dimension")]
    fn new_rejects_empty() {
        let _ = Point::new(0, vec![]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn new_rejects_nan() {
        let _ = Point::new(0, vec![1.0, f64::NAN]);
    }

    #[test]
    fn try_new_reports_bad_dimension() {
        let err = Point::try_new(3, vec![1.0, f64::INFINITY]).unwrap_err();
        match err {
            crate::SkylineError::NonFiniteCoordinate { id, dim } => {
                assert_eq!((id, dim), (3, 1));
            }
            other => panic!("unexpected error {other:?}"),
        }
        assert!(matches!(
            Point::try_new(9, Vec::<f64>::new()).unwrap_err(),
            crate::SkylineError::EmptyPoint { id: 9 }
        ));
    }

    #[test]
    fn radius_matches_euclidean_norm() {
        let p = Point::new(0, vec![3.0, 4.0]);
        assert!((p.radius() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn l1_and_entropy_scores() {
        let p = Point::new(0, vec![1.0, 2.0]);
        assert!((p.l1_norm() - 3.0).abs() < 1e-12);
        let expected = (2.0f64).ln() + (3.0f64).ln();
        assert!((p.entropy_score() - expected).abs() < 1e-12);
    }

    #[test]
    fn project_keeps_prefix_and_id() {
        let p = Point::new(5, vec![1.0, 2.0, 3.0, 4.0]);
        let q = p.project(2);
        assert_eq!(q.id(), 5);
        assert_eq!(q.coords(), &[1.0, 2.0]);
    }

    #[test]
    #[should_panic]
    fn project_rejects_zero() {
        let p = Point::new(0, vec![1.0]);
        let _ = p.project(0);
    }

    #[test]
    fn wire_size_counts_id_plus_coords() {
        let p = Point::new(0, vec![0.0; 10]);
        assert_eq!(p.wire_size(), 88);
    }

    #[test]
    fn points_from_rows_assigns_sequential_ids() {
        let pts = points_from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        assert_eq!(pts.iter().map(Point::id).collect::<Vec<_>>(), vec![0, 1, 2]);
    }
}
