//! Property-based equivalence of the columnar kernels against the AoS
//! oracle: `block_bnl` (any window size) and `presort_merge` must return
//! exactly the skyline id-set of `bnl_skyline` over `&[Point]` for
//! arbitrary datasets — including duplicated coordinates and fully equal
//! rows, which small integer grids force constantly. CI runs this file with
//! `--features strict-invariants` so every kernel call additionally
//! self-checks minimality and completeness.

use proptest::prelude::*;
use skyline_algos::block::PointBlock;
use skyline_algos::bnl::{bnl_skyline, BnlConfig};
use skyline_algos::kernel::{block_bnl, presort_merge};
use skyline_algos::point::Point;

fn arb_points() -> impl Strategy<Value = Vec<Point>> {
    (1usize..=6).prop_flat_map(|d| {
        proptest::collection::vec(proptest::collection::vec(0u8..6, d), 1..80).prop_map(|rows| {
            rows.into_iter()
                .enumerate()
                .map(|(i, row)| {
                    Point::new(
                        i as u64,
                        row.iter().map(|&v| f64::from(v)).collect::<Vec<_>>(),
                    )
                })
                .collect()
        })
    })
}

fn oracle_ids(pts: &[Point]) -> Vec<u64> {
    let mut ids: Vec<u64> = bnl_skyline(pts, &BnlConfig::default())
        .iter()
        .map(Point::id)
        .collect();
    ids.sort_unstable();
    ids
}

fn block_ids(b: &PointBlock) -> Vec<u64> {
    let mut ids = b.ids().to_vec();
    ids.sort_unstable();
    ids
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn block_bnl_matches_aos_oracle(pts in arb_points(), window in 0usize..20) {
        let block = PointBlock::from_points(&pts).unwrap();
        // window 0 means unbounded; small windows force multi-pass overflow
        let cfg = if window == 0 {
            BnlConfig::unbounded()
        } else {
            BnlConfig::with_window(window)
        };
        let sky = block_bnl(&block, &cfg);
        prop_assert_eq!(block_ids(&sky), oracle_ids(&pts));
    }

    #[test]
    fn presort_merge_matches_aos_oracle(pts in arb_points()) {
        let block = PointBlock::from_points(&pts).unwrap();
        let sky = presort_merge(&block);
        prop_assert_eq!(block_ids(&sky), oracle_ids(&pts));
    }

    #[test]
    fn block_round_trip_is_lossless(pts in arb_points()) {
        let block = PointBlock::from_points(&pts).unwrap();
        prop_assert_eq!(block.to_points(), pts);
    }
}

#[test]
fn exact_duplicates_all_survive_every_kernel() {
    let pts: Vec<Point> = (0..5).map(|i| Point::new(i, vec![1.0, 2.0])).collect();
    let block = PointBlock::from_points(&pts).unwrap();
    assert_eq!(
        block_ids(&block_bnl(&block, &BnlConfig::default())).len(),
        5
    );
    assert_eq!(block_ids(&presort_merge(&block)).len(), 5);
    assert_eq!(oracle_ids(&pts).len(), 5);
}
