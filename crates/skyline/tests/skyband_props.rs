//! Property-based validation of the k-skyband retention buffer: for
//! arbitrary insert/delete interleavings (small integer grids force
//! heavy dominance, duplicates, and ties) the buffer's served skyline
//! must equal a recompute-from-scratch over the surviving live set
//! after *every* operation — across the repair-from-buffer path, the
//! underflow rebuild path, and re-insertions of previously deleted ids.

use proptest::prelude::*;
use skyline_algos::bnl::{bnl_skyline, BnlConfig};
use skyline_algos::point::Point;
use skyline_algos::skyband::SkybandBuffer;
use std::collections::BTreeMap;

/// One scripted operation, encoded as `(weight, coords, index)`:
/// `weight < 3` inserts a point with the grid coords, anything else
/// deletes the live id at `index % live.len()` (no-op when empty).
type RawOp = (u8, Vec<u8>, usize);

fn arb_script() -> impl Strategy<Value = (usize, Vec<RawOp>)> {
    // k in 1..=5, dim fixed per script, 1..120 ops biased toward churn
    (1usize..=5, 1usize..=4).prop_flat_map(|(k, d)| {
        let op = (0u8..5, proptest::collection::vec(0u8..5, d), 0usize..64);
        (Just(k), proptest::collection::vec(op, 1..120))
    })
}

fn oracle_ids(live: &BTreeMap<u64, Point>) -> Vec<u64> {
    let pts: Vec<Point> = live.values().cloned().collect();
    let mut ids: Vec<u64> = bnl_skyline(&pts, &BnlConfig::default())
        .iter()
        .map(Point::id)
        .collect();
    ids.sort_unstable();
    ids
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn skyband_matches_recompute_after_every_op((k, script) in arb_script()) {
        let mut band = SkybandBuffer::new(k);
        let mut live: BTreeMap<u64, Point> = BTreeMap::new();
        let mut next_id = 1u64;
        for (weight, coords, index) in &script {
            if *weight < 3 || live.is_empty() {
                let p = Point::new(
                    next_id,
                    coords.iter().map(|&v| f64::from(v)).collect::<Vec<_>>(),
                );
                next_id += 1;
                band.insert(p.clone()).expect("finite grid coords");
                live.insert(p.id(), p);
            } else {
                let id = *live.keys().nth(index % live.len()).expect("non-empty");
                live.remove(&id);
                band.delete(id);
            }
            let got: Vec<u64> = band.skyline().iter().map(Point::id).collect();
            prop_assert_eq!(
                &got,
                &oracle_ids(&live),
                "skyline diverged from recompute (k={}, live={})",
                k,
                live.len()
            );
        }
        // the live store itself never drifts
        let mut band_live: Vec<u64> = band.live_points().iter().map(Point::id).collect();
        band_live.sort_unstable();
        let want: Vec<u64> = live.keys().copied().collect();
        prop_assert_eq!(band_live, want);
    }

    #[test]
    fn skyband_reinsertion_of_deleted_ids_is_sound(
        k in 1usize..=4,
        rounds in proptest::collection::vec(proptest::collection::vec(0u8..4, 2), 2..30)
    ) {
        // Insert/delete/re-insert the SAME id with evolving coordinates:
        // stale band entries for a dead generation must never leak into
        // the skyline.
        let mut band = SkybandBuffer::new(k);
        let mut live: BTreeMap<u64, Point> = BTreeMap::new();
        for (i, coords) in rounds.iter().enumerate() {
            let id = (i as u64 % 3) + 1;
            if live.contains_key(&id) {
                band.delete(id);
                live.remove(&id);
            }
            let p = Point::new(id, coords.iter().map(|&v| f64::from(v)).collect::<Vec<_>>());
            band.insert(p.clone()).expect("finite");
            live.insert(id, p);
            let got: Vec<u64> = band.skyline().iter().map(Point::id).collect();
            prop_assert_eq!(&got, &oracle_ids(&live));
        }
    }
}
