//! Model checks of the real `SharedStreamingMerge` absorb path and the
//! parallel chunk engine. Compiled only with
//! `RUSTFLAGS="--cfg mrsky_model"` (the CI `model-check` job), where
//! the sync facade is instrumented.
#![cfg(mrsky_model)]

use mrsky_model::{check_opts, CheckOptions};
use skyline_algos::block::PointBlock;
use skyline_algos::incremental::{SharedStreamingMerge, StreamingMerge};
use skyline_algos::parallel::parallel_skyline;
use skyline_algos::point::Point;
use std::collections::BTreeSet;
use std::sync::Mutex as StdMutex;

fn opts() -> CheckOptions {
    CheckOptions {
        preemption_bound: 2,
        random_walks: 8,
        max_iterations: 5_000,
        ..CheckOptions::default()
    }
}

fn block(rows: &[(u64, [f64; 2])]) -> PointBlock {
    let points: Vec<Point> = rows
        .iter()
        .map(|(id, coords)| Point::new(*id, coords.to_vec()))
        .collect();
    PointBlock::from_points(&points).expect("uniform dims")
}

/// Racing absorbers feeding overlapping local skylines (a chaos retry
/// re-delivers id 1): the final skyline must be bit-identical across
/// every explored schedule and each id credited exactly once.
#[test]
fn model_streaming_merge_absorption_is_schedule_invariant() {
    let outcomes = StdMutex::new(BTreeSet::new());
    check_opts(&opts(), || {
        let merge = SharedStreamingMerge::new(StreamingMerge::new(2));
        let a = block(&[(0, [1.0, 4.0]), (1, [2.0, 2.0])]);
        let b = block(&[(1, [2.0, 2.0]), (2, [4.0, 1.0])]);
        let credited = mrsky_model::sync::scope(|s| {
            let h = s.spawn(|| merge.absorb_block(&a));
            let mine = merge.absorb_block(&b);
            let theirs = h.join().unwrap_or(0);
            mine + theirs
        });
        assert_eq!(credited, 3, "id 1 double- or un-credited");
        assert_eq!(merge.absorbed(), 3);
        let mut ids = merge.into_skyline().ids().to_vec();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2]);
        outcomes.lock().unwrap().insert(ids);
    });
    assert_eq!(
        outcomes.lock().unwrap().len(),
        1,
        "skyline must be bit-identical across schedules"
    );
}

/// The real parallel chunk engine under the model scheduler: the
/// cursor handoff must produce the exact sequential skyline on every
/// schedule.
#[test]
fn model_parallel_chunks_match_sequential_skyline() {
    let report = check_opts(&opts(), || {
        let points = vec![
            Point::new(0, vec![1.0, 4.0]),
            Point::new(1, vec![2.0, 2.0]),
            Point::new(2, vec![4.0, 1.0]),
            Point::new(3, vec![3.0, 3.0]),
        ];
        let mut ids: Vec<u64> = parallel_skyline(&points, 2)
            .expect("no chaos, no panics")
            .iter()
            .map(Point::id)
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2]);
    });
    assert!(report.executions >= 1);
}
