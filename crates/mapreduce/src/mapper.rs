//! The `Mapper` and `Combiner` user-code traits.

use crate::types::{DataT, Emitter, KeyT, TaskContext};

/// User map function: consumes one input record, emits intermediate pairs.
///
/// Implementations must be pure with respect to the record (no cross-record
/// state): the runtime may re-run a map task after an injected failure and
/// expects identical output. Charge algorithm CPU cost to
/// [`TaskContext::add_work`]; record/byte counts are maintained by the
/// framework.
pub trait Mapper<I: DataT, K: KeyT, V: DataT>: Send + Sync {
    /// Processes `record`, emitting zero or more `(key, value)` pairs.
    fn map(&self, record: &I, ctx: &mut TaskContext, out: &mut Emitter<K, V>);
}

/// Blanket impl so plain closures can serve as mappers.
impl<I: DataT, K: KeyT, V: DataT, F> Mapper<I, K, V> for F
where
    F: Fn(&I, &mut TaskContext, &mut Emitter<K, V>) + Send + Sync,
{
    fn map(&self, record: &I, ctx: &mut TaskContext, out: &mut Emitter<K, V>) {
        self(record, ctx, out);
    }
}

/// Optional map-side aggregation, run once per `(map task, key)` group after
/// the task's records are mapped — Hadoop's combiner, and the natural slot
/// for the paper's *local skyline computation* middle process when it is
/// executed map-side rather than as a first reduce job.
///
/// Must be *idempotent in effect*: `combine(combine(vs)) == combine(vs)` up
/// to order, because the reducer will see the union of combiner outputs from
/// many map tasks and may apply the same aggregation again.
pub trait Combiner<K: KeyT, V: DataT>: Send + Sync {
    /// Reduces the values of one key group within one map task.
    fn combine(&self, key: &K, values: Vec<V>, ctx: &mut TaskContext) -> Vec<V>;
}

/// Blanket impl so plain closures can serve as combiners.
impl<K: KeyT, V: DataT, F> Combiner<K, V> for F
where
    F: Fn(&K, Vec<V>, &mut TaskContext) -> Vec<V> + Send + Sync,
{
    fn combine(&self, key: &K, values: Vec<V>, ctx: &mut TaskContext) -> Vec<V> {
        self(key, values, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_is_a_mapper() {
        let mapper = |r: &u32, ctx: &mut TaskContext, out: &mut Emitter<u32, u32>| {
            ctx.add_work(1);
            out.emit(r % 2, *r);
        };
        let mut ctx = TaskContext::new(0, 0);
        let mut em = Emitter::new(None);
        Mapper::map(&mapper, &7, &mut ctx, &mut em);
        let (pairs, _) = em.into_parts();
        assert_eq!(pairs, vec![(1, 7)]);
        assert_eq!(ctx.work_units(), 1);
    }

    #[test]
    fn closure_is_a_combiner() {
        let combiner =
            |_k: &u32, vs: Vec<u32>, _ctx: &mut TaskContext| vec![vs.iter().sum::<u32>()];
        let mut ctx = TaskContext::new(0, 0);
        let out = Combiner::combine(&combiner, &0, vec![1, 2, 3], &mut ctx);
        assert_eq!(out, vec![6]);
    }
}
