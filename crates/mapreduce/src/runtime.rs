//! Job execution: real parallel map/combine/reduce plus simulated cluster
//! timing.
//!
//! A job runs in the standard phases:
//!
//! 1. the input is cut into `num_map_tasks` contiguous splits;
//! 2. map tasks run in parallel on the host thread pool; each task maps its
//!    records, optionally combines per key, and reports counters;
//! 3. the shuffle routes pairs to `num_reducers` reduce tasks and groups by
//!    key (sorted);
//! 4. reduce tasks run in parallel and emit outputs;
//! 5. the per-task simulated durations (from the [`CostModel`]) are placed
//!    onto the simulated cluster's map and reduce slots by the
//!    discrete-event scheduler, giving the Map/Reduce phase spans that the
//!    paper's Figure 6 reports.
//!
//! Injected task failures re-run deterministically and charge the wasted
//! attempts' time to the task's simulated duration.
//!
//! Two failure models coexist:
//!
//! * [`FailureConfig`] *prices* failures — attempts multiply the simulated
//!   duration, but the real code runs once;
//! * a chaos [`FaultPlan`] on [`JobSpec::chaos`] makes real paths
//!   re-execute: map attempts genuinely re-run (discarding the failed
//!   attempt's partial output) on injected DFS-read or map-task faults,
//!   and reduce tasks re-fetch dropped/corrupted shuffle segments, with
//!   the plan's deterministic backoff charged to the sim clock. Because
//!   the plan never faults the final attempt of its budget, `run_job`
//!   stays infallible under any plan.

use crate::cost::CostModel;
use crate::dfs::{SpillReader, SpillStore};
use crate::mapper::{Combiner, Mapper};
use crate::metrics::{JobMetrics, PeakMemBytes, PhaseMetrics};
use crate::pool::{self, ExecutorMode};
use crate::reducer::Reducer;
use crate::scheduler::{schedule_phase, SpeculationConfig};
use crate::shuffle::{default_router, shuffle_with, KeyRouter, OwnedMergeFn};
use crate::task::{FailureConfig, Phase};
use crate::types::{DataT, Emitter, KeyT, KvSizer, TaskContext};
use mrsky_chaos::{FaultKind, FaultPlan, FaultSite};
use mrsky_model::sync::{AtomicU64, Mutex, Ordering};
use mrsky_trace::{EventKind, PhaseKind, Tracer};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

/// The simulated cluster: how many servers, and how many concurrent task
/// slots each server offers per phase (Hadoop 0.20 defaulted to 2 map and
/// 2 reduce slots per TaskTracker).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Number of worker servers.
    pub servers: usize,
    /// Concurrent map tasks per server.
    pub map_slots_per_server: usize,
    /// Concurrent reduce tasks per server.
    pub reduce_slots_per_server: usize,
}

impl ClusterConfig {
    /// A cluster of `servers` workers with Hadoop-default 2+2 slots.
    ///
    /// # Panics
    ///
    /// Panics if `servers == 0`.
    pub fn new(servers: usize) -> Self {
        assert!(servers >= 1, "cluster needs at least one server");
        Self {
            servers,
            map_slots_per_server: 2,
            reduce_slots_per_server: 2,
        }
    }

    /// Total map slots.
    pub fn map_slots(&self) -> usize {
        self.servers * self.map_slots_per_server
    }

    /// Total reduce slots.
    pub fn reduce_slots(&self) -> usize {
        self.servers * self.reduce_slots_per_server
    }

    /// Checks that the cluster can make progress at all: at least one
    /// server and at least one slot of each kind. Returns every problem
    /// found, so plan-time analysis can report them together instead of
    /// panicking on the first one mid-run.
    pub fn validate(&self) -> Result<(), Vec<String>> {
        let mut problems = Vec::new();
        if self.servers == 0 {
            problems.push("cluster has zero servers".to_string());
        }
        if self.map_slots_per_server == 0 {
            problems.push("cluster has zero map slots per server".to_string());
        }
        if self.reduce_slots_per_server == 0 {
            problems.push("cluster has zero reduce slots per server".to_string());
        }
        if problems.is_empty() {
            Ok(())
        } else {
            Err(problems)
        }
    }
}

/// Everything that configures a job apart from the user code.
pub struct JobSpec<K, V> {
    /// Job name, used in reports and in the failure-injection hash.
    pub name: String,
    /// Number of map tasks; `0` means auto: one split per
    /// [`RECORDS_PER_SPLIT`] input records, the way Hadoop derives splits
    /// from input size (not from cluster size) — so small clusters process
    /// the same splits in more waves.
    pub num_map_tasks: usize,
    /// Number of reduce tasks (≥ 1).
    pub num_reducers: usize,
    /// Simulated cluster.
    pub cluster: ClusterConfig,
    /// Cost model for simulated durations.
    pub cost: CostModel,
    /// Failure injection.
    pub failure: FailureConfig,
    /// Speculative execution policy.
    pub speculation: SpeculationConfig,
    /// Host threads for real execution; `0` means all available cores.
    pub threads: usize,
    /// Key→reducer routing; `None` uses the hash router.
    pub router: Option<KeyRouter<K>>,
    /// Wire-size estimator for shuffle byte accounting; `None` uses
    /// `size_of`.
    pub sizer: Option<KvSizer<K, V>>,
    /// Data-locality model for map scheduling.
    pub locality: LocalityConfig,
    /// Structured trace destination; [`Tracer::disabled`] (the default)
    /// costs one branch per emission site.
    pub tracer: Tracer,
    /// Chaos fault plan driving *real* re-execution of map attempts and
    /// shuffle fetches; [`FaultPlan::off`] (the default) injects nothing.
    pub chaos: FaultPlan,
    /// Ownership-transfer merge applied during the shuffle; `None` (the
    /// default) keeps the row shuffle's per-pair value lists. The skyline
    /// pipeline installs a `PointBlock`-appending merge so reduce inputs
    /// arrive as single concatenated buffers.
    pub owned_merge: Option<OwnedMergeFn<V>>,
    /// Real-execution task scheduler: work-stealing (default) or static
    /// contiguous chunks (the pre-stealing baseline kept for comparison).
    pub executor: ExecutorMode,
    /// Spill policy for oversized reduce inputs; `None` keeps everything in
    /// memory.
    pub spill: Option<SpillConfig<V>>,
}

/// Disk-spill policy for reduce inputs: any reduce task whose shuffled input
/// exceeds `budget_bytes` is serialized to `dir` (via the
/// [`SpillStore`](crate::dfs::SpillStore) frame format) right after the
/// shuffle, dropped from memory, and re-read value-by-value when its reduce
/// task runs. The encode/decode pair is supplied by the job because the
/// runtime is generic over `V`; the skyline pipeline installs a flat
/// little-endian `PointBlock` codec.
pub struct SpillConfig<V> {
    /// Reduce inputs above this many (wire-accounted) bytes spill to disk.
    pub budget_bytes: u64,
    /// Directory the spill files are written to.
    pub dir: PathBuf,
    /// Serializes one value into a spill frame.
    pub encode: SpillEncodeFn<V>,
    /// Reconstructs a value from a spill frame. Must be the exact inverse
    /// of `encode` — reduce outputs are bit-compared against unspilled runs.
    pub decode: SpillDecodeFn<V>,
}

/// Serializer for one spilled value (see [`SpillConfig::encode`]).
pub type SpillEncodeFn<V> = Arc<dyn Fn(&V) -> Vec<u8> + Send + Sync>;

/// Deserializer for one spill frame (see [`SpillConfig::decode`]).
pub type SpillDecodeFn<V> = Arc<dyn Fn(&[u8]) -> V + Send + Sync>;

impl<V> Clone for SpillConfig<V> {
    fn clone(&self) -> Self {
        Self {
            budget_bytes: self.budget_bytes,
            dir: self.dir.clone(),
            encode: Arc::clone(&self.encode),
            decode: Arc::clone(&self.decode),
        }
    }
}

/// Auto split sizing: records per map split (≈ a small HDFS block of
/// 100-byte records). Input-derived, cluster-independent.
pub const RECORDS_PER_SPLIT: usize = 1600;

/// Data-locality model for the map phase (HDFS block placement + the
/// JobTracker's preference for replica-holding servers). Off by default so
/// the paper-figure timings are placement-independent; the ablation suite
/// and tests exercise it.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalityConfig {
    /// Enable locality-aware map scheduling.
    pub enabled: bool,
    /// HDFS-style replication factor per split block.
    pub replication: usize,
    /// Extra simulated seconds a map task pays to read a remote block.
    pub remote_penalty: f64,
    /// Placement seed.
    pub seed: u64,
}

impl Default for LocalityConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            replication: 3,
            remote_penalty: 0.5,
            seed: 0,
        }
    }
}

impl LocalityConfig {
    /// HDFS defaults (3 replicas, 0.5 s remote-read penalty), enabled.
    pub fn enabled() -> Self {
        Self {
            enabled: true,
            ..Self::default()
        }
    }
}

impl<K: KeyT, V: DataT> JobSpec<K, V> {
    /// A job named `name` on `cluster` with one reducer and defaults
    /// everywhere else.
    pub fn new(name: impl Into<String>, cluster: ClusterConfig) -> Self {
        Self {
            name: name.into(),
            num_map_tasks: 0,
            num_reducers: 1,
            cluster,
            cost: CostModel::default(),
            failure: FailureConfig::none(),
            speculation: SpeculationConfig::default(),
            threads: 0,
            router: None,
            sizer: None,
            locality: LocalityConfig::default(),
            tracer: Tracer::disabled(),
            chaos: FaultPlan::off(),
            owned_merge: None,
            executor: ExecutorMode::default(),
            spill: None,
        }
    }

    /// Sets the structured trace destination (builder style).
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Installs an ownership-transfer shuffle merge (builder style).
    pub fn with_owned_merge(mut self, merge: OwnedMergeFn<V>) -> Self {
        self.owned_merge = Some(merge);
        self
    }

    /// Selects the real-execution scheduler (builder style).
    pub fn with_executor(mut self, executor: ExecutorMode) -> Self {
        self.executor = executor;
        self
    }

    /// Installs a reduce-input spill policy (builder style).
    pub fn with_spill(mut self, spill: SpillConfig<V>) -> Self {
        self.spill = Some(spill);
        self
    }

    /// Sets the chaos fault plan (builder style).
    pub fn with_chaos(mut self, plan: FaultPlan) -> Self {
        self.chaos = plan;
        self
    }

    /// Sets the reducer count (builder style).
    pub fn with_reducers(mut self, n: usize) -> Self {
        assert!(n >= 1, "jobs need at least one reducer");
        self.num_reducers = n;
        self
    }

    /// Sets an explicit map-task count (builder style).
    pub fn with_map_tasks(mut self, n: usize) -> Self {
        self.num_map_tasks = n;
        self
    }

    fn effective_map_tasks(&self, input_len: usize) -> usize {
        let requested = if self.num_map_tasks == 0 {
            input_len.div_ceil(RECORDS_PER_SPLIT)
        } else {
            self.num_map_tasks
        };
        requested.clamp(1, input_len.max(1))
    }
}

/// The result of a job: outputs grouped per key (sorted within each reduce
/// task, reduce tasks in index order) plus metrics.
pub struct JobResult<K, O> {
    /// `(key, outputs-for-key)` in deterministic order.
    pub groups: Vec<(K, Vec<O>)>,
    /// Job metrics (counters + simulated and wall times).
    pub metrics: JobMetrics,
}

impl<K, O> JobResult<K, O> {
    /// All outputs flattened in deterministic order.
    pub fn into_outputs(self) -> Vec<O> {
        self.groups.into_iter().flat_map(|(_, o)| o).collect()
    }
}

struct MapTaskOut<K, V> {
    pairs: Vec<(K, V)>,
    bytes: u64,
    records_in: u64,
    records_out: u64,
    work_units: u64,
    duration: f64,
    attempts: u32,
    counters: std::collections::BTreeMap<&'static str, u64>,
}

/// Outcome of the (possibly re-executed) real run of one map task.
struct MapAttemptRun<K, V> {
    ctx: TaskContext,
    emitter: Emitter<K, V>,
    /// Chaos re-executions (each one a genuinely discarded attempt).
    retries: u32,
    /// Simulated backoff charged between attempts.
    backoff_seconds: f64,
}

/// Really executes map task `t`, re-running the whole attempt on injected
/// DFS-read or map-task faults: the failed attempt's context and partial
/// emitter are dropped, so retried work is recomputed from the split, not
/// patched up. A panic that was *not* injected propagates unchanged.
fn run_map_attempts<I, K, V, M>(
    spec: &JobSpec<K, V>,
    t: usize,
    prior_retries: u32,
    records: &[I],
    mapper: &M,
) -> MapAttemptRun<K, V>
where
    I: DataT,
    K: KeyT,
    V: DataT,
    M: Mapper<I, K, V>,
{
    let budget = spec.chaos.max_attempts.max(1);
    let mut retries = 0u32;
    let mut faults = 0u64;
    let mut backoff_seconds = 0.0f64;
    loop {
        let attempt = retries;
        let dfs_fault = spec
            .chaos
            .decide(FaultSite::DfsRead, &spec.name, t as u64, attempt);
        let map_fault = if dfs_fault.is_none() {
            spec.chaos
                .decide(FaultSite::MapTask, &spec.name, t as u64, attempt)
        } else {
            None
        };
        let injected = dfs_fault
            .map(|k| (FaultSite::DfsRead, k))
            .or_else(|| map_fault.map(|k| (FaultSite::MapTask, k)));
        if let Some((site, kind)) = injected {
            faults += 1;
            spec.tracer.emit(|| EventKind::FaultInjected {
                site: site.as_str().into(),
                fault: kind.as_str().into(),
                scope: spec.name.clone(),
                index: t as u64,
                attempt: u64::from(attempt),
            });
        }
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if let Some(kind) = dfs_fault {
                // the block read fails before the mapper sees any record
                return Err(format!("chaos: injected {kind} reading split {t}"));
            }
            let mut ctx = TaskContext::new(t, prior_retries + retries);
            let mut emitter = Emitter::new(spec.sizer.clone());
            let mid = records.len() / 2;
            for (idx, record) in records.iter().enumerate() {
                if idx == mid {
                    if let Some(kind) = map_fault {
                        // mid-split, so the partial emitter really is lost
                        match kind {
                            FaultKind::Panic => {
                                panic!("chaos: injected panic in map task {t}")
                            }
                            other => {
                                return Err(format!("chaos: injected {other} in map task {t}"))
                            }
                        }
                    }
                }
                ctx.add_records_in(1);
                mapper.map(record, &mut ctx, &mut emitter);
            }
            if records.is_empty() {
                if let Some(kind) = map_fault {
                    return Err(format!("chaos: injected {kind} in map task {t}"));
                }
            }
            Ok((ctx, emitter))
        }));
        match outcome {
            Ok(Ok((mut ctx, emitter))) => {
                if faults > 0 {
                    ctx.incr("chaos_faults_injected", faults);
                    ctx.incr("chaos_map_retries", u64::from(retries));
                }
                return MapAttemptRun {
                    ctx,
                    emitter,
                    retries,
                    backoff_seconds,
                };
            }
            // injected failures retry below; anything else propagates
            Ok(Err(_)) if injected.is_some() => {}
            Err(_) if matches!(injected, Some((_, FaultKind::Panic))) => {}
            Ok(Err(message)) => panic!("map task {t} failed without an injected fault: {message}"),
            Err(payload) => std::panic::resume_unwind(payload),
        }
        backoff_seconds += spec.chaos.backoff.delay_seconds(attempt);
        retries += 1;
        // the plan never faults the final budgeted attempt, so only a plan
        // with a budget larger than its own max_attempts could land here
        if retries >= budget {
            spec.tracer.emit(|| EventKind::TaskRetryExhausted {
                site: FaultSite::MapTask.as_str().into(),
                scope: spec.name.clone(),
                index: t as u64,
                attempts: u64::from(retries),
            });
            panic!("chaos: map task {t} exhausted its {budget}-attempt budget");
        }
    }
}

/// Concurrent high-water gauge over logical resident bytes: workers
/// `acquire` when data becomes resident and `release` when it is dropped or
/// spilled; `peak` is the largest concurrent total seen.
struct MemTracker {
    current: AtomicU64,
    peak: AtomicU64,
}

impl MemTracker {
    fn new() -> Self {
        Self {
            current: AtomicU64::new(0),
            peak: AtomicU64::new(0),
        }
    }

    fn acquire(&self, bytes: u64) {
        // ORDERING: Relaxed — the gauge is advisory accounting, never used
        // for synchronization; the CAS loop only needs atomicity of the max.
        let now = self.current.fetch_add(bytes, Ordering::Relaxed) + bytes;
        let mut seen = self.peak.load(Ordering::Relaxed);
        while now > seen {
            // ORDERING: Relaxed CAS — monotonic max, atomicity is enough.
            match self
                .peak
                .compare_exchange(seen, now, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(actual) => seen = actual,
            }
        }
    }

    fn release(&self, bytes: u64) {
        self.current.fetch_sub(bytes, Ordering::Relaxed);
    }

    fn peak(&self) -> u64 {
        // ORDERING: Relaxed — read after the phase's threads have joined.
        self.peak.load(Ordering::Relaxed)
    }
}

/// Where one reduce task's shuffled input lives between the shuffle and the
/// task's execution: in memory, or spilled to a frame file with only the
/// keys and per-key value counts retained.
enum ReduceSource<K, V> {
    Mem(Vec<(K, Vec<V>)>),
    Spilled {
        path: PathBuf,
        keys: Vec<(K, usize)>,
    },
}

/// Runs a complete MapReduce job. See the module docs for the phase
/// structure and timing semantics.
pub fn run_job<I, K, V, O, M, R>(
    spec: &JobSpec<K, V>,
    input: &[I],
    mapper: &M,
    combiner: Option<&dyn Combiner<K, V>>,
    reducer: &R,
) -> JobResult<K, O>
where
    I: DataT,
    K: KeyT,
    V: DataT,
    O: DataT,
    M: Mapper<I, K, V>,
    R: Reducer<K, V, O>,
{
    // Durations come from the tracer's epoch clock (deterministic
    // SimClock unless the caller injected a wall clock), keeping job
    // metrics byte-reproducible under checkpoint/resume.
    let wall_start_us = spec.tracer.now_us();
    let threads = if spec.threads == 0 {
        pool::default_threads()
    } else {
        spec.threads
    };
    spec.tracer.emit(|| EventKind::JobStarted {
        job: spec.name.clone(),
    });

    // Logical resident-byte gauges for the two in-flight data plateaus:
    // buffered map output (held until the shuffle consumes it) and shuffled
    // reduce input (held until its reduce task finishes or it spills).
    let map_mem = MemTracker::new();
    let reduce_mem = MemTracker::new();

    // ---- Map phase (real execution) ----
    let num_map_tasks = spec.effective_map_tasks(input.len());
    let splits = split_ranges(input.len(), num_map_tasks);
    // Surface executor rebalancing as causal trace events: the observer
    // fires on the thief's thread the moment it pops a victim's task.
    let on_map_steal = |thief: usize, victim: usize, task: usize| {
        spec.tracer.emit(|| EventKind::TaskStolen {
            job: spec.name.clone(),
            phase: PhaseKind::Map,
            task: task as u64,
            thief: thief as u64,
            victim: victim as u64,
        });
    };
    let map_results: Vec<MapTaskOut<K, V>> = pool::run_indexed_observed(
        num_map_tasks,
        threads,
        spec.executor,
        spec.tracer
            .is_enabled()
            .then_some(&on_map_steal as pool::StealObserver<'_>),
        |t| {
            let attempts = spec.failure.attempts_used(&spec.name, Phase::Map, t);
            let (lo, hi) = splits[t];
            let run = run_map_attempts(spec, t, attempts - 1, &input[lo..hi], mapper);
            let mut ctx = run.ctx;
            let mut emitter = run.emitter;
            if let Some(c) = combiner {
                let (pairs, _) = emitter.into_parts();
                let mut by_key: BTreeMap<K, Vec<V>> = BTreeMap::new();
                for (k, v) in pairs {
                    by_key.entry(k).or_default().push(v);
                }
                let mut combined: Vec<(K, V)> = Vec::new();
                for (k, vs) in by_key {
                    for v in c.combine(&k, vs, &mut ctx) {
                        combined.push((k.clone(), v));
                    }
                }
                emitter = Emitter::from_pairs(combined, spec.sizer.clone());
            }
            let records_out = emitter.len() as u64;
            let bytes = emitter.bytes();
            ctx.add_records_out(records_out);
            ctx.add_bytes_out(bytes);
            let single =
                spec.cost
                    .task_duration(ctx.records_in(), ctx.records_out(), ctx.work_units())
                    * spec.failure.straggler_multiplier(&spec.name, Phase::Map, t);
            let (pairs, bytes) = emitter.into_parts();
            // The task's buffered output becomes resident now and stays resident
            // until the shuffle has consumed every map buffer.
            map_mem.acquire(bytes);
            let total_attempts = attempts + run.retries;
            MapTaskOut {
                pairs,
                bytes,
                records_in: ctx.records_in(),
                records_out,
                work_units: ctx.work_units(),
                duration: single * f64::from(total_attempts) + run.backoff_seconds,
                attempts: total_attempts,
                counters: ctx.counters().clone(),
            }
        },
    );

    let map_durations: Vec<f64> = map_results.iter().map(|m| m.duration).collect();
    for &d in &map_durations {
        mrsky_trace::metrics().observe_quantile("mapreduce.task_seconds.map", d);
    }
    let (map_schedule, map_local_tasks) = if spec.locality.enabled {
        let blocks = crate::dfs::BlockStore::place(
            num_map_tasks,
            spec.cluster.servers,
            spec.locality.replication,
            spec.locality.seed,
        );
        let scheduled = crate::scheduler::schedule_phase_with_locality(
            &map_durations,
            spec.cluster.servers,
            spec.cluster.map_slots_per_server,
            0.0,
            &blocks,
            spec.locality.remote_penalty,
            &spec.speculation,
        );
        if spec.tracer.is_enabled() {
            for ts in &scheduled.0.timeline {
                let server = ts.slot / spec.cluster.map_slots_per_server;
                spec.tracer.emit(|| EventKind::DfsBlockRead {
                    job: spec.name.clone(),
                    task: ts.task as u64,
                    server: server as u64,
                    local: blocks.is_local(ts.task, server),
                });
            }
        }
        scheduled
    } else {
        (
            schedule_phase(
                &map_durations,
                spec.cluster.map_slots(),
                0.0,
                &spec.speculation,
            ),
            0,
        )
    };
    let map_attempts: Vec<u32> = map_results.iter().map(|m| m.attempts).collect();
    emit_phase_trace(
        &spec.tracer,
        &spec.name,
        PhaseKind::Map,
        &map_schedule,
        &map_attempts,
    );

    let mut map_metrics = PhaseMetrics {
        tasks: num_map_tasks,
        attempts: map_results.iter().map(|m| m.attempts).sum(),
        records_in: map_results.iter().map(|m| m.records_in).sum(),
        records_out: map_results.iter().map(|m| m.records_out).sum(),
        bytes_out: map_results.iter().map(|m| m.bytes).sum(),
        work_units: map_results.iter().map(|m| m.work_units).sum(),
        sim_start: 0.0,
        sim_end: map_schedule.end,
        task_durations: map_durations,
        speculative_wins: map_schedule.speculative_wins,
        data_local_tasks: map_local_tasks,
        counters: Default::default(),
    };
    for m in &map_results {
        map_metrics.merge_counters(&m.counters);
    }
    map_metrics.sim_end = map_schedule.end;

    // ---- Shuffle ----
    let router = spec.router.clone().unwrap_or_else(default_router);
    let map_outputs: Vec<(Vec<(K, V)>, u64)> = map_results
        .into_iter()
        .map(|m| (m.pairs, m.bytes))
        .collect();
    let map_out_bytes: u64 = map_outputs.iter().map(|(_, b)| *b).sum();
    let reduce_inputs = shuffle_with(
        map_outputs,
        spec.num_reducers,
        &router,
        spec.owned_merge.as_ref(),
    );
    map_mem.release(map_out_bytes);
    let shuffle_bytes: u64 = reduce_inputs.iter().map(|r| r.bytes).sum();
    if spec.tracer.is_enabled() {
        for (r, rin) in reduce_inputs.iter().enumerate() {
            spec.tracer.emit(|| EventKind::ShufflePartition {
                job: spec.name.clone(),
                reducer: r as u64,
                bytes: rin.bytes,
                records: rin.records,
                segments: rin.segments,
            });
            // One causal shuffle edge per contributing map task, so the
            // analyzer (and Perfetto's flow arrows) can see exactly which
            // map outputs each reduce task waited on.
            for &m in &rin.sources {
                spec.tracer.emit(|| EventKind::CausalEdge {
                    edge: "shuffle".into(),
                    src: format!("task:{}/map/{m}", spec.name),
                    dst: format!("task:{}/reduce/{r}", spec.name),
                });
            }
        }
        // The reduce phase cannot start before every map task has finished:
        // the shuffle barrier, as an explicit happens-before edge.
        spec.tracer.emit(|| EventKind::CausalEdge {
            edge: "barrier".into(),
            src: format!("phase:{}/map", spec.name),
            dst: format!("phase:{}/reduce", spec.name),
        });
    }

    // Convert each reduce input into a consume-once source, spilling any
    // input over the memory budget to disk right away (its bytes leave the
    // resident gauge; only the keys and per-key counts stay in memory).
    struct ReduceTaskMeta {
        bytes: u64,
        segments: u64,
    }
    let mut spill_write_errors = 0u64;
    let spill_store = spec.spill.as_ref().and_then(|cfg| {
        SpillStore::create(&cfg.dir)
            .map_err(|_| spill_write_errors += 1)
            .ok()
    });
    let mut task_meta: Vec<ReduceTaskMeta> = Vec::with_capacity(reduce_inputs.len());
    let sources: Vec<Mutex<Option<ReduceSource<K, V>>>> = reduce_inputs
        .into_iter()
        .enumerate()
        .map(|(r, rin)| {
            task_meta.push(ReduceTaskMeta {
                bytes: rin.bytes,
                segments: rin.segments,
            });
            reduce_mem.acquire(rin.bytes);
            let groups = rin.groups;
            let source = match (&spec.spill, &spill_store) {
                (Some(cfg), Some(store)) if rin.bytes > cfg.budget_bytes => {
                    let keys: Vec<(K, usize)> =
                        groups.iter().map(|(k, vs)| (k.clone(), vs.len())).collect();
                    let frames = groups
                        .iter()
                        .flat_map(|(_, vs)| vs.iter())
                        .map(|v| (cfg.encode)(v));
                    match store.write_frames(&spec.name, r, frames) {
                        Ok(path) => {
                            reduce_mem.release(rin.bytes);
                            ReduceSource::Spilled { path, keys }
                        }
                        // A failed spill falls back to memory: correctness
                        // over the budget, with the failure counted.
                        Err(_) => {
                            spill_write_errors += 1;
                            ReduceSource::Mem(groups)
                        }
                    }
                }
                _ => ReduceSource::Mem(groups),
            };
            Mutex::new(Some(source))
        })
        .collect();

    // ---- Reduce phase (real execution) ----
    struct ReduceTaskOut<K, O> {
        groups: Vec<(K, Vec<O>)>,
        records_in: u64,
        records_out: u64,
        work_units: u64,
        duration: f64,
        attempts: u32,
        counters: std::collections::BTreeMap<&'static str, u64>,
    }
    let on_reduce_steal = |thief: usize, victim: usize, task: usize| {
        spec.tracer.emit(|| EventKind::TaskStolen {
            job: spec.name.clone(),
            phase: PhaseKind::Reduce,
            task: task as u64,
            thief: thief as u64,
            victim: victim as u64,
        });
    };
    let reduce_results: Vec<ReduceTaskOut<K, O>> = pool::run_indexed_observed(
        sources.len(),
        threads,
        spec.executor,
        spec.tracer
            .is_enabled()
            .then_some(&on_reduce_steal as pool::StealObserver<'_>),
        |t| {
            let meta = &task_meta[t];
            let attempts = spec.failure.attempts_used(&spec.name, Phase::Reduce, t);
            let mut ctx = TaskContext::new(t, attempts - 1);

            // Chaos: every map-output segment must be fetched intact before
            // the reducer runs; a dropped or corrupted segment is really
            // re-fetched (the retry loop gates delivery) with backoff
            // charged to the sim clock.
            let fetch_scope = format!("{}/r{t}", spec.name);
            let mut refetches = 0u32;
            let mut fetch_faults = 0u64;
            let mut fetch_backoff = 0.0f64;
            for seg in 0..meta.segments {
                let mut attempt = 0u32;
                while let Some(kind) =
                    spec.chaos
                        .decide(FaultSite::ShuffleFetch, &fetch_scope, seg, attempt)
                {
                    fetch_faults += 1;
                    spec.tracer.emit(|| EventKind::FaultInjected {
                        site: FaultSite::ShuffleFetch.as_str().into(),
                        fault: kind.as_str().into(),
                        scope: fetch_scope.clone(),
                        index: seg,
                        attempt: u64::from(attempt),
                    });
                    fetch_backoff += spec.chaos.backoff.delay_seconds(attempt);
                    refetches += 1;
                    attempt += 1;
                }
            }
            if fetch_faults > 0 {
                ctx.incr("chaos_faults_injected", fetch_faults);
                ctx.incr("chaos_shuffle_refetches", u64::from(refetches));
            }

            // Take ownership of this task's input (each source is consumed
            // exactly once), reloading spilled inputs just in time so only
            // the currently-reducing spilled inputs are resident.
            let source = sources[t]
                .lock()
                .take()
                .expect("each reduce input is consumed exactly once");
            let owned_groups: Vec<(K, Vec<V>)> = match source {
                ReduceSource::Mem(groups) => groups,
                ReduceSource::Spilled { path, keys } => {
                    ctx.incr("spilled_inputs", 1);
                    reduce_mem.acquire(meta.bytes);
                    let cfg = spec
                        .spill
                        .as_ref()
                        .expect("spilled input implies a spill config");
                    let mut reader = SpillReader::open(&path)
                        .unwrap_or_else(|e| panic!("open spill {}: {e}", path.display()));
                    let mut groups: Vec<(K, Vec<V>)> = Vec::with_capacity(keys.len());
                    for (k, n) in keys {
                        let mut vs: Vec<V> = Vec::with_capacity(n);
                        for _ in 0..n {
                            let frame = reader
                                .next_frame()
                                .unwrap_or_else(|e| panic!("read spill {}: {e}", path.display()))
                                .unwrap_or_else(|| panic!("spill {} truncated", path.display()));
                            vs.push((cfg.decode)(&frame));
                        }
                        groups.push((k, vs));
                    }
                    let _ = reader.remove();
                    groups
                }
            };

            let mut groups: Vec<(K, Vec<O>)> = Vec::with_capacity(owned_groups.len());
            for (k, vs) in owned_groups {
                ctx.add_records_in(vs.len() as u64);
                let mut out: Vec<O> = Vec::new();
                reducer.reduce(&k, vs, &mut ctx, &mut out);
                ctx.add_records_out(out.len() as u64);
                groups.push((k, out));
            }
            reduce_mem.release(meta.bytes);
            let compute =
                spec.cost
                    .task_duration(ctx.records_in(), ctx.records_out(), ctx.work_units())
                    * spec
                        .failure
                        .straggler_multiplier(&spec.name, Phase::Reduce, t);
            let fetch = spec.cost.shuffle_duration(meta.bytes, meta.segments);
            let per_segment = if meta.segments > 0 {
                fetch / meta.segments as f64
            } else {
                0.0
            };
            ReduceTaskOut {
                groups,
                records_in: ctx.records_in(),
                records_out: ctx.records_out(),
                work_units: ctx.work_units(),
                duration: (compute + fetch) * f64::from(attempts)
                    + per_segment * f64::from(refetches)
                    + fetch_backoff,
                attempts,
                counters: ctx.counters().clone(),
            }
        },
    );

    let reduce_durations: Vec<f64> = reduce_results.iter().map(|r| r.duration).collect();
    for &d in &reduce_durations {
        mrsky_trace::metrics().observe_quantile("mapreduce.task_seconds.reduce", d);
    }
    for meta in &task_meta {
        mrsky_trace::metrics().observe_quantile(
            "mapreduce.shuffle_fetch_seconds",
            spec.cost.shuffle_duration(meta.bytes, meta.segments),
        );
    }
    let reduce_schedule = schedule_phase(
        &reduce_durations,
        spec.cluster.reduce_slots(),
        map_schedule.end,
        &spec.speculation,
    );
    let reduce_attempts: Vec<u32> = reduce_results.iter().map(|r| r.attempts).collect();
    emit_phase_trace(
        &spec.tracer,
        &spec.name,
        PhaseKind::Reduce,
        &reduce_schedule,
        &reduce_attempts,
    );

    let mut reduce_metrics = PhaseMetrics {
        tasks: reduce_results.len(),
        attempts: reduce_results.iter().map(|r| r.attempts).sum(),
        records_in: reduce_results.iter().map(|r| r.records_in).sum(),
        records_out: reduce_results.iter().map(|r| r.records_out).sum(),
        bytes_out: 0,
        work_units: reduce_results.iter().map(|r| r.work_units).sum(),
        sim_start: map_schedule.end,
        sim_end: reduce_schedule.end,
        task_durations: reduce_durations,
        speculative_wins: reduce_schedule.speculative_wins,
        data_local_tasks: 0,
        counters: Default::default(),
    };
    for r in &reduce_results {
        reduce_metrics.merge_counters(&r.counters);
    }
    if spill_write_errors > 0 {
        let errs: BTreeMap<&'static str, u64> = [("spill_write_errors", spill_write_errors)]
            .into_iter()
            .collect();
        reduce_metrics.merge_counters(&errs);
    }

    let groups: Vec<(K, Vec<O>)> = reduce_results.into_iter().flat_map(|r| r.groups).collect();

    let peak_mem = PeakMemBytes {
        map_out: map_mem.peak(),
        reduce_in: reduce_mem.peak(),
    };
    spec.tracer.emit(|| EventKind::PhasePeakMemory {
        job: spec.name.clone(),
        phase: PhaseKind::Map,
        peak_bytes: peak_mem.map_out,
    });
    spec.tracer.emit(|| EventKind::PhasePeakMemory {
        job: spec.name.clone(),
        phase: PhaseKind::Reduce,
        peak_bytes: peak_mem.reduce_in,
    });
    // Global gauges for dashboard scrapes (no-ops while the registry is
    // disabled); gauge_max so chained jobs report the run-wide high water.
    let registry = mrsky_trace::metrics();
    registry.gauge_max("mapreduce.peak_mem.map_out_bytes", peak_mem.map_out as f64);
    registry.gauge_max(
        "mapreduce.peak_mem.reduce_in_bytes",
        peak_mem.reduce_in as f64,
    );

    let sim_total = spec.cost.job_overhead + reduce_schedule.end;
    let metrics = JobMetrics {
        name: spec.name.clone(),
        map: map_metrics,
        reduce: reduce_metrics,
        shuffle_bytes,
        job_overhead: spec.cost.job_overhead,
        sim_total,
        wall_seconds: spec.tracer.now_us().saturating_sub(wall_start_us) as f64 / 1e6,
        peak_mem,
    };
    spec.tracer.emit(|| EventKind::JobFinished {
        job: spec.name.clone(),
        sim_total: metrics.sim_total,
        wall_seconds: metrics.wall_seconds,
    });

    JobResult { groups, metrics }
}

/// Emits the task-lifecycle trace of one scheduled phase: the phase
/// announcement, each task's queue/launch/retry/speculation/completion,
/// and the phase close. `attempts[t]` is the total attempt count of task
/// `t` (1 = no retries).
fn emit_phase_trace(
    tracer: &Tracer,
    job: &str,
    phase: PhaseKind,
    schedule: &crate::scheduler::PhaseSchedule,
    attempts: &[u32],
) {
    if !tracer.is_enabled() {
        return;
    }
    tracer.emit(|| EventKind::PhaseStarted {
        job: job.to_string(),
        phase,
        tasks: schedule.timeline.len() as u64,
        sim: schedule.start,
    });
    for ts in &schedule.timeline {
        let task = ts.task as u64;
        tracer.emit(|| EventKind::TaskScheduled {
            job: job.to_string(),
            phase,
            task,
        });
        tracer.emit(|| EventKind::TaskLaunched {
            job: job.to_string(),
            phase,
            task,
            slot: ts.slot as u64,
            sim: ts.start,
        });
        for attempt in 1..attempts.get(ts.task).copied().unwrap_or(1) {
            tracer.emit(|| EventKind::TaskRetried {
                job: job.to_string(),
                phase,
                task,
                attempt: u64::from(attempt),
            });
        }
        if ts.speculative {
            // The simplified scheduler records only winning backups.
            tracer.emit(|| EventKind::TaskSpeculated {
                job: job.to_string(),
                phase,
                task,
                won: true,
            });
        }
        tracer.emit(|| EventKind::TaskFinished {
            job: job.to_string(),
            phase,
            task,
            slot: ts.slot as u64,
            sim_start: ts.start,
            sim_end: ts.end,
            speculative: ts.speculative,
        });
    }
    // Causal edges for slot occupancy: the first task launched on each slot
    // is dispatched by the phase start; every later task on that slot waits
    // for its predecessor to release the slot. Together with the barrier and
    // shuffle edges these tile the whole schedule, so the critical-path
    // analyzer can walk end-to-start without gaps.
    let mut by_slot: BTreeMap<usize, Vec<&crate::scheduler::TaskSlot>> = BTreeMap::new();
    for ts in &schedule.timeline {
        by_slot.entry(ts.slot).or_default().push(ts);
    }
    for spans in by_slot.values_mut() {
        spans.sort_by(|a, b| a.start.total_cmp(&b.start));
        let mut prev: Option<usize> = None;
        for ts in spans {
            let dst = format!("task:{job}/{}/{}", phase.as_str(), ts.task);
            let (edge, src) = match prev {
                None => ("dispatch", format!("phase:{job}/{}", phase.as_str())),
                Some(p) => ("slot", format!("task:{job}/{}/{p}", phase.as_str())),
            };
            tracer.emit(|| EventKind::CausalEdge {
                edge: edge.into(),
                src: src.clone(),
                dst: dst.clone(),
            });
            prev = Some(ts.task);
        }
    }
    tracer.emit(|| EventKind::PhaseFinished {
        job: job.to_string(),
        phase,
        sim: schedule.end,
        speculative_wins: schedule.speculative_wins as u64,
    });
}

/// Runs two jobs back to back: the first job's flattened outputs become the
/// second job's input records, and the metrics are chained (the second job's
/// phases start when the first ends). The paper's Algorithm 1 is exactly
/// this shape — a partitioning job feeding a merging job.
#[allow(clippy::too_many_arguments)]
pub fn run_job_chain<I, K1, V1, O1, K2, V2, O2, M1, R1, M2, R2>(
    spec1: &JobSpec<K1, V1>,
    input: &[I],
    mapper1: &M1,
    combiner1: Option<&dyn Combiner<K1, V1>>,
    reducer1: &R1,
    spec2: &JobSpec<K2, V2>,
    mapper2: &M2,
    combiner2: Option<&dyn Combiner<K2, V2>>,
    reducer2: &R2,
) -> JobResult<K2, O2>
where
    I: DataT,
    K1: KeyT,
    V1: DataT,
    O1: DataT,
    K2: KeyT,
    V2: DataT,
    O2: DataT,
    M1: Mapper<I, K1, V1>,
    R1: Reducer<K1, V1, O1>,
    M2: Mapper<O1, K2, V2>,
    R2: Reducer<K2, V2, O2>,
{
    let first: JobResult<K1, O1> = run_job(spec1, input, mapper1, combiner1, reducer1);
    let first_metrics = first.metrics.clone();
    let intermediate: Vec<O1> = first.into_outputs();
    let second: JobResult<K2, O2> = run_job(spec2, &intermediate, mapper2, combiner2, reducer2);
    let metrics = first_metrics.chain(&second.metrics);
    JobResult {
        groups: second.groups,
        metrics,
    }
}

/// Cuts `len` records into `tasks` contiguous near-equal ranges.
fn split_ranges(len: usize, tasks: usize) -> Vec<(usize, usize)> {
    assert!(tasks >= 1);
    let base = len / tasks;
    let extra = len % tasks;
    let mut out = Vec::with_capacity(tasks);
    let mut lo = 0;
    for t in 0..tasks {
        let size = base + usize::from(t < extra);
        out.push((lo, lo + size));
        lo += size;
    }
    debug_assert_eq!(lo, len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn word_count_spec(servers: usize) -> JobSpec<String, u64> {
        JobSpec::new("wordcount", ClusterConfig::new(servers)).with_reducers(2)
    }

    fn run_word_count(
        spec: &JobSpec<String, u64>,
        docs: &[String],
        combine: bool,
    ) -> JobResult<String, (String, u64)> {
        let mapper = |doc: &String, ctx: &mut TaskContext, out: &mut Emitter<String, u64>| {
            for w in doc.split_whitespace() {
                ctx.add_work(1);
                out.emit(w.to_string(), 1);
            }
        };
        let combiner =
            |_k: &String, vs: Vec<u64>, _ctx: &mut TaskContext| vec![vs.iter().sum::<u64>()];
        let reducer =
            |k: &String, vs: Vec<u64>, ctx: &mut TaskContext, out: &mut Vec<(String, u64)>| {
                ctx.add_work(vs.len() as u64);
                out.push((k.clone(), vs.iter().sum()));
            };
        run_job(
            spec,
            docs,
            &mapper,
            if combine {
                Some(&combiner as &dyn Combiner<String, u64>)
            } else {
                None
            },
            &reducer,
        )
    }

    fn docs() -> Vec<String> {
        vec![
            "the quick brown fox".to_string(),
            "the lazy dog".to_string(),
            "the quick dog barks".to_string(),
            "fox and dog".to_string(),
        ]
    }

    fn counts(result: JobResult<String, (String, u64)>) -> BTreeMap<String, u64> {
        result.into_outputs().into_iter().collect()
    }

    #[test]
    fn word_count_end_to_end() {
        let out = counts(run_word_count(&word_count_spec(2), &docs(), false));
        assert_eq!(out["the"], 3);
        assert_eq!(out["dog"], 3);
        assert_eq!(out["quick"], 2);
        assert_eq!(out["barks"], 1);
    }

    #[test]
    fn combiner_preserves_results_and_cuts_shuffle() {
        // words repeat *within* a document so the map-side combiner has
        // something to aggregate
        let docs = vec!["the the the quick".to_string(), "dog dog lazy".to_string()];
        let plain = run_word_count(&word_count_spec(2), &docs, false);
        let combined = run_word_count(&word_count_spec(2), &docs, true);
        let plain_bytes = plain.metrics.shuffle_bytes;
        let combined_bytes = combined.metrics.shuffle_bytes;
        assert_eq!(counts(plain), counts(combined));
        assert!(
            combined_bytes < plain_bytes,
            "combiner should shrink shuffle: {combined_bytes} vs {plain_bytes}"
        );
    }

    #[test]
    fn deterministic_across_runs_and_thread_counts() {
        let mut spec = word_count_spec(3);
        let a = counts(run_word_count(&spec, &docs(), true));
        spec.threads = 1;
        let b = counts(run_word_count(&spec, &docs(), true));
        spec.threads = 8;
        let c = counts(run_word_count(&spec, &docs(), true));
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn failure_injection_preserves_output_and_charges_time() {
        // force several tasks so the 40% failure rate reliably hits one
        let mut spec = word_count_spec(2).with_map_tasks(4);
        let clean = run_word_count(&spec, &docs(), false);
        spec.failure = FailureConfig::with_rate(400, 11);
        let flaky = run_word_count(&spec, &docs(), false);
        let (clean_attempts, flaky_attempts) = (
            clean.metrics.map.attempts + clean.metrics.reduce.attempts,
            flaky.metrics.map.attempts + flaky.metrics.reduce.attempts,
        );
        let (clean_sim, flaky_sim) = (clean.metrics.sim_total, flaky.metrics.sim_total);
        assert_eq!(counts(clean), counts(flaky));
        assert!(flaky_attempts > clean_attempts, "retries must occur");
        assert!(flaky_sim > clean_sim, "retries must cost simulated time");
    }

    #[test]
    fn more_servers_reduce_simulated_time() {
        // enough records that the map phase has real work per task
        let docs: Vec<String> = (0..2000)
            .map(|i| format!("w{} w{} common", i % 50, i % 7))
            .collect();
        let small = run_word_count(&word_count_spec(2).with_map_tasks(32), &docs, false);
        let large = run_word_count(&word_count_spec(16).with_map_tasks(32), &docs, false);
        assert!(
            large.metrics.sim_total < small.metrics.sim_total,
            "16 servers {} should beat 2 servers {}",
            large.metrics.sim_total,
            small.metrics.sim_total
        );
    }

    #[test]
    fn sim_time_decomposes() {
        let r = run_word_count(&word_count_spec(2), &docs(), false);
        let m = &r.metrics;
        assert!((m.sim_total - (m.job_overhead + m.map_time() + m.reduce_time())).abs() < 1e-9);
        assert!(m.map_time() > 0.0);
        assert!(m.reduce_time() > 0.0);
        assert!(m.wall_seconds >= 0.0);
    }

    #[test]
    fn custom_router_controls_placement() {
        let mut spec: JobSpec<u64, u64> =
            JobSpec::new("routed", ClusterConfig::new(2)).with_reducers(4);
        spec.router = Some(Arc::new(|k: &u64, r: usize| (*k as usize) % r));
        let input: Vec<u64> = (0..100).collect();
        let mapper = |x: &u64, _ctx: &mut TaskContext, out: &mut Emitter<u64, u64>| {
            out.emit(x % 4, *x);
        };
        let reducer =
            |k: &u64, vs: Vec<u64>, _ctx: &mut TaskContext, out: &mut Vec<(u64, usize)>| {
                out.push((*k, vs.len()));
            };
        let result = run_job(&spec, &input, &mapper, None, &reducer);
        let by_key: BTreeMap<u64, usize> = result.into_outputs().into_iter().collect();
        assert_eq!(by_key.len(), 4);
        assert!(by_key.values().all(|&n| n == 25));
    }

    #[test]
    fn empty_input_completes() {
        let spec: JobSpec<u64, u64> = JobSpec::new("empty", ClusterConfig::new(1));
        let mapper = |_x: &u64, _c: &mut TaskContext, _o: &mut Emitter<u64, u64>| {};
        let reducer =
            |_k: &u64, _v: Vec<u64>, _c: &mut TaskContext, _o: &mut Vec<u64>| unreachable!();
        let result: JobResult<u64, u64> = run_job(&spec, &[], &mapper, None, &reducer);
        assert!(result.groups.is_empty());
        assert_eq!(result.metrics.map.records_in, 0);
    }

    #[test]
    fn job_chain_wordcount_then_threshold() {
        // job 1: word count; job 2: keep words seen at least 3 times
        let docs = vec![
            "a a a b b c".to_string(),
            "a b c d".to_string(),
            "a b".to_string(),
        ];
        let spec1 = word_count_spec(2);
        let mut spec2: JobSpec<(), (String, u64)> =
            JobSpec::new("threshold", ClusterConfig::new(2));
        spec2.threads = 1;
        let mapper1 = |doc: &String, _c: &mut TaskContext, out: &mut Emitter<String, u64>| {
            for w in doc.split_whitespace() {
                out.emit(w.to_string(), 1);
            }
        };
        let reducer1 =
            |k: &String, vs: Vec<u64>, _c: &mut TaskContext, out: &mut Vec<(String, u64)>| {
                out.push((k.clone(), vs.iter().sum()));
            };
        let mapper2 =
            |pair: &(String, u64), _c: &mut TaskContext, out: &mut Emitter<(), (String, u64)>| {
                if pair.1 >= 3 {
                    out.emit((), pair.clone());
                }
            };
        let reducer2 =
            |_k: &(), vs: Vec<(String, u64)>, _c: &mut TaskContext, out: &mut Vec<String>| {
                out.extend(vs.into_iter().map(|(w, _)| w));
            };
        let result: JobResult<(), String> = run_job_chain(
            &spec1, &docs, &mapper1, None, &reducer1, &spec2, &mapper2, None, &reducer2,
        );
        let metrics = result.metrics.clone();
        let mut frequent = result.into_outputs();
        frequent.sort();
        assert_eq!(frequent, vec!["a".to_string(), "b".to_string()]);
        assert!(metrics.name.contains("wordcount"));
        assert!(metrics.name.contains("threshold"));
        // chained simulated time covers both jobs' overheads
        assert!(metrics.sim_total > 2.0 * metrics.job_overhead / 2.0);
        assert!(metrics.map.tasks >= 2);
    }

    #[test]
    fn split_ranges_cover_exactly() {
        for len in [0usize, 1, 7, 100] {
            for tasks in [1usize, 2, 3, 8] {
                let ranges = split_ranges(len, tasks);
                assert_eq!(ranges.len(), tasks);
                let mut expected_lo = 0;
                for &(lo, hi) in &ranges {
                    assert_eq!(lo, expected_lo);
                    assert!(hi >= lo);
                    expected_lo = hi;
                }
                assert_eq!(expected_lo, len);
                // near-equal: sizes differ by at most 1
                let sizes: Vec<usize> = ranges.iter().map(|&(l, h)| h - l).collect();
                let mx = sizes.iter().max().unwrap();
                let mn = sizes.iter().min().unwrap();
                assert!(mx - mn <= 1);
            }
        }
    }

    #[test]
    fn map_task_auto_count_follows_input_size() {
        let spec: JobSpec<u64, u64> = JobSpec::new("auto", ClusterConfig::new(3));
        assert_eq!(spec.effective_map_tasks(1000), 1, "one small split");
        assert_eq!(
            spec.effective_map_tasks(100_000),
            63,
            "input-derived splits"
        );
        assert_eq!(spec.effective_map_tasks(5), 1, "one split for tiny input");
        assert_eq!(spec.effective_map_tasks(0), 1);
        // explicit task counts are still capped by the input size
        let explicit: JobSpec<u64, u64> =
            JobSpec::new("explicit", ClusterConfig::new(3)).with_map_tasks(10);
        assert_eq!(explicit.effective_map_tasks(5), 5);
        // split count does not depend on the cluster
        let big: JobSpec<u64, u64> = JobSpec::new("auto", ClusterConfig::new(32));
        assert_eq!(big.effective_map_tasks(100_000), 63);
    }

    #[test]
    fn speculation_rescues_stragglers() {
        let docs: Vec<String> = (0..8000).map(|i| format!("w{}", i % 13)).collect();
        let mut slow = word_count_spec(4).with_map_tasks(16);
        slow.failure = FailureConfig::with_stragglers(400, 10.0, 3);
        let unaided = run_word_count(&slow, &docs, false);
        slow.speculation = SpeculationConfig::enabled();
        let rescued = run_word_count(&slow, &docs, false);
        let (a, b) = (unaided.metrics.sim_total, rescued.metrics.sim_total);
        let wins = rescued.metrics.map.speculative_wins + rescued.metrics.reduce.speculative_wins;
        assert_eq!(counts(unaided), counts(rescued), "results unchanged");
        assert!(b <= a, "speculation must not slow the job: {b} vs {a}");
        assert!(
            wins > 0 || b < a,
            "with 20% stragglers at 10x, speculation should win somewhere"
        );
    }

    #[test]
    fn locality_scheduling_reports_local_tasks_and_preserves_results() {
        let docs: Vec<String> = (0..4000).map(|i| format!("w{}", i % 17)).collect();
        let mut plain = word_count_spec(4);
        let baseline = run_word_count(&plain, &docs, false);
        plain.locality = LocalityConfig::enabled();
        let local = run_word_count(&plain, &docs, false);
        assert_eq!(counts(baseline), counts(local));
    }

    #[test]
    fn locality_metrics_track_local_fraction() {
        let docs: Vec<String> = (0..8000).map(|i| format!("w{}", i % 17)).collect();
        let mut spec = word_count_spec(4);
        spec.locality = LocalityConfig::enabled();
        let r = run_word_count(&spec, &docs, false);
        let local = r.metrics.map.data_local_tasks;
        assert!(local > 0, "3x replication on 4 servers must hit locality");
        assert!(local <= r.metrics.map.tasks);
    }

    #[test]
    fn remote_penalty_costs_simulated_time() {
        let docs: Vec<String> = (0..8000).map(|i| format!("w{}", i % 17)).collect();
        let mut cheap = word_count_spec(8);
        cheap.locality = LocalityConfig {
            enabled: true,
            replication: 1,
            remote_penalty: 0.0,
            seed: 1,
        };
        let mut dear = word_count_spec(8);
        dear.locality = LocalityConfig {
            enabled: true,
            replication: 1,
            remote_penalty: 30.0,
            seed: 1,
        };
        let a = run_word_count(&cheap, &docs, false);
        let b = run_word_count(&dear, &docs, false);
        assert!(
            b.metrics.map.sim_span() >= a.metrics.map.sim_span(),
            "a large remote penalty cannot make the map phase faster"
        );
    }

    #[test]
    fn tracer_records_a_schema_valid_stream() {
        let mut spec = word_count_spec(2).with_map_tasks(4);
        spec.failure = FailureConfig::with_rate(400, 11);
        spec.locality = LocalityConfig::enabled();
        let tracer = Tracer::in_memory();
        spec.tracer = tracer.clone();
        let result = run_word_count(&spec, &docs(), false);
        let events = tracer.drain();
        let problems = mrsky_trace::validate_events(&events);
        assert!(problems.is_empty(), "{problems:?}");
        // Retry events mirror the metrics' extra attempts exactly.
        let retries = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::TaskRetried { .. }))
            .count();
        let extra_attempts = (result.metrics.map.attempts as usize - result.metrics.map.tasks)
            + (result.metrics.reduce.attempts as usize - result.metrics.reduce.tasks);
        assert!(extra_attempts > 0, "failure injection must retry something");
        assert_eq!(retries, extra_attempts);
        // Locality scheduling logs one DFS read per map task.
        let dfs_reads = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::DfsBlockRead { .. }))
            .count();
        assert_eq!(dfs_reads, result.metrics.map.tasks);
        // One shuffle record per reducer.
        let shuffles = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::ShufflePartition { .. }))
            .count();
        assert_eq!(shuffles, spec.num_reducers);
    }

    #[test]
    fn disabled_tracer_leaves_results_unchanged() {
        let spec = word_count_spec(2);
        let traced = {
            let mut s = word_count_spec(2);
            s.tracer = Tracer::in_memory();
            s
        };
        assert_eq!(
            counts(run_word_count(&spec, &docs(), false)),
            counts(run_word_count(&traced, &docs(), false))
        );
    }

    #[test]
    fn speculation_reported_in_metrics() {
        let mut spec = word_count_spec(2);
        spec.speculation = SpeculationConfig::enabled();
        let r = run_word_count(&spec, &docs(), false);
        // no stragglers in this tiny job, but the field must be present/zero
        assert_eq!(r.metrics.map.speculative_wins, 0);
    }

    #[test]
    fn chaos_map_faults_are_really_retried_to_identical_output() {
        use mrsky_chaos::{FaultKind, FaultPlan, FaultSite, SiteRule};
        let docs: Vec<String> = (0..200)
            .map(|i| format!("w{} w{}", i % 13, i % 7))
            .collect();
        let clean = counts(run_word_count(
            &word_count_spec(2).with_map_tasks(8),
            &docs,
            false,
        ));
        for seed in [3u64, 17, 99] {
            let mut plan = FaultPlan::off();
            plan.seed = seed;
            plan.max_attempts = 6;
            plan.rules = vec![
                SiteRule {
                    site: FaultSite::MapTask,
                    kind: FaultKind::TransientError,
                    permille: 350,
                },
                SiteRule {
                    site: FaultSite::MapTask,
                    kind: FaultKind::Panic,
                    permille: 200,
                },
                SiteRule {
                    site: FaultSite::DfsRead,
                    kind: FaultKind::TransientError,
                    permille: 250,
                },
            ];
            let tracer = Tracer::in_memory();
            let mut spec = word_count_spec(2).with_map_tasks(8).with_chaos(plan);
            spec.tracer = tracer.clone();
            let faulty = run_word_count(&spec, &docs, false);
            let injected: u64 = faulty
                .metrics
                .map
                .counters
                .get("chaos_faults_injected")
                .copied()
                .unwrap_or(0);
            let retries: u64 = faulty
                .metrics
                .map
                .counters
                .get("chaos_map_retries")
                .copied()
                .unwrap_or(0);
            assert!(injected > 0, "seed {seed} must inject at least one fault");
            assert_eq!(
                retries, injected,
                "every injected map fault forces one real re-execution"
            );
            let events = tracer.drain();
            let problems = mrsky_trace::validate_events(&events);
            assert!(problems.is_empty(), "{problems:?}");
            let event_faults = events
                .iter()
                .filter(|e| matches!(e.kind, EventKind::FaultInjected { .. }))
                .count() as u64;
            assert_eq!(event_faults, injected);
            assert_eq!(counts(faulty), clean, "seed {seed}: chaos changed output");
        }
    }

    #[test]
    fn chaos_retries_charge_sim_time() {
        use mrsky_chaos::{FaultKind, FaultPlan, FaultSite, SiteRule};
        let docs: Vec<String> = (0..200).map(|i| format!("w{}", i % 11)).collect();
        let mut plan = FaultPlan::off();
        plan.seed = 5;
        plan.max_attempts = 6;
        plan.rules = vec![SiteRule {
            site: FaultSite::MapTask,
            kind: FaultKind::TransientError,
            permille: 500,
        }];
        let clean = run_word_count(&word_count_spec(2).with_map_tasks(8), &docs, false);
        let chaotic = run_word_count(
            &word_count_spec(2).with_map_tasks(8).with_chaos(plan),
            &docs,
            false,
        );
        assert!(
            chaotic.metrics.map.attempts > clean.metrics.map.attempts,
            "retries must show up as extra attempts"
        );
        assert!(
            chaotic.metrics.map.sim_span() > clean.metrics.map.sim_span(),
            "re-execution and backoff must cost simulated time"
        );
        assert_eq!(counts(chaotic), counts(clean));
    }

    #[test]
    fn chaos_shuffle_drops_force_refetches() {
        use mrsky_chaos::{FaultKind, FaultPlan, FaultSite, SiteRule};
        let docs: Vec<String> = (0..400)
            .map(|i| format!("w{} w{}", i % 19, i % 5))
            .collect();
        let mut plan = FaultPlan::off();
        plan.seed = 21;
        plan.max_attempts = 8;
        plan.rules = vec![SiteRule {
            site: FaultSite::ShuffleFetch,
            kind: FaultKind::DropRecord,
            permille: 400,
        }];
        let clean = run_word_count(&word_count_spec(2).with_map_tasks(8), &docs, false);
        let tracer = Tracer::in_memory();
        let mut spec = word_count_spec(2).with_map_tasks(8).with_chaos(plan);
        spec.tracer = tracer.clone();
        let chaotic = run_word_count(&spec, &docs, false);
        let refetches = chaotic
            .metrics
            .reduce
            .counters
            .get("chaos_shuffle_refetches")
            .copied()
            .unwrap_or(0);
        assert!(refetches > 0, "40% drop rate must force some re-fetch");
        assert!(
            chaotic.metrics.reduce.sim_span() > clean.metrics.reduce.sim_span(),
            "re-fetched segments must cost simulated reduce time"
        );
        let events = tracer.drain();
        assert!(events.iter().any(|e| matches!(
            &e.kind,
            EventKind::FaultInjected { site, .. } if site == "shuffle-fetch"
        )));
        assert!(mrsky_trace::validate_events(&events).is_empty());
        assert_eq!(counts(chaotic), counts(clean));
    }

    #[test]
    fn owned_merge_matches_row_shuffle_output() {
        let docs: Vec<String> = (0..300)
            .map(|i| format!("w{} w{} w{}", i % 23, i % 7, i % 3))
            .collect();
        let row = run_word_count(&word_count_spec(2).with_map_tasks(6), &docs, false);
        let merged_spec = word_count_spec(2)
            .with_map_tasks(6)
            .with_owned_merge(Arc::new(|acc: &mut u64, v: u64| {
                *acc += v;
                None
            }));
        let merged = run_word_count(&merged_spec, &docs, false);
        assert_eq!(
            merged.metrics.shuffle_bytes, row.metrics.shuffle_bytes,
            "merge must not change byte attribution"
        );
        // A full-absorption merge hands the reducer one value per key, so
        // its records_in shrinks to the distinct-key count (callers that
        // need routed-pair counts read the ShufflePartition trace events).
        assert!(
            merged.metrics.reduce.records_in < row.metrics.reduce.records_in,
            "merge must shrink the values the reducer touches"
        );
        assert_eq!(counts(row), counts(merged));
    }

    #[test]
    fn executor_modes_agree() {
        let docs: Vec<String> = (0..400)
            .map(|i| format!("w{} x{}", i % 31, i % 5))
            .collect();
        let stealing = run_word_count(&word_count_spec(3).with_map_tasks(8), &docs, false);
        let static_spec = word_count_spec(3)
            .with_map_tasks(8)
            .with_executor(ExecutorMode::Static);
        let fixed = run_word_count(&static_spec, &docs, false);
        assert_eq!(
            stealing.metrics.map.records_in,
            fixed.metrics.map.records_in
        );
        assert_eq!(counts(stealing), counts(fixed));
    }

    #[test]
    fn peak_mem_gauges_are_populated() {
        let r = run_word_count(&word_count_spec(2), &docs(), false);
        assert!(r.metrics.peak_mem.map_out > 0, "map output was buffered");
        assert!(
            r.metrics.peak_mem.reduce_in > 0,
            "reduce input was resident"
        );
        // the shuffle conserves bytes, so both plateaus match total shuffle
        assert_eq!(r.metrics.peak_mem.map_out, r.metrics.shuffle_bytes);
    }

    fn u64_spill(dir: std::path::PathBuf, budget: u64) -> SpillConfig<u64> {
        SpillConfig {
            budget_bytes: budget,
            dir,
            encode: Arc::new(|v: &u64| v.to_le_bytes().to_vec()),
            decode: Arc::new(|b: &[u8]| u64::from_le_bytes(b.try_into().expect("8-byte frame"))),
        }
    }

    #[test]
    fn spilled_reduce_inputs_round_trip_and_lower_peak() {
        let dir = std::env::temp_dir().join(format!("mrsky-rt-spill-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let docs: Vec<String> = (0..500)
            .map(|i| format!("w{} w{}", i % 29, i % 11))
            .collect();
        let clean = run_word_count(&word_count_spec(2).with_map_tasks(8), &docs, false);
        let mut spec = word_count_spec(2).with_map_tasks(8);
        // budget 0: every reduce input spills
        spec = spec.with_spill(u64_spill(dir.clone(), 0));
        let spilled = run_word_count(&spec, &docs, false);
        assert_eq!(
            spilled
                .metrics
                .reduce
                .counters
                .get("spilled_inputs")
                .copied()
                .unwrap_or(0),
            spec.num_reducers as u64,
            "a zero budget spills every reducer's input"
        );
        assert_eq!(counts(clean), counts(spilled), "spill must be lossless");
        // consumed spill files are deleted by the reduce tasks
        let leftovers = std::fs::read_dir(&dir)
            .map(|d| d.filter_map(Result::ok).count())
            .unwrap_or(0);
        assert_eq!(leftovers, 0, "reduce tasks remove consumed spill files");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spill_budget_gates_which_inputs_spill() {
        let dir = std::env::temp_dir().join(format!("mrsky-rt-budget-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let docs: Vec<String> = (0..200).map(|i| format!("w{}", i % 13)).collect();
        // an enormous budget spills nothing
        let mut spec = word_count_spec(2).with_map_tasks(4);
        spec = spec.with_spill(u64_spill(dir.clone(), u64::MAX));
        let r = run_word_count(&spec, &docs, false);
        assert_eq!(
            r.metrics.reduce.counters.get("spilled_inputs"),
            None,
            "inputs under budget stay in memory"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn peak_memory_events_are_emitted_and_schema_valid() {
        let tracer = Tracer::in_memory();
        let mut spec = word_count_spec(2);
        spec.tracer = tracer.clone();
        let r = run_word_count(&spec, &docs(), false);
        let events = tracer.drain();
        assert!(mrsky_trace::validate_events(&events).is_empty());
        let peaks: Vec<u64> = events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::PhasePeakMemory { peak_bytes, .. } => Some(*peak_bytes),
                _ => None,
            })
            .collect();
        assert_eq!(peaks.len(), 2, "one event per phase");
        assert_eq!(peaks[0], r.metrics.peak_mem.map_out);
        assert_eq!(peaks[1], r.metrics.peak_mem.reduce_in);
    }

    #[test]
    fn chaos_with_owned_merge_and_spill_still_exact() {
        use mrsky_chaos::FaultPlan;
        let dir = std::env::temp_dir().join(format!("mrsky-rt-chaos-spill-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let docs: Vec<String> = (0..300)
            .map(|i| format!("w{} w{}", i % 17, i % 5))
            .collect();
        let clean = counts(run_word_count(
            &word_count_spec(2).with_map_tasks(6),
            &docs,
            false,
        ));
        let mut spec = word_count_spec(2)
            .with_map_tasks(6)
            .with_chaos(FaultPlan::heavy(7))
            .with_owned_merge(Arc::new(|acc: &mut u64, v: u64| {
                *acc += v;
                None
            }));
        spec = spec.with_spill(u64_spill(dir.clone(), 0));
        let stressed = run_word_count(&spec, &docs, false);
        assert_eq!(counts(stressed), clean, "merge+spill+chaos stays exact");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaos_is_deterministic_for_a_fixed_seed() {
        use mrsky_chaos::FaultPlan;
        let docs: Vec<String> = (0..150).map(|i| format!("w{}", i % 9)).collect();
        let spec = || {
            word_count_spec(2)
                .with_map_tasks(6)
                .with_chaos(FaultPlan::heavy(42))
        };
        let a = run_word_count(&spec(), &docs, false);
        let b = run_word_count(&spec(), &docs, false);
        assert_eq!(a.metrics.map.attempts, b.metrics.map.attempts);
        assert_eq!(
            a.metrics.map.counters.get("chaos_faults_injected"),
            b.metrics.map.counters.get("chaos_faults_injected")
        );
        assert_eq!(counts(a), counts(b));
    }
}
