//! The `Reducer` user-code trait.

use crate::types::{DataT, KeyT, TaskContext};

/// User reduce function: consumes one key's complete value list, emits
/// outputs.
///
/// Values arrive in a deterministic order (map-task index, then emission
/// order); keys within a reduce task are processed in sorted order. Like
/// mappers, reducers must be re-runnable: failure injection may execute the
/// same task twice.
pub trait Reducer<K: KeyT, V: DataT, O: DataT>: Send + Sync {
    /// Reduces the full value list of `key` into zero or more outputs pushed
    /// onto `out`.
    fn reduce(&self, key: &K, values: Vec<V>, ctx: &mut TaskContext, out: &mut Vec<O>);
}

/// Blanket impl so plain closures can serve as reducers.
impl<K: KeyT, V: DataT, O: DataT, F> Reducer<K, V, O> for F
where
    F: Fn(&K, Vec<V>, &mut TaskContext, &mut Vec<O>) + Send + Sync,
{
    fn reduce(&self, key: &K, values: Vec<V>, ctx: &mut TaskContext, out: &mut Vec<O>) {
        self(key, values, ctx, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_is_a_reducer() {
        let reducer = |k: &u32, vs: Vec<u32>, ctx: &mut TaskContext, out: &mut Vec<u32>| {
            ctx.add_work(vs.len() as u64);
            out.push(k + vs.iter().sum::<u32>());
        };
        let mut ctx = TaskContext::new(0, 0);
        let mut out = Vec::new();
        Reducer::reduce(&reducer, &10, vec![1, 2], &mut ctx, &mut out);
        assert_eq!(out, vec![13]);
        assert_eq!(ctx.work_units(), 2);
    }
}
