//! The calibrated cluster cost model.
//!
//! Converts instrumented task counters into **simulated seconds** on the
//! paper's hardware class (Hadoop 0.20.2, Intel Core 2 Duo E7400 @ 2.99 GHz,
//! 3.25 GB RAM, 1 GB JVM heap, commodity Ethernet). The constants are set
//! once to era-plausible magnitudes and shared by *every* experiment in the
//! suite — reproducing the paper's curve shapes with a single model, rather
//! than tuning constants per figure, is the point of the exercise.
//!
//! | constant | value | rationale |
//! |---|---|---|
//! | `task_startup` | 6.0 s | JVM spawn (no task-JVM reuse in 0.20 defaults), 3 s TaskTracker heartbeats, sort/spill setup — the folklore \"a Hadoop task costs ~10 s even if it does nothing\" overhead |
//! | `job_overhead` | 8.0 s | job submission, setup/cleanup tasks, HDFS staging |
//! | `record_in_cost` | 4 µs | read + deserialize one record from HDFS-ish storage |
//! | `record_out_cost` | 2 µs | serialize + write one record |
//! | `work_unit_cost` | 500 ns | one coordinate visit of a dominance comparison in Hadoop-era Java (boxed `Double` compares, `Writable` deserialization amortised per visited coordinate) |
//! | `shuffle_byte_cost` | 10 ns/B | ~100 MB/s effective copy rate |
//! | `shuffle_segment_latency` | 10 ms | per map×reduce fetch (connection + seek, amortised over Hadoop's 5 parallel copier threads) |

use serde::{Deserialize, Serialize};

/// Cost constants; see the module docs for the calibration table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Fixed per-task-attempt overhead in seconds (JVM start, scheduling).
    pub task_startup: f64,
    /// Fixed per-job overhead in seconds (submission, setup/cleanup).
    pub job_overhead: f64,
    /// Seconds per input record read by a task.
    pub record_in_cost: f64,
    /// Seconds per output record written by a task.
    pub record_out_cost: f64,
    /// Seconds per algorithm work unit (dimension-weighted comparison step).
    pub work_unit_cost: f64,
    /// Seconds per byte crossing the shuffle.
    pub shuffle_byte_cost: f64,
    /// Seconds of latency per (map task → reduce task) fetch segment.
    pub shuffle_segment_latency: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            task_startup: 6.0,
            job_overhead: 8.0,
            record_in_cost: 4e-6,
            record_out_cost: 2e-6,
            work_unit_cost: 5e-7,
            shuffle_byte_cost: 1e-8,
            shuffle_segment_latency: 0.01,
        }
    }
}

impl CostModel {
    /// A model with all overheads zeroed — useful in unit tests where only
    /// one component should influence a duration.
    pub fn zero() -> Self {
        Self {
            task_startup: 0.0,
            job_overhead: 0.0,
            record_in_cost: 0.0,
            record_out_cost: 0.0,
            work_unit_cost: 0.0,
            shuffle_byte_cost: 0.0,
            shuffle_segment_latency: 0.0,
        }
    }

    /// Checks that every constant is finite and non-negative — a negative
    /// or NaN cost silently corrupts every schedule and report downstream,
    /// so plan-time analysis rejects such models up front.
    pub fn validate(&self) -> Result<(), Vec<String>> {
        let fields = [
            ("task_startup", self.task_startup),
            ("job_overhead", self.job_overhead),
            ("record_in_cost", self.record_in_cost),
            ("record_out_cost", self.record_out_cost),
            ("work_unit_cost", self.work_unit_cost),
            ("shuffle_byte_cost", self.shuffle_byte_cost),
            ("shuffle_segment_latency", self.shuffle_segment_latency),
        ];
        let problems: Vec<String> = fields
            .iter()
            .filter(|(_, v)| !(v.is_finite() && *v >= 0.0))
            .map(|(name, v)| format!("cost model field {name} = {v} (must be finite and >= 0)"))
            .collect();
        if problems.is_empty() {
            Ok(())
        } else {
            Err(problems)
        }
    }

    /// Simulated duration of one task attempt given its counters.
    pub fn task_duration(&self, records_in: u64, records_out: u64, work_units: u64) -> f64 {
        self.task_startup
            + records_in as f64 * self.record_in_cost
            + records_out as f64 * self.record_out_cost
            + work_units as f64 * self.work_unit_cost
    }

    /// Simulated time for one reduce task to fetch its shuffle input:
    /// `segments` fetches (one per contributing map task) of `bytes` total.
    pub fn shuffle_duration(&self, bytes: u64, segments: u64) -> f64 {
        bytes as f64 * self.shuffle_byte_cost + segments as f64 * self.shuffle_segment_latency
    }

    /// Work units equivalent to an `n`-row presort — charged by tasks that
    /// run a sort-based skyline kernel (SFS, SaLSa), so the simulated
    /// timeline pays for the `O(n log n)` sort those kernels front-load
    /// instead of crediting them with dominance tests avoided for free.
    ///
    /// One sort-key comparison is half a work unit: a key compare is a
    /// single boxed-`Double` compare in the Hadoop-era frame, against the
    /// work unit's full dominance *coordinate visit* (compare + branch +
    /// `Writable` amortisation) — same era, roughly half the work.
    pub fn presort_work_units(rows: u64) -> u64 {
        if rows < 2 {
            return 0;
        }
        let comparisons = rows as f64 * (rows as f64).log2();
        (comparisons / 2.0).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_hadoop_magnitude() {
        let m = CostModel::default();
        // a trivial task is dominated by startup
        let d = m.task_duration(0, 0, 0);
        assert!((d - 6.0).abs() < 1e-12);
        // a million-record scan takes seconds, not micro- or kilo-seconds
        let d = m.task_duration(1_000_000, 0, 0);
        assert!(d > 4.0 && d < 12.0, "{d}");
    }

    #[test]
    fn duration_is_monotone_in_every_counter() {
        let m = CostModel::default();
        let base = m.task_duration(100, 100, 100);
        assert!(m.task_duration(200, 100, 100) > base);
        assert!(m.task_duration(100, 200, 100) > base);
        assert!(m.task_duration(100, 100, 200) > base);
    }

    #[test]
    fn presort_units_are_n_log_n_shaped() {
        assert_eq!(CostModel::presort_work_units(0), 0);
        assert_eq!(CostModel::presort_work_units(1), 0);
        // n·log2(n)/2 exactly at a power of two
        assert_eq!(CostModel::presort_work_units(1024), 1024 * 10 / 2);
        // superlinear but far below quadratic
        let small = CostModel::presort_work_units(1_000);
        let big = CostModel::presort_work_units(10_000);
        assert!(big > 10 * small, "{big} vs {small}");
        assert!(big < 100 * small, "{big} vs {small}");
    }

    #[test]
    fn shuffle_charges_bytes_and_latency() {
        let m = CostModel::default();
        let d = m.shuffle_duration(100_000_000, 10);
        // 1 s of bytes + 0.1 s of latency
        assert!((d - 1.1).abs() < 1e-9, "{d}");
        assert_eq!(CostModel::zero().shuffle_duration(1 << 30, 100), 0.0);
    }

    #[test]
    fn zero_model_charges_nothing() {
        let m = CostModel::zero();
        assert_eq!(m.task_duration(1000, 1000, 1000), 0.0);
    }

    #[test]
    fn clone_and_eq_derives_work() {
        let m = CostModel::default();
        assert_eq!(m.clone(), m);
        assert_ne!(CostModel::zero(), m);
    }
}
