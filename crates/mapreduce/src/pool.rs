//! A minimal work-stealing-free task pool on scoped threads.
//!
//! The runtime's real execution needs exactly one primitive: run `n`
//! independent tasks on up to `threads` OS threads and collect their results
//! in task order. A shared atomic cursor hands out task indices; each worker
//! loops until the cursor runs dry. No channels, no dynamic spawning, no
//! unsafe — the scoped-thread borrow proves the closure outlives the
//! workers (the pattern recommended by the Rust concurrency guides this
//! repo follows).
//!
//! All synchronization goes through the `mrsky-model` facade, so the
//! cursor/slot handoff is model-checked under `--cfg mrsky_model`
//! (`tests/model.rs`): no task is lost, none runs twice, and a worker
//! panic cannot strand the scope.

use mrsky_model::sync::{scope, AtomicUsize, Mutex, Ordering};

/// Runs `count` tasks with `worker(i)` on up to `threads` threads and
/// returns the results ordered by task index.
///
/// `worker` must not panic: a panicking task aborts the whole run (the
/// scoped-thread join propagates it), which is the desired behaviour —
/// *injected* failures are modelled above this layer, real bugs should
/// crash loudly.
pub fn run_indexed<R, F>(count: usize, threads: usize, worker: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Send + Sync,
{
    assert!(threads >= 1, "need at least one worker thread");
    if count == 0 {
        return Vec::new();
    }
    let threads = threads.min(count);
    if threads == 1 {
        return (0..count).map(worker).collect();
    }

    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..count).map(|_| Mutex::new(None)).collect();

    // A panicking worker unwinds through the scope at join, which is the
    // desired crash-loudly behaviour documented above.
    scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                // ORDERING: Relaxed — the cursor is a pure ticket
                // dispenser; slot publication is ordered by each slot's
                // mutex, not by the cursor.
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let result = worker(i);
                *slots[i].lock() = Some(result);
            });
        }
    });

    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("every task index visited exactly once")
        })
        .collect()
}

/// Default worker-thread count: the host's available parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZero::get)
        .unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_are_in_task_order() {
        let out = run_indexed(100, 8, |i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn zero_tasks() {
        let out: Vec<u32> = run_indexed(0, 4, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn single_thread_path() {
        let out = run_indexed(10, 1, |i| i + 1);
        assert_eq!(out, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let hits = AtomicU64::new(0);
        let _ = run_indexed(1000, 16, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn more_threads_than_tasks_is_fine() {
        let out = run_indexed(3, 64, |i| i);
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        let _ = run_indexed(1, 0, |i| i);
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }
}
