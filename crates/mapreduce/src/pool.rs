//! A work-stealing task pool on scoped threads.
//!
//! The runtime's real execution needs exactly one primitive: run `n`
//! independent tasks on up to `threads` OS threads and collect their results
//! in task order. Each worker owns a deque seeded with a contiguous range of
//! task indices; the owner pops from the front, and a worker whose deque
//! runs dry steals from the *back* of a victim's deque (Chase-Lev style:
//! owner and thieves work opposite ends, so they contend only on the last
//! task of a range). Stealing moves one task at a time and executes it
//! immediately, so a task is only ever "in flight" while it is actually
//! running — a worker that finds every deque empty can exit knowing all
//! remaining work is already being executed by someone else. No channels, no
//! dynamic spawning, no unsafe.
//!
//! All synchronization goes through the `mrsky-model` facade, so the
//! deque handoff is model-checked under `--cfg mrsky_model`
//! (`tests/model.rs`): no task is lost, none runs twice, and a worker
//! panic cannot strand the scope.
//!
//! [`run_indexed_static`] keeps the pre-stealing behaviour — contiguous
//! chunks assigned up front, no rebalancing — as the baseline the scale
//! bench and the equivalence suite compare against: a straggler chunk gates
//! completion there, while the stealing pool redistributes it.

use mrsky_model::sync::{scope, AtomicUsize, Mutex, Ordering};
use std::collections::VecDeque;

/// How [`run_indexed_mode`] distributes tasks over workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutorMode {
    /// Per-worker deques with steal-from-the-back rebalancing (the default).
    #[default]
    WorkStealing,
    /// Contiguous chunks fixed at launch; stragglers gate completion. Kept
    /// as the comparison baseline for benches and equivalence tests.
    Static,
}

/// Runs `count` tasks with `worker(i)` on up to `threads` threads and
/// returns the results ordered by task index, using the work-stealing
/// executor.
///
/// `worker` must not panic: a panicking task aborts the whole run (the
/// scoped-thread join propagates it), which is the desired behaviour —
/// *injected* failures are modelled above this layer, real bugs should
/// crash loudly.
pub fn run_indexed<R, F>(count: usize, threads: usize, worker: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Send + Sync,
{
    run_indexed_mode(count, threads, ExecutorMode::WorkStealing, worker)
}

/// Runs `count` tasks with the executor selected by `mode`. Both modes
/// produce identical, task-index-ordered results; they differ only in which
/// thread runs which task and therefore in wall-clock behaviour under skew.
pub fn run_indexed_mode<R, F>(count: usize, threads: usize, mode: ExecutorMode, worker: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Send + Sync,
{
    run_indexed_observed(count, threads, mode, None, worker)
}

/// Observer invoked at each successful steal as `(thief, victim, task)`,
/// where `thief`/`victim` are worker indices in `0..threads` and `task` is
/// the stolen task index. Called from worker threads, concurrently.
pub type StealObserver<'a> = &'a (dyn Fn(usize, usize, usize) + Sync);

/// [`run_indexed_mode`] with an optional steal observer, so the runtime can
/// surface rebalancing decisions as trace events without the executor
/// knowing anything about tracing. The observer fires on the thief's thread
/// immediately after it pops a task from a victim's deque, before the task
/// runs; the static executor never steals and never calls it.
pub fn run_indexed_observed<R, F>(
    count: usize,
    threads: usize,
    mode: ExecutorMode,
    on_steal: Option<StealObserver<'_>>,
    worker: F,
) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Send + Sync,
{
    assert!(threads >= 1, "need at least one worker thread");
    if count == 0 {
        return Vec::new();
    }
    let threads = threads.min(count);
    if threads == 1 {
        return (0..count).map(worker).collect();
    }
    match mode {
        ExecutorMode::WorkStealing => run_stealing(count, threads, on_steal, worker),
        ExecutorMode::Static => run_static(count, threads, worker),
    }
}

/// The static baseline: worker `w` executes the `w`-th contiguous chunk of
/// task indices, fixed at launch. See [`ExecutorMode::Static`].
pub fn run_indexed_static<R, F>(count: usize, threads: usize, worker: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Send + Sync,
{
    run_indexed_mode(count, threads, ExecutorMode::Static, worker)
}

/// Typed rejection from a bounded submission: accepting the batch would
/// have pushed the pool's outstanding-task count past its capacity. The
/// caller decides whether to shed, retry later, or run degraded —
/// nothing queues unboundedly inside the executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolOverloaded {
    /// Outstanding tasks observed at the rejection.
    pub pending: usize,
    /// The limit's capacity.
    pub capacity: usize,
    /// Size of the rejected batch.
    pub rejected: usize,
}

impl std::fmt::Display for PoolOverloaded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "pool overloaded: batch of {} rejected at {}/{} outstanding tasks",
            self.rejected, self.pending, self.capacity
        )
    }
}

impl std::error::Error for PoolOverloaded {}

/// A shared cap on outstanding submitted tasks. [`run_indexed_bounded`]
/// reserves the batch size up front and rejects with [`PoolOverloaded`]
/// when the reservation would exceed capacity; the reservation is
/// released when the batch finishes (or is rejected), so the limit
/// tracks live work, not history.
pub struct PoolLimit {
    capacity: usize,
    pending: AtomicUsize,
}

impl PoolLimit {
    /// Creates a limit allowing `capacity` outstanding tasks.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            pending: AtomicUsize::new(0),
        }
    }

    /// Outstanding reserved tasks.
    pub fn pending(&self) -> usize {
        self.pending.load(Ordering::Acquire)
    }

    /// The limit's capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn try_reserve(&self, n: usize) -> Result<(), PoolOverloaded> {
        let mut cur = self.pending.load(Ordering::Acquire);
        loop {
            if cur + n > self.capacity {
                return Err(PoolOverloaded {
                    pending: cur,
                    capacity: self.capacity,
                    rejected: n,
                });
            }
            match self
                .pending
                .compare_exchange(cur, cur + n, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return Ok(()),
                Err(actual) => cur = actual,
            }
        }
    }

    fn release(&self, n: usize) {
        self.pending.fetch_sub(n, Ordering::Release);
    }
}

/// [`run_indexed`] behind a bounded submission gate: the whole batch is
/// admitted against `limit` or rejected with a typed error before any
/// task runs.
///
/// # Errors
///
/// [`PoolOverloaded`] when `count` outstanding-task reservations do not
/// fit under the limit's capacity.
pub fn run_indexed_bounded<R, F>(
    count: usize,
    threads: usize,
    limit: &PoolLimit,
    worker: F,
) -> Result<Vec<R>, PoolOverloaded>
where
    R: Send,
    F: Fn(usize) -> R + Send + Sync,
{
    limit.try_reserve(count)?;
    // Release even if a worker panics and unwinds through the scope.
    struct Release<'a>(&'a PoolLimit, usize);
    impl Drop for Release<'_> {
        fn drop(&mut self) {
            self.0.release(self.1);
        }
    }
    let _release = Release(limit, count);
    Ok(run_indexed(count, threads, worker))
}

fn run_stealing<R, F>(
    count: usize,
    threads: usize,
    on_steal: Option<StealObserver<'_>>,
    worker: F,
) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Send + Sync,
{
    // Seed each worker's deque with a contiguous range (same assignment the
    // static executor uses), so with zero steals the two modes touch the
    // same data from the same threads.
    let deques: Vec<Mutex<VecDeque<usize>>> = chunk_ranges(count, threads)
        .into_iter()
        .map(|(lo, hi)| Mutex::new((lo..hi).collect()))
        .collect();
    let slots: Vec<Mutex<Option<R>>> = (0..count).map(|_| Mutex::new(None)).collect();

    // A panicking worker unwinds through the scope at join, which is the
    // desired crash-loudly behaviour documented above.
    scope(|s| {
        for w in 0..threads {
            let deques = &deques;
            let slots = &slots;
            let worker = &worker;
            s.spawn(move || loop {
                // Own deque first: pop the front (task order, cache-warm).
                let mut task = deques[w].lock().pop_front();
                if task.is_none() {
                    // Dry: steal one task from the back of the first
                    // non-empty victim, scanning round-robin from w+1.
                    for k in 1..threads {
                        let v = (w + k) % threads;
                        task = deques[v].lock().pop_back();
                        if let Some(i) = task {
                            if let Some(observe) = on_steal {
                                observe(w, v, i);
                            }
                            break;
                        }
                    }
                }
                match task {
                    Some(i) => {
                        let result = worker(i);
                        *slots[i].lock() = Some(result);
                    }
                    // Every deque is empty: all remaining tasks are already
                    // executing on other workers. Nothing left to help with.
                    None => break,
                }
            });
        }
    });

    collect_slots(slots)
}

fn run_static<R, F>(count: usize, threads: usize, worker: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Send + Sync,
{
    let ranges = chunk_ranges(count, threads);
    let slots: Vec<Mutex<Option<R>>> = (0..count).map(|_| Mutex::new(None)).collect();
    scope(|s| {
        for &(lo, hi) in &ranges {
            let slots = &slots;
            let worker = &worker;
            s.spawn(move || {
                for (i, slot) in slots.iter().enumerate().take(hi).skip(lo) {
                    let result = worker(i);
                    *slot.lock() = Some(result);
                }
            });
        }
    });
    collect_slots(slots)
}

fn collect_slots<R>(slots: Vec<Mutex<Option<R>>>) -> Vec<R> {
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("every task index visited exactly once")
        })
        .collect()
}

/// Cuts `count` task indices into `threads` contiguous near-equal ranges.
fn chunk_ranges(count: usize, threads: usize) -> Vec<(usize, usize)> {
    let base = count / threads;
    let extra = count % threads;
    let mut out = Vec::with_capacity(threads);
    let mut lo = 0;
    for t in 0..threads {
        let size = base + usize::from(t < extra);
        out.push((lo, lo + size));
        lo += size;
    }
    out
}

/// Default worker-thread count: the `MRSKY_THREADS` environment variable
/// when set to a positive integer (so benches and CI can pin parallelism),
/// otherwise the host's available parallelism.
pub fn default_threads() -> usize {
    let fallback = std::thread::available_parallelism()
        .map(std::num::NonZero::get)
        .unwrap_or(4);
    threads_from(std::env::var("MRSKY_THREADS").ok().as_deref(), fallback)
}

/// Resolves the thread count from an optional `MRSKY_THREADS` value:
/// a parseable positive integer wins (clamped to ≥ 1), anything else —
/// unset, empty, garbage, or zero — falls back to `fallback`.
fn threads_from(var: Option<&str>, fallback: usize) -> usize {
    match var.and_then(|s| s.trim().parse::<usize>().ok()) {
        Some(n) if n >= 1 => n,
        _ => fallback,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn results_are_in_task_order() {
        let out = run_indexed(100, 8, |i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn zero_tasks() {
        let out: Vec<u32> = run_indexed(0, 4, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn single_thread_path() {
        let out = run_indexed(10, 1, |i| i + 1);
        assert_eq!(out, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let hits = AtomicU64::new(0);
        let _ = run_indexed(1000, 16, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn more_threads_than_tasks_is_fine() {
        let out = run_indexed(3, 64, |i| i);
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        let _ = run_indexed(1, 0, |i| i);
    }

    #[test]
    fn static_mode_matches_stealing_mode() {
        let a = run_indexed_static(97, 5, |i| i * 3 + 1);
        let b = run_indexed(97, 5, |i| i * 3 + 1);
        assert_eq!(a, b);
    }

    #[test]
    fn static_mode_runs_every_task_exactly_once() {
        let hits = AtomicU64::new(0);
        let _ = run_indexed_static(500, 7, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn stealing_rebalances_a_straggler_chunk() {
        // All the slow tasks sit in worker 0's seeded range; with stealing,
        // other workers must pick some of them up. Scheduling is not
        // deterministic, so retry a bounded number of times until the slow
        // range demonstrably spreads over more than one worker thread.
        let ran_by_thief = AtomicU64::new(0);
        for _ in 0..20 {
            let ids = run_indexed(40, 4, |i| {
                if i < 10 {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                std::thread::current().id()
            });
            let slow_workers: std::collections::HashSet<_> = ids[..10].iter().collect();
            if slow_workers.len() > 1 {
                ran_by_thief.store(1, Ordering::Relaxed);
                break;
            }
        }
        assert_eq!(
            ran_by_thief.load(Ordering::Relaxed),
            1,
            "stealing never redistributed the straggler chunk"
        );
    }

    #[test]
    fn steal_observer_reports_thief_victim_and_task() {
        // Same straggler setup as above: worker 0's seeded range is slow, so
        // someone must steal. Scheduling is nondeterministic — retry a
        // bounded number of times until at least one steal is observed, then
        // check every report is well-formed.
        let mut saw_steal = false;
        for _ in 0..20 {
            let steals = Mutex::new(Vec::new());
            let observer = |thief: usize, victim: usize, task: usize| {
                steals.lock().push((thief, victim, task));
            };
            let out =
                run_indexed_observed(40, 4, ExecutorMode::WorkStealing, Some(&observer), |i| {
                    if i < 10 {
                        std::thread::sleep(std::time::Duration::from_millis(2));
                    }
                    i
                });
            assert_eq!(out, (0..40).collect::<Vec<_>>());
            let steals = steals.into_inner();
            if steals.is_empty() {
                continue;
            }
            for &(thief, victim, task) in &steals {
                assert!(thief < 4, "thief {thief} out of range");
                assert!(victim < 4, "victim {victim} out of range");
                assert_ne!(thief, victim, "a worker cannot steal from itself");
                assert!(task < 40, "task {task} out of range");
            }
            saw_steal = true;
            break;
        }
        assert!(saw_steal, "observer never saw a steal in 20 attempts");
    }

    #[test]
    fn static_mode_never_calls_the_observer() {
        let steals = AtomicU64::new(0);
        let observer = |_: usize, _: usize, _: usize| {
            steals.fetch_add(1, Ordering::Relaxed);
        };
        let out = run_indexed_observed(64, 4, ExecutorMode::Static, Some(&observer), |i| i);
        assert_eq!(out, (0..64).collect::<Vec<_>>());
        assert_eq!(steals.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn bounded_submission_rejects_over_capacity_with_typed_error() {
        let limit = PoolLimit::new(10);
        let err = run_indexed_bounded(11, 2, &limit, |i| i).expect_err("over capacity");
        assert_eq!(
            err,
            PoolOverloaded {
                pending: 0,
                capacity: 10,
                rejected: 11,
            }
        );
        assert_eq!(limit.pending(), 0, "rejected batch reserves nothing");
        // an admitted batch runs normally and releases its reservation
        let out = run_indexed_bounded(10, 2, &limit, |i| i * 2).expect("fits");
        assert_eq!(out, (0..10).map(|i| i * 2).collect::<Vec<_>>());
        assert_eq!(limit.pending(), 0, "reservation released after the run");
    }

    #[test]
    fn bounded_submission_tracks_live_work_across_nested_batches() {
        let limit = PoolLimit::new(8);
        // From inside a running batch, the remaining headroom is what a
        // nested submission sees: 8 - 6 = 2, so 3 must be rejected.
        let out = run_indexed_bounded(6, 2, &limit, |i| {
            if i == 0 {
                let err = run_indexed_bounded(3, 1, &limit, |j| j).expect_err("no headroom");
                assert_eq!(err.capacity, 8);
                assert_eq!(err.rejected, 3);
                assert!(err.pending >= 6);
                let nested = run_indexed_bounded(2, 1, &limit, |j| j).expect("2 fit");
                assert_eq!(nested, vec![0, 1]);
            }
            i
        })
        .expect("outer batch fits");
        assert_eq!(out, (0..6).collect::<Vec<_>>());
        assert_eq!(limit.pending(), 0);
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        for count in [1usize, 2, 7, 100] {
            for threads in [1usize, 2, 3, 8] {
                let ranges = chunk_ranges(count, threads);
                assert_eq!(ranges.len(), threads);
                let mut lo = 0;
                for &(a, b) in &ranges {
                    assert_eq!(a, lo);
                    assert!(b >= a);
                    lo = b;
                }
                assert_eq!(lo, count);
            }
        }
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn threads_from_honors_override() {
        assert_eq!(threads_from(Some("6"), 4), 6);
        assert_eq!(threads_from(Some(" 12 "), 4), 12);
        assert_eq!(threads_from(Some("1"), 4), 1);
    }

    #[test]
    fn threads_from_falls_back_and_clamps() {
        assert_eq!(threads_from(None, 4), 4, "unset: host parallelism");
        assert_eq!(threads_from(Some(""), 4), 4, "empty: host parallelism");
        assert_eq!(threads_from(Some("zero"), 4), 4, "garbage: fallback");
        assert_eq!(threads_from(Some("0"), 4), 4, "zero clamps to fallback");
        assert_eq!(threads_from(Some("-3"), 4), 4, "negative: fallback");
    }
}
