//! Discrete-event cluster scheduler.
//!
//! Given the simulated durations of a phase's tasks, places them FIFO onto
//! the cluster's slots (`servers × slots_per_server`), exactly like Hadoop's
//! JobTracker handing map/reduce slots to queued tasks, and returns the
//! per-task timeline plus the phase span. This is what decouples the
//! *simulated* cluster size (4–32 servers in Figure 6) from the host
//! machine's core count: durations are computed from instrumented counters,
//! and the schedule is pure arithmetic.
//!
//! Speculative execution (Hadoop's straggler mitigation) is modelled
//! optionally: when a task's duration exceeds `threshold ×` the phase
//! median, a backup copy is launched once a slot frees up and the task
//! completes at the earlier of the two attempts — an intentionally
//! simplified but monotone model (speculation never lengthens the span).

use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Ordered-float wrapper so slot availability times can live in a heap.
#[derive(PartialEq, PartialOrd)]
struct F(f64);
impl Eq for F {}
#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for F {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// One scheduled task attempt.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskSlot {
    /// Task index within the phase.
    pub task: usize,
    /// Slot (0-based, `server * slots_per_server + slot`) the task ran on.
    pub slot: usize,
    /// Simulated start time (seconds).
    pub start: f64,
    /// Simulated end time (seconds).
    pub end: f64,
    /// `true` if this completion came from a speculative backup attempt.
    pub speculative: bool,
}

/// The schedule of one phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseSchedule {
    /// Per-task timeline, indexed by task.
    pub timeline: Vec<TaskSlot>,
    /// Phase start (the `start` argument).
    pub start: f64,
    /// Phase end: max task end, or `start` for an empty phase.
    pub end: f64,
    /// Number of speculative backups that won their race.
    pub speculative_wins: usize,
}

impl PhaseSchedule {
    /// Phase span in simulated seconds.
    pub fn span(&self) -> f64 {
        self.end - self.start
    }
}

/// Speculative-execution policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpeculationConfig {
    /// Enable speculative backups.
    pub enabled: bool,
    /// A task is a straggler when `duration > threshold × median`.
    pub threshold: f64,
}

impl Default for SpeculationConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            threshold: 1.5,
        }
    }
}

impl SpeculationConfig {
    /// Hadoop-style defaults, enabled.
    pub fn enabled() -> Self {
        Self {
            enabled: true,
            threshold: 1.5,
        }
    }

    /// Checks the straggler threshold is usable: finite and at least 1.0
    /// (below 1.0 every task beats the "median × threshold" bar and the
    /// scheduler would speculate on everything).
    pub fn validate(&self) -> Result<(), String> {
        if !self.enabled {
            return Ok(());
        }
        if !self.threshold.is_finite() {
            return Err(format!(
                "speculation threshold {} is not finite",
                self.threshold
            ));
        }
        if self.threshold < 1.0 {
            return Err(format!(
                "speculation threshold {} < 1.0 would mark every task a straggler",
                self.threshold
            ));
        }
        Ok(())
    }
}

/// Schedules `durations` FIFO onto `slots` parallel slots beginning at
/// `start`. Tasks are assigned in index order to the earliest-free slot.
///
/// # Panics
///
/// Panics if `slots == 0` or any duration is negative/non-finite.
pub fn schedule_phase(
    durations: &[f64],
    slots: usize,
    start: f64,
    speculation: &SpeculationConfig,
) -> PhaseSchedule {
    assert!(slots >= 1, "cluster must expose at least one slot");
    for (i, &d) in durations.iter().enumerate() {
        assert!(
            d.is_finite() && d >= 0.0,
            "task {i} has invalid duration {d}"
        );
    }
    if durations.is_empty() {
        return PhaseSchedule {
            timeline: Vec::new(),
            start,
            end: start,
            speculative_wins: 0,
        };
    }

    // min-heap of (available_time, slot_id)
    let mut heap: BinaryHeap<Reverse<(F, usize)>> =
        (0..slots).map(|s| Reverse((F(start), s))).collect();
    let mut timeline = Vec::with_capacity(durations.len());
    for (task, &dur) in durations.iter().enumerate() {
        let Reverse((F(avail), slot)) = heap.pop().expect("slots >= 1");
        let end = avail + dur;
        timeline.push(TaskSlot {
            task,
            slot,
            start: avail,
            end,
            speculative: false,
        });
        heap.push(Reverse((F(end), slot)));
    }

    let speculative_wins = apply_speculation(&mut timeline, durations, speculation);

    let end = timeline.iter().map(|t| t.end).fold(start, f64::max);
    PhaseSchedule {
        timeline,
        start,
        end,
        speculative_wins,
    }
}

/// Post-pass modelling Hadoop's speculative execution: a task whose duration
/// exceeds `threshold ×` the phase median gets a backup copy launched at its
/// detection time; it completes at the earlier of the two attempts. Slots
/// free up at the phase's tentative end of non-stragglers; the simplified
/// model launches the backup at detection (`start + cutoff`) and gives it
/// the median duration — monotone: speculation never lengthens the span.
fn apply_speculation(
    timeline: &mut [TaskSlot],
    durations: &[f64],
    speculation: &SpeculationConfig,
) -> usize {
    if !speculation.enabled || durations.len() < 2 {
        return 0;
    }
    let mut sorted = durations.to_vec();
    sorted.sort_by(f64::total_cmp);
    let median = sorted[sorted.len() / 2];
    if median <= 0.0 {
        return 0;
    }
    let cutoff = speculation.threshold * median;
    let mut wins = 0;
    for ts in timeline.iter_mut() {
        let dur = ts.end - ts.start;
        if dur > cutoff {
            let backup_start = ts.start + cutoff;
            let backup_end = backup_start + median;
            if backup_end < ts.end {
                ts.end = backup_end;
                ts.speculative = true;
                wins += 1;
            }
        }
    }
    wins
}

/// Schedules map tasks with data locality: task `t` reads split `t`, whose
/// replicas live where `blocks` put them. Each task goes to the
/// earliest-available slot, except that among slots that free up at the same
/// time a slot on a replica-holding server is preferred (a one-level
/// approximation of Hadoop's delay scheduling). A task placed on a
/// non-replica server pays `remote_penalty` extra seconds (the remote block
/// read).
///
/// Returns the schedule plus the number of tasks that ran data-local.
///
/// # Panics
///
/// As [`schedule_phase`]; additionally requires `blocks.splits() >=
/// durations.len()` and `slots_per_server >= 1`.
pub fn schedule_phase_with_locality(
    durations: &[f64],
    servers: usize,
    slots_per_server: usize,
    start: f64,
    blocks: &crate::dfs::BlockStore,
    remote_penalty: f64,
    speculation: &SpeculationConfig,
) -> (PhaseSchedule, usize) {
    assert!(
        servers >= 1 && slots_per_server >= 1,
        "cluster must have slots"
    );
    assert!(
        blocks.splits() >= durations.len(),
        "every task needs a placed split"
    );
    assert!(remote_penalty >= 0.0 && remote_penalty.is_finite());
    for (i, &d) in durations.iter().enumerate() {
        assert!(
            d.is_finite() && d >= 0.0,
            "task {i} has invalid duration {d}"
        );
    }
    let slots = servers * slots_per_server;
    if durations.is_empty() {
        return (
            PhaseSchedule {
                timeline: Vec::new(),
                start,
                end: start,
                speculative_wins: 0,
            },
            0,
        );
    }

    let mut heap: BinaryHeap<Reverse<(F, usize)>> =
        (0..slots).map(|s| Reverse((F(start), s))).collect();
    let mut timeline = Vec::with_capacity(durations.len());
    let mut local_tasks = 0usize;
    for (task, &dur) in durations.iter().enumerate() {
        // pop every slot tied at the earliest availability
        let Reverse((F(avail), first)) = heap.pop().expect("slots >= 1");
        let mut ties = vec![first];
        while let Some(&Reverse((F(a), _))) = heap.peek() {
            if a > avail {
                break;
            }
            let Reverse((_, s)) = heap.pop().expect("peeked");
            ties.push(s);
        }
        // prefer a local slot among the ties
        let pick_pos = ties
            .iter()
            .position(|&slot| blocks.is_local(task, slot / slots_per_server))
            .unwrap_or(0);
        let slot = ties.swap_remove(pick_pos);
        for other in ties {
            heap.push(Reverse((F(avail), other)));
        }
        let local = blocks.is_local(task, slot / slots_per_server);
        local_tasks += usize::from(local);
        let effective = dur + if local { 0.0 } else { remote_penalty };
        let end = avail + effective;
        timeline.push(TaskSlot {
            task,
            slot,
            start: avail,
            end,
            speculative: false,
        });
        heap.push(Reverse((F(end), slot)));
    }

    // effective durations (with remote penalties) drive straggler detection
    let effective: Vec<f64> = timeline.iter().map(|t| t.end - t.start).collect();
    let speculative_wins = apply_speculation(&mut timeline, &effective, speculation);
    let end = timeline.iter().map(|t| t.end).fold(start, f64::max);
    (
        PhaseSchedule {
            timeline,
            start,
            end,
            speculative_wins,
        },
        local_tasks,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfs::BlockStore;

    const NO_SPEC: SpeculationConfig = SpeculationConfig {
        enabled: false,
        threshold: 1.5,
    };

    #[test]
    fn empty_phase_has_zero_span() {
        let s = schedule_phase(&[], 4, 10.0, &NO_SPEC);
        assert_eq!(s.span(), 0.0);
        assert_eq!(s.end, 10.0);
    }

    #[test]
    fn single_slot_serializes_tasks() {
        let s = schedule_phase(&[1.0, 2.0, 3.0], 1, 0.0, &NO_SPEC);
        assert_eq!(s.span(), 6.0);
        assert_eq!(s.timeline[2].start, 3.0);
        assert_eq!(s.timeline[2].end, 6.0);
    }

    #[test]
    fn equal_tasks_divide_evenly() {
        // 8 unit tasks on 4 slots → 2 waves
        let s = schedule_phase(&[1.0; 8], 4, 0.0, &NO_SPEC);
        assert!((s.span() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn more_slots_never_hurt() {
        let durations: Vec<f64> = (0..40).map(|i| 1.0 + f64::from(i % 7)).collect();
        let mut prev = f64::INFINITY;
        for slots in [1, 2, 4, 8, 16, 64] {
            let s = schedule_phase(&durations, slots, 0.0, &NO_SPEC);
            assert!(s.span() <= prev + 1e-12, "slots={slots}");
            prev = s.span();
        }
    }

    #[test]
    fn span_lower_bounds_hold() {
        let durations = [5.0, 1.0, 1.0, 1.0];
        let s = schedule_phase(&durations, 2, 0.0, &NO_SPEC);
        let total: f64 = durations.iter().sum();
        assert!(s.span() >= total / 2.0 - 1e-12, "work bound");
        assert!(s.span() >= 5.0 - 1e-12, "critical-path bound");
    }

    #[test]
    fn fifo_assigns_in_task_order() {
        let s = schedule_phase(&[3.0, 1.0, 1.0], 2, 0.0, &NO_SPEC);
        // task0 → slot A at t=0; task1 → slot B at t=0; task2 reuses B at t=1
        assert_eq!(s.timeline[0].start, 0.0);
        assert_eq!(s.timeline[1].start, 0.0);
        assert_eq!(s.timeline[2].start, 1.0);
        assert_eq!(s.timeline[2].slot, s.timeline[1].slot);
    }

    #[test]
    fn start_offset_shifts_everything() {
        let a = schedule_phase(&[1.0, 2.0], 2, 0.0, &NO_SPEC);
        let b = schedule_phase(&[1.0, 2.0], 2, 100.0, &NO_SPEC);
        assert_eq!(b.span(), a.span());
        assert_eq!(b.timeline[0].start, 100.0);
    }

    #[test]
    fn speculation_caps_stragglers() {
        // 7 unit tasks + one 10× straggler on plenty of slots.
        let mut durations = vec![1.0; 7];
        durations.push(10.0);
        let plain = schedule_phase(&durations, 8, 0.0, &NO_SPEC);
        assert_eq!(plain.span(), 10.0);
        let spec = schedule_phase(&durations, 8, 0.0, &SpeculationConfig::enabled());
        // backup launches at 1.5, finishes at 2.5
        assert!((spec.span() - 2.5).abs() < 1e-12, "{}", spec.span());
        assert_eq!(spec.speculative_wins, 1);
        assert!(spec.timeline[7].speculative);
    }

    #[test]
    fn speculation_never_lengthens() {
        let durations: Vec<f64> = (0..30).map(|i| 1.0 + f64::from(i % 5)).collect();
        let plain = schedule_phase(&durations, 6, 0.0, &NO_SPEC);
        let spec = schedule_phase(&durations, 6, 0.0, &SpeculationConfig::enabled());
        assert!(spec.end <= plain.end + 1e-12);
    }

    #[test]
    fn speculation_ignores_zero_median() {
        let s = schedule_phase(&[0.0, 0.0, 5.0], 2, 0.0, &SpeculationConfig::enabled());
        assert_eq!(s.speculative_wins, 0);
        assert_eq!(s.span(), 5.0);
    }

    #[test]
    fn locality_prefers_replica_holders() {
        // 4 servers x 1 slot, all free at t=0: every task should land local
        // when its replica set is reachable among the ties.
        let blocks = BlockStore::place(4, 4, 4, 0); // replicated everywhere
        let (sched, local) =
            schedule_phase_with_locality(&[1.0; 4], 4, 1, 0.0, &blocks, 10.0, &NO_SPEC);
        assert_eq!(local, 4, "full replication makes everything local");
        assert!((sched.span() - 1.0).abs() < 1e-12, "no remote penalty paid");
    }

    #[test]
    fn remote_tasks_pay_the_penalty() {
        // 2 servers, 1 slot each; both splits replicated only on server 0:
        // one task must run remote and pay the penalty.
        let blocks = BlockStore::place(2, 2, 1, 3);
        // find a seed-independent check: force both splits onto server 0 by
        // checking which placement happened, then assert accordingly.
        let (sched, local) =
            schedule_phase_with_locality(&[1.0, 1.0], 2, 1, 0.0, &blocks, 5.0, &NO_SPEC);
        // both tasks start at t=0 on distinct servers; a task whose single
        // replica is elsewhere pays 5s
        let expected_remote = (0..2)
            .filter(|&t| {
                let slot = sched.timeline[t].slot;
                !blocks.is_local(t, slot)
            })
            .count();
        assert_eq!(local, 2 - expected_remote);
        for ts in &sched.timeline {
            let dur = ts.end - ts.start;
            if blocks.is_local(ts.task, ts.slot) {
                assert!((dur - 1.0).abs() < 1e-12);
            } else {
                assert!((dur - 6.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn locality_never_beats_free_scheduling_when_penalty_zero() {
        let blocks = BlockStore::place(10, 3, 1, 9);
        let durations: Vec<f64> = (0..10).map(|i| 1.0 + f64::from(i % 3)).collect();
        let plain = schedule_phase(&durations, 3, 0.0, &NO_SPEC);
        let (with_locality, _) =
            schedule_phase_with_locality(&durations, 3, 1, 0.0, &blocks, 0.0, &NO_SPEC);
        assert!((with_locality.span() - plain.span()).abs() < 1e-9);
    }

    #[test]
    fn locality_fraction_improves_with_replication() {
        let durations = vec![1.0; 64];
        let mut prev_local = 0usize;
        for r in [1usize, 2, 4, 8] {
            let blocks = BlockStore::place(64, 8, r, 5);
            let (_, local) =
                schedule_phase_with_locality(&durations, 8, 2, 0.0, &blocks, 2.0, &NO_SPEC);
            assert!(
                local >= prev_local,
                "replication {r}: locality {local} regressed below {prev_local}"
            );
            prev_local = local;
        }
        assert_eq!(prev_local, 64, "full replication = full locality");
    }

    #[test]
    fn locality_scheduler_speculates_on_stragglers() {
        let blocks = BlockStore::place(8, 8, 8, 0); // fully replicated: all local
        let mut durations = vec![1.0; 7];
        durations.push(20.0);
        let (sched, _) = schedule_phase_with_locality(
            &durations,
            8,
            1,
            0.0,
            &blocks,
            0.0,
            &SpeculationConfig::enabled(),
        );
        assert_eq!(sched.speculative_wins, 1);
        assert!(sched.span() < 20.0, "straggler capped: {}", sched.span());
    }

    #[test]
    fn locality_empty_phase() {
        let blocks = BlockStore::place(0, 2, 1, 0);
        let (sched, local) = schedule_phase_with_locality(&[], 2, 1, 5.0, &blocks, 1.0, &NO_SPEC);
        assert_eq!(sched.span(), 0.0);
        assert_eq!(local, 0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_durations() -> impl Strategy<Value = Vec<f64>> {
            proptest::collection::vec(0.0f64..50.0, 1..60)
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn span_respects_work_and_critical_path_bounds(
                durations in arb_durations(),
                slots in 1usize..16,
            ) {
                let s = schedule_phase(&durations, slots, 0.0, &NO_SPEC);
                let total: f64 = durations.iter().sum();
                let longest = durations.iter().copied().fold(0.0, f64::max);
                prop_assert!(s.span() + 1e-9 >= total / slots as f64, "work bound");
                prop_assert!(s.span() + 1e-9 >= longest, "critical path bound");
                prop_assert!(s.span() <= total + 1e-9, "never worse than serial");
            }

            #[test]
            fn more_slots_never_slower(durations in arb_durations(), slots in 1usize..8) {
                let a = schedule_phase(&durations, slots, 0.0, &NO_SPEC);
                let b = schedule_phase(&durations, slots + 1, 0.0, &NO_SPEC);
                prop_assert!(b.span() <= a.span() + 1e-9);
            }

            #[test]
            fn speculation_is_monotone(durations in arb_durations(), slots in 1usize..8) {
                let plain = schedule_phase(&durations, slots, 0.0, &NO_SPEC);
                let spec = schedule_phase(&durations, slots, 0.0, &SpeculationConfig::enabled());
                prop_assert!(spec.span() <= plain.span() + 1e-9);
            }

            #[test]
            fn tasks_never_overlap_on_a_slot(durations in arb_durations(), slots in 1usize..8) {
                let s = schedule_phase(&durations, slots, 0.0, &NO_SPEC);
                let mut by_slot: std::collections::BTreeMap<usize, Vec<(f64, f64)>> =
                    Default::default();
                for t in &s.timeline {
                    by_slot.entry(t.slot).or_default().push((t.start, t.end));
                }
                for intervals in by_slot.values_mut() {
                    intervals.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
                    for w in intervals.windows(2) {
                        prop_assert!(w[0].1 <= w[1].0 + 1e-9, "overlap: {:?}", w);
                    }
                }
            }

            #[test]
            fn locality_penalty_zero_matches_plain_span(
                durations in arb_durations(),
                servers in 1usize..6,
                replication in 1usize..4,
            ) {
                let blocks = crate::dfs::BlockStore::place(
                    durations.len(), servers, replication, 7,
                );
                let plain = schedule_phase(&durations, servers * 2, 0.0, &NO_SPEC);
                let (local, n_local) = schedule_phase_with_locality(
                    &durations, servers, 2, 0.0, &blocks, 0.0, &NO_SPEC,
                );
                prop_assert!((local.span() - plain.span()).abs() < 1e-9);
                prop_assert!(n_local <= durations.len());
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_rejected() {
        let _ = schedule_phase(&[1.0], 0, 0.0, &NO_SPEC);
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn negative_duration_rejected() {
        let _ = schedule_phase(&[-1.0], 1, 0.0, &NO_SPEC);
    }
}
