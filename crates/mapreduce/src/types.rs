//! Core data-shape traits, the per-task context, and the map-side emitter.

use std::collections::BTreeMap;
use std::hash::Hash;
use std::sync::Arc;

/// Marker for types usable as shuffle keys.
///
/// `Ord` (not just `Eq + Hash`) is required so that per-reducer key groups
/// can be processed in sorted order, making every job deterministic —
/// Hadoop's reduce-side sort, kept here for reproducibility rather than
/// necessity.
pub trait KeyT: Clone + Send + Sync + Eq + Ord + Hash + 'static {}
impl<T: Clone + Send + Sync + Eq + Ord + Hash + 'static> KeyT for T {}

/// Marker for types usable as records and values.
pub trait DataT: Clone + Send + Sync + 'static {}
impl<T: Clone + Send + Sync + 'static> DataT for T {}

/// Estimates the serialized size of a key/value pair for shuffle-volume
/// accounting. Jobs can install a custom sizer; the default charges the
/// in-memory `size_of` of the pair, which is exact for plain-old-data
/// keys/values and a documented lower bound for heap-owning ones.
pub type KvSizer<K, V> = Arc<dyn Fn(&K, &V) -> usize + Send + Sync>;

/// Per-task counters, filled in by user code and the framework, consumed by
/// the [`CostModel`](crate::cost::CostModel).
///
/// `work_units` is the extension point for algorithm-specific CPU cost: the
/// skyline jobs report dimension-weighted dominance comparisons (one unit ≈
/// one coordinate visited), so a 10-D comparison costs 10 units.
#[derive(Debug, Default, Clone)]
pub struct TaskContext {
    /// Index of this task within its phase.
    pub task_index: usize,
    /// Attempt number (0 = first attempt; >0 after injected failures).
    pub attempt: u32,
    records_in: u64,
    records_out: u64,
    bytes_out: u64,
    work_units: u64,
    counters: BTreeMap<&'static str, u64>,
}

impl TaskContext {
    /// Creates a context for task `task_index`, attempt `attempt`.
    pub fn new(task_index: usize, attempt: u32) -> Self {
        Self {
            task_index,
            attempt,
            ..Self::default()
        }
    }

    /// Records `n` input records consumed (called by the framework).
    #[inline]
    pub fn add_records_in(&mut self, n: u64) {
        self.records_in += n;
    }

    /// Records `n` output records produced (called by the emitter/framework).
    #[inline]
    pub fn add_records_out(&mut self, n: u64) {
        self.records_out += n;
    }

    /// Records `n` output bytes (called by the emitter/framework).
    #[inline]
    pub fn add_bytes_out(&mut self, n: u64) {
        self.bytes_out += n;
    }

    /// Charges `n` units of algorithm CPU work to this task.
    #[inline]
    pub fn add_work(&mut self, n: u64) {
        self.work_units += n;
    }

    /// Input records consumed so far.
    #[inline]
    pub fn records_in(&self) -> u64 {
        self.records_in
    }

    /// Output records produced so far.
    #[inline]
    pub fn records_out(&self) -> u64 {
        self.records_out
    }

    /// Output bytes produced so far.
    #[inline]
    pub fn bytes_out(&self) -> u64 {
        self.bytes_out
    }

    /// Algorithm work units charged so far.
    #[inline]
    pub fn work_units(&self) -> u64 {
        self.work_units
    }

    /// Increments the named user counter by `n` — Hadoop-style job counters,
    /// aggregated per phase into [`PhaseMetrics`](crate::metrics::PhaseMetrics).
    #[inline]
    pub fn incr(&mut self, name: &'static str, n: u64) {
        *self.counters.entry(name).or_insert(0) += n;
    }

    /// This task's named counters.
    pub fn counters(&self) -> &BTreeMap<&'static str, u64> {
        &self.counters
    }
}

/// Map-side output collector handed to [`Mapper::map`](crate::Mapper::map).
///
/// Buffers `(key, value)` pairs in memory (this runtime's "spill file") and
/// keeps the byte accounting consistent with the installed sizer.
pub struct Emitter<K, V> {
    pairs: Vec<(K, V)>,
    bytes: u64,
    sizer: Option<KvSizer<K, V>>,
}

impl<K: KeyT, V: DataT> Emitter<K, V> {
    /// Creates an emitter; `sizer` overrides the default size estimate.
    pub fn new(sizer: Option<KvSizer<K, V>>) -> Self {
        Self {
            pairs: Vec::new(),
            bytes: 0,
            sizer,
        }
    }

    /// Emits one intermediate pair.
    #[inline]
    pub fn emit(&mut self, key: K, value: V) {
        self.bytes += self.pair_size(&key, &value) as u64;
        self.pairs.push((key, value));
    }

    #[inline]
    fn pair_size(&self, key: &K, value: &V) -> usize {
        match &self.sizer {
            Some(s) => s(key, value),
            None => std::mem::size_of::<K>() + std::mem::size_of::<V>(),
        }
    }

    /// Number of pairs emitted.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// `true` if nothing was emitted.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Total estimated bytes emitted.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Consumes the emitter, returning the buffered pairs and byte count.
    pub fn into_parts(self) -> (Vec<(K, V)>, u64) {
        (self.pairs, self.bytes)
    }

    /// Recomputes the byte counter after a combiner rewrote the pairs.
    pub(crate) fn from_pairs(pairs: Vec<(K, V)>, sizer: Option<KvSizer<K, V>>) -> Self {
        let mut e = Self::new(sizer);
        for (k, v) in pairs {
            e.emit(k, v);
        }
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_counters_accumulate() {
        let mut ctx = TaskContext::new(3, 1);
        assert_eq!(ctx.task_index, 3);
        assert_eq!(ctx.attempt, 1);
        ctx.add_records_in(5);
        ctx.add_records_in(2);
        ctx.add_records_out(4);
        ctx.add_bytes_out(100);
        ctx.add_work(7);
        assert_eq!(ctx.records_in(), 7);
        assert_eq!(ctx.records_out(), 4);
        assert_eq!(ctx.bytes_out(), 100);
        assert_eq!(ctx.work_units(), 7);
    }

    #[test]
    fn named_counters_accumulate() {
        let mut ctx = TaskContext::new(0, 0);
        ctx.incr("pruned", 2);
        ctx.incr("pruned", 3);
        ctx.incr("spilled", 1);
        assert_eq!(ctx.counters()["pruned"], 5);
        assert_eq!(ctx.counters()["spilled"], 1);
        assert_eq!(ctx.counters().len(), 2);
    }

    #[test]
    fn emitter_default_sizer_uses_size_of() {
        let mut e: Emitter<u64, f64> = Emitter::new(None);
        e.emit(1, 2.0);
        e.emit(3, 4.0);
        assert_eq!(e.len(), 2);
        assert_eq!(e.bytes(), 32);
        let (pairs, bytes) = e.into_parts();
        assert_eq!(pairs, vec![(1, 2.0), (3, 4.0)]);
        assert_eq!(bytes, 32);
    }

    #[test]
    fn emitter_custom_sizer() {
        let sizer: KvSizer<u32, String> = Arc::new(|_k, v| 4 + v.len());
        let mut e = Emitter::new(Some(sizer));
        e.emit(1, "hello".to_string());
        assert_eq!(e.bytes(), 9);
        assert!(!e.is_empty());
    }

    #[test]
    fn from_pairs_recounts_bytes() {
        let e: Emitter<u64, u64> = Emitter::from_pairs(vec![(1, 1), (2, 2)], None);
        assert_eq!(e.bytes(), 32);
    }
}
