//! Block placement — the HDFS stand-in.
//!
//! Hadoop schedules map tasks close to their data: each input split lives as
//! a block replicated on `r` servers, and the JobTracker prefers giving a
//! task to a TaskTracker that holds one of its replicas ("data locality").
//! [`BlockStore`] models the placement: deterministic, spread round-robin
//! with a hashed starting offset per split, never placing two replicas of
//! the same block on one server.
//!
//! Locality-aware scheduling itself lives in
//! [`scheduler::schedule_phase_with_locality`](crate::scheduler::schedule_phase_with_locality);
//! the runtime enables it through
//! [`LocalityConfig`](crate::runtime::LocalityConfig).

/// Replica placement for a phase's input splits.
#[derive(Debug, Clone)]
pub struct BlockStore {
    /// `replicas[split]` = sorted server ids holding that split.
    replicas: Vec<Vec<usize>>,
    servers: usize,
}

impl BlockStore {
    /// Places `splits` blocks across `servers` servers with `replication`
    /// copies each (clamped to the server count), deterministically from
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `servers == 0` or `replication == 0`.
    pub fn place(splits: usize, servers: usize, replication: usize, seed: u64) -> Self {
        assert!(servers >= 1, "need at least one server");
        assert!(replication >= 1, "need at least one replica");
        let r = replication.min(servers);
        let replicas = (0..splits)
            .map(|s| {
                // hashed starting offset, then consecutive servers — the
                // rack-unaware version of HDFS's default placement
                let mut h = seed ^ (s as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                h ^= h >> 33;
                h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
                h ^= h >> 33;
                let start = (h % servers as u64) as usize;
                let mut servers_for_split: Vec<usize> =
                    (0..r).map(|k| (start + k) % servers).collect();
                servers_for_split.sort_unstable();
                servers_for_split
            })
            .collect();
        Self { replicas, servers }
    }

    /// Number of splits placed.
    pub fn splits(&self) -> usize {
        self.replicas.len()
    }

    /// Number of servers in the cluster this placement targets.
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// The servers holding `split`.
    pub fn replicas(&self, split: usize) -> &[usize] {
        &self.replicas[split]
    }

    /// Whether `server` holds a replica of `split`.
    pub fn is_local(&self, split: usize, server: usize) -> bool {
        self.replicas[split].binary_search(&server).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_is_deterministic() {
        let a = BlockStore::place(20, 8, 3, 7);
        let b = BlockStore::place(20, 8, 3, 7);
        for s in 0..20 {
            assert_eq!(a.replicas(s), b.replicas(s));
        }
    }

    #[test]
    fn replication_count_respected_and_distinct() {
        let store = BlockStore::place(50, 10, 3, 1);
        for s in 0..50 {
            let reps = store.replicas(s);
            assert_eq!(reps.len(), 3);
            let mut dedup = reps.to_vec();
            dedup.dedup();
            assert_eq!(dedup.len(), 3, "replicas must be distinct servers");
            assert!(reps.iter().all(|&srv| srv < 10));
        }
    }

    #[test]
    fn replication_clamped_to_cluster_size() {
        let store = BlockStore::place(5, 2, 3, 0);
        for s in 0..5 {
            assert_eq!(store.replicas(s).len(), 2);
        }
    }

    #[test]
    fn is_local_matches_replica_list() {
        let store = BlockStore::place(10, 6, 2, 3);
        for s in 0..10 {
            for srv in 0..6 {
                assert_eq!(store.is_local(s, srv), store.replicas(s).contains(&srv));
            }
        }
    }

    #[test]
    fn placement_spreads_across_servers() {
        let servers = 8;
        let store = BlockStore::place(400, servers, 3, 11);
        let mut counts = vec![0usize; servers];
        for s in 0..store.splits() {
            for &srv in store.replicas(s) {
                counts[srv] += 1;
            }
        }
        let expected = 400 * 3 / servers;
        for (srv, &c) in counts.iter().enumerate() {
            assert!(
                c > expected / 2 && c < expected * 2,
                "server {srv} holds {c} replicas, expected ~{expected}"
            );
        }
    }

    #[test]
    fn zero_splits_is_fine() {
        let store = BlockStore::place(0, 4, 2, 0);
        assert_eq!(store.splits(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_rejected() {
        let _ = BlockStore::place(1, 0, 1, 0);
    }
}
