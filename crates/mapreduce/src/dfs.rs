//! Block placement — the HDFS stand-in — and the reduce-input spill store.
//!
//! Hadoop schedules map tasks close to their data: each input split lives as
//! a block replicated on `r` servers, and the JobTracker prefers giving a
//! task to a TaskTracker that holds one of its replicas ("data locality").
//! [`BlockStore`] models the placement: deterministic, spread round-robin
//! with a hashed starting offset per split, never placing two replicas of
//! the same block on one server.
//!
//! Locality-aware scheduling itself lives in
//! [`scheduler::schedule_phase_with_locality`](crate::scheduler::schedule_phase_with_locality);
//! the runtime enables it through
//! [`LocalityConfig`](crate::runtime::LocalityConfig).
//!
//! [`SpillStore`] is the *real* disk half of this layer: reduce inputs whose
//! shuffled bytes exceed the job's memory budget are serialized to
//! length-prefixed frame files (one frame per value, written to a temp file
//! and atomically renamed, the same discipline the checkpoint store uses)
//! and re-read frame-by-frame when their reduce task runs, so at most the
//! currently-reducing inputs are resident.

use std::fs;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// Replica placement for a phase's input splits.
#[derive(Debug, Clone)]
pub struct BlockStore {
    /// `replicas[split]` = sorted server ids holding that split.
    replicas: Vec<Vec<usize>>,
    servers: usize,
}

impl BlockStore {
    /// Places `splits` blocks across `servers` servers with `replication`
    /// copies each (clamped to the server count), deterministically from
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `servers == 0` or `replication == 0`.
    pub fn place(splits: usize, servers: usize, replication: usize, seed: u64) -> Self {
        assert!(servers >= 1, "need at least one server");
        assert!(replication >= 1, "need at least one replica");
        let r = replication.min(servers);
        let replicas = (0..splits)
            .map(|s| {
                // hashed starting offset, then consecutive servers — the
                // rack-unaware version of HDFS's default placement
                let mut h = seed ^ (s as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                h ^= h >> 33;
                h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
                h ^= h >> 33;
                let start = (h % servers as u64) as usize;
                let mut servers_for_split: Vec<usize> =
                    (0..r).map(|k| (start + k) % servers).collect();
                servers_for_split.sort_unstable();
                servers_for_split
            })
            .collect();
        Self { replicas, servers }
    }

    /// Number of splits placed.
    pub fn splits(&self) -> usize {
        self.replicas.len()
    }

    /// Number of servers in the cluster this placement targets.
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// The servers holding `split`.
    pub fn replicas(&self, split: usize) -> &[usize] {
        &self.replicas[split]
    }

    /// Whether `server` holds a replica of `split`.
    pub fn is_local(&self, split: usize, server: usize) -> bool {
        self.replicas[split].binary_search(&server).is_ok()
    }
}

/// On-disk spill area for reduce inputs that exceed the job's memory
/// budget. One spill file holds one reduce task's values as consecutive
/// `u32`-length-prefixed frames; the caller keeps the (small) keys and
/// per-key frame counts in memory and streams the frames back in order.
#[derive(Debug, Clone)]
pub struct SpillStore {
    dir: PathBuf,
}

impl SpillStore {
    /// Opens (creating if needed) a spill directory.
    pub fn create(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }

    /// The directory spill files are written to.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Writes `frames` as one spill file named for `job`/`reducer`, via a
    /// temp file + atomic rename so a crash never leaves a torn file behind.
    /// Returns the final path.
    pub fn write_frames<I>(&self, job: &str, reducer: usize, frames: I) -> io::Result<PathBuf>
    where
        I: IntoIterator<Item = Vec<u8>>,
    {
        let stem = sanitize(job);
        let final_path = self.dir.join(format!("{stem}-r{reducer}.spill"));
        let tmp_path = self.dir.join(format!(".{stem}-r{reducer}.spill.tmp"));
        {
            let mut w = BufWriter::new(fs::File::create(&tmp_path)?);
            for frame in frames {
                let len = u32::try_from(frame.len()).map_err(|_| {
                    io::Error::new(
                        io::ErrorKind::InvalidInput,
                        format!("spill frame of {} bytes exceeds the u32 limit", frame.len()),
                    )
                })?;
                w.write_all(&len.to_le_bytes())?;
                w.write_all(&frame)?;
            }
            w.flush()?;
        }
        fs::rename(&tmp_path, &final_path)?;
        Ok(final_path)
    }
}

/// Streams the frames of one spill file back in write order.
pub struct SpillReader {
    reader: BufReader<fs::File>,
    path: PathBuf,
}

impl SpillReader {
    /// Opens a spill file for sequential frame reads.
    pub fn open(path: impl Into<PathBuf>) -> io::Result<Self> {
        let path = path.into();
        let file = fs::File::open(&path)?;
        Ok(Self {
            reader: BufReader::new(file),
            path,
        })
    }

    /// Reads the next frame; `Ok(None)` at a clean end of file. A torn
    /// length prefix or a short frame body is an error, not an EOF.
    pub fn next_frame(&mut self) -> io::Result<Option<Vec<u8>>> {
        let mut len = [0u8; 4];
        match self.reader.read_exact(&mut len) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e),
        }
        let mut frame = vec![0u8; u32::from_le_bytes(len) as usize];
        self.reader.read_exact(&mut frame)?;
        Ok(Some(frame))
    }

    /// Deletes the underlying spill file (after a reduce task has fully
    /// consumed it).
    pub fn remove(self) -> io::Result<()> {
        let path = self.path;
        drop(self.reader);
        fs::remove_file(path)
    }
}

/// Keeps spill file names filesystem-safe: job names may contain separators.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_is_deterministic() {
        let a = BlockStore::place(20, 8, 3, 7);
        let b = BlockStore::place(20, 8, 3, 7);
        for s in 0..20 {
            assert_eq!(a.replicas(s), b.replicas(s));
        }
    }

    #[test]
    fn replication_count_respected_and_distinct() {
        let store = BlockStore::place(50, 10, 3, 1);
        for s in 0..50 {
            let reps = store.replicas(s);
            assert_eq!(reps.len(), 3);
            let mut dedup = reps.to_vec();
            dedup.dedup();
            assert_eq!(dedup.len(), 3, "replicas must be distinct servers");
            assert!(reps.iter().all(|&srv| srv < 10));
        }
    }

    #[test]
    fn replication_clamped_to_cluster_size() {
        let store = BlockStore::place(5, 2, 3, 0);
        for s in 0..5 {
            assert_eq!(store.replicas(s).len(), 2);
        }
    }

    #[test]
    fn is_local_matches_replica_list() {
        let store = BlockStore::place(10, 6, 2, 3);
        for s in 0..10 {
            for srv in 0..6 {
                assert_eq!(store.is_local(s, srv), store.replicas(s).contains(&srv));
            }
        }
    }

    #[test]
    fn placement_spreads_across_servers() {
        let servers = 8;
        let store = BlockStore::place(400, servers, 3, 11);
        let mut counts = vec![0usize; servers];
        for s in 0..store.splits() {
            for &srv in store.replicas(s) {
                counts[srv] += 1;
            }
        }
        let expected = 400 * 3 / servers;
        for (srv, &c) in counts.iter().enumerate() {
            assert!(
                c > expected / 2 && c < expected * 2,
                "server {srv} holds {c} replicas, expected ~{expected}"
            );
        }
    }

    #[test]
    fn zero_splits_is_fine() {
        let store = BlockStore::place(0, 4, 2, 0);
        assert_eq!(store.splits(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_rejected() {
        let _ = BlockStore::place(1, 0, 1, 0);
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mrsky-spill-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn spill_round_trips_frames_in_order() {
        let dir = temp_dir("roundtrip");
        let store = SpillStore::create(&dir).unwrap();
        let frames: Vec<Vec<u8>> = vec![vec![1, 2, 3], vec![], vec![9; 4096], vec![42]];
        let path = store.write_frames("job-a/p1", 3, frames.clone()).unwrap();
        assert!(path
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .ends_with("-r3.spill"));
        let mut reader = SpillReader::open(&path).unwrap();
        let mut got = Vec::new();
        while let Some(frame) = reader.next_frame().unwrap() {
            got.push(frame);
        }
        assert_eq!(got, frames);
        reader.remove().unwrap();
        assert!(!path.exists(), "remove() deletes the spill file");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn spill_write_is_atomic_no_tmp_left_behind() {
        let dir = temp_dir("atomic");
        let store = SpillStore::create(&dir).unwrap();
        let _ = store.write_frames("j", 0, vec![vec![7u8; 10]]).unwrap();
        let leftovers: Vec<_> = fs::read_dir(store.dir())
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "no temp files after a successful write"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_frame_is_an_error_not_eof() {
        let dir = temp_dir("torn");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.spill");
        // length prefix promises 8 bytes, body delivers 3
        let mut bytes = 8u32.to_le_bytes().to_vec();
        bytes.extend_from_slice(&[1, 2, 3]);
        fs::write(&path, bytes).unwrap();
        let mut reader = SpillReader::open(&path).unwrap();
        assert!(reader.next_frame().is_err(), "short body must be an error");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_spill_file_reads_as_empty() {
        let dir = temp_dir("empty");
        let store = SpillStore::create(&dir).unwrap();
        let path = store.write_frames("j", 1, Vec::<Vec<u8>>::new()).unwrap();
        let mut reader = SpillReader::open(&path).unwrap();
        assert!(reader.next_frame().unwrap().is_none());
        let _ = fs::remove_dir_all(&dir);
    }
}
