//! Task attempt bookkeeping and deterministic failure injection.
//!
//! Hadoop tolerates task failures by re-running attempts on other nodes.
//! This runtime models the same behaviour *deterministically*: whether
//! attempt `a` of task `t` in phase `p` of job `j` fails is a pure function
//! of `(j, p, t, a)` and the configured failure rate, so tests can assert
//! both that failures occurred and that the job output is unchanged.

use serde::{Deserialize, Serialize};

/// Phase discriminator used in the failure hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// Map tasks.
    Map,
    /// Reduce tasks.
    Reduce,
}

/// Failure-injection configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureConfig {
    /// Probability (in permille, 0–1000) that any given task attempt fails.
    pub fail_permille: u32,
    /// Maximum attempts per task before the job aborts (Hadoop default: 4).
    pub max_attempts: u32,
    /// Probability (in permille) that a task is a *straggler* — it runs but
    /// `straggler_factor`× slower (degraded disk, swapping JVM, noisy
    /// neighbour). Stragglers are what speculative execution exists for.
    pub straggler_permille: u32,
    /// Slow-down multiplier applied to straggler tasks (≥ 1).
    pub straggler_factor: f64,
    /// Seed folded into the failure hash so different tests can draw
    /// different failure patterns.
    pub seed: u64,
}

impl Default for FailureConfig {
    fn default() -> Self {
        Self::none()
    }
}

impl FailureConfig {
    /// No injected failures.
    pub fn none() -> Self {
        Self {
            fail_permille: 0,
            max_attempts: 4,
            straggler_permille: 0,
            straggler_factor: 1.0,
            seed: 0,
        }
    }

    /// Fails roughly `permille`/1000 of attempts, with up to 4 attempts.
    pub fn with_rate(permille: u32, seed: u64) -> Self {
        assert!(permille < 1000, "a rate of 1000 permille can never succeed");
        Self {
            fail_permille: permille,
            ..Self::none()
        }
        .seeded(seed)
    }

    /// Makes roughly `permille`/1000 of tasks run `factor`× slower.
    pub fn with_stragglers(permille: u32, factor: f64, seed: u64) -> Self {
        assert!(permille <= 1000, "permille is at most 1000");
        assert!(
            factor >= 1.0 && factor.is_finite(),
            "stragglers are slower, not faster"
        );
        Self {
            straggler_permille: permille,
            straggler_factor: factor,
            ..Self::none()
        }
        .seeded(seed)
    }

    fn seeded(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The slow-down multiplier of task `task` (1.0 for healthy tasks).
    pub fn straggler_multiplier(&self, job: &str, phase: Phase, task: usize) -> f64 {
        if self.straggler_permille == 0 {
            return 1.0;
        }
        let mut h = self.seed ^ 0x51AC_C01D_F00D_BEEF;
        for b in job.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3);
        }
        let tag = match phase {
            Phase::Map => 0x6d61_7001u64,
            Phase::Reduce => 0x7265_6401u64,
        };
        for x in [tag, task as u64] {
            h = (h ^ x).wrapping_mul(0x1000_0000_01b3);
            h ^= h >> 29;
        }
        if (h % 1000) < u64::from(self.straggler_permille) {
            self.straggler_factor
        } else {
            1.0
        }
    }

    /// Deterministically decides whether this attempt fails.
    pub fn attempt_fails(&self, job: &str, phase: Phase, task: usize, attempt: u32) -> bool {
        if self.fail_permille == 0 {
            return false;
        }
        // Final attempts are allowed to succeed unconditionally so a finite
        // retry budget always converges; real Hadoop kills the job instead,
        // which would make every failure-injection test flaky by design.
        if attempt + 1 >= self.max_attempts {
            return false;
        }
        let mut h = self.seed ^ 0xcbf2_9ce4_8422_2325;
        for b in job.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3);
        }
        let tag = match phase {
            Phase::Map => 0x6d61_7000u64,
            Phase::Reduce => 0x7265_6400u64,
        };
        for x in [tag, task as u64, u64::from(attempt)] {
            h = (h ^ x).wrapping_mul(0x1000_0000_01b3);
            h ^= h >> 29;
        }
        (h % 1000) < u64::from(self.fail_permille)
    }

    /// Number of attempts task `task` will use under this configuration
    /// (at least 1, at most `max_attempts`).
    pub fn attempts_used(&self, job: &str, phase: Phase, task: usize) -> u32 {
        let mut attempt = 0;
        while self.attempt_fails(job, phase, task, attempt) {
            attempt += 1;
        }
        attempt + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_never_fails() {
        let f = FailureConfig::none();
        for t in 0..100 {
            assert!(!f.attempt_fails("job", Phase::Map, t, 0));
            assert_eq!(f.attempts_used("job", Phase::Map, t), 1);
        }
    }

    #[test]
    fn decision_is_deterministic() {
        let f = FailureConfig::with_rate(300, 42);
        for t in 0..50 {
            for a in 0..4 {
                assert_eq!(
                    f.attempt_fails("j", Phase::Reduce, t, a),
                    f.attempt_fails("j", Phase::Reduce, t, a)
                );
            }
        }
    }

    #[test]
    fn rate_is_roughly_respected() {
        let f = FailureConfig::with_rate(300, 7);
        let failures = (0..10_000)
            .filter(|&t| f.attempt_fails("j", Phase::Map, t, 0))
            .count();
        assert!(
            (2400..3600).contains(&failures),
            "expected ~3000 failures, got {failures}"
        );
    }

    #[test]
    fn attempts_bounded_by_budget() {
        let f = FailureConfig {
            fail_permille: 900,
            max_attempts: 4,
            seed: 1,
            ..FailureConfig::none()
        };
        for t in 0..1000 {
            let used = f.attempts_used("j", Phase::Map, t);
            assert!((1..=4).contains(&used), "task {t} used {used}");
        }
    }

    #[test]
    fn final_attempt_always_succeeds() {
        let f = FailureConfig {
            fail_permille: 999,
            max_attempts: 2,
            seed: 3,
            ..FailureConfig::none()
        };
        for t in 0..100 {
            assert!(!f.attempt_fails("j", Phase::Map, t, 1));
        }
    }

    #[test]
    fn phases_and_jobs_draw_independently() {
        let f = FailureConfig::with_rate(500, 9);
        let map_pattern: Vec<bool> = (0..200)
            .map(|t| f.attempt_fails("a", Phase::Map, t, 0))
            .collect();
        let red_pattern: Vec<bool> = (0..200)
            .map(|t| f.attempt_fails("a", Phase::Reduce, t, 0))
            .collect();
        let other_job: Vec<bool> = (0..200)
            .map(|t| f.attempt_fails("b", Phase::Map, t, 0))
            .collect();
        assert_ne!(map_pattern, red_pattern);
        assert_ne!(map_pattern, other_job);
    }

    #[test]
    #[should_panic(expected = "never succeed")]
    fn full_rate_rejected() {
        let _ = FailureConfig::with_rate(1000, 0);
    }

    #[test]
    fn straggler_multiplier_is_deterministic_and_rate_bound() {
        let f = FailureConfig::with_stragglers(250, 8.0, 13);
        let slowed = (0..10_000)
            .filter(|&t| f.straggler_multiplier("j", Phase::Map, t) > 1.0)
            .count();
        assert!((2000..3100).contains(&slowed), "got {slowed}");
        for t in 0..100 {
            assert_eq!(
                f.straggler_multiplier("j", Phase::Map, t),
                f.straggler_multiplier("j", Phase::Map, t)
            );
        }
        // healthy config never slows
        let none = FailureConfig::none();
        assert_eq!(none.straggler_multiplier("j", Phase::Reduce, 5), 1.0);
    }

    #[test]
    #[should_panic(expected = "slower, not faster")]
    fn straggler_factor_below_one_rejected() {
        let _ = FailureConfig::with_stragglers(100, 0.5, 0);
    }
}
