//! # mini-mapreduce
//!
//! A from-scratch MapReduce runtime with a deterministic discrete-event
//! cluster simulator — the stand-in for the Hadoop 0.20.2 cluster of the
//! IPDPSW 2012 paper this workspace reproduces.
//!
//! ## Why a simulator
//!
//! The paper's measurements (Figures 5 and 6) come from a physical cluster of
//! 4–32 servers. What those figures actually encode, however, is *work
//! distribution*: how many records each task touches, how many dominance
//! comparisons each stage performs, and how many bytes cross the shuffle.
//! This runtime therefore does two things at once:
//!
//! 1. **Really executes** user map/combine/reduce code in parallel on a
//!    thread pool (crossbeam scoped threads), producing real outputs; and
//! 2. **Accounts simulated time** for every task from instrumented counters
//!    via a calibrated [`cost::CostModel`], then schedules those task
//!    durations onto `N` simulated servers with a discrete-event
//!    [`scheduler`], yielding Map/Shuffle/Reduce phase spans for any cluster
//!    size — including clusters far larger than the host machine.
//!
//! The cost model's constants are Hadoop-era magnitudes (JVM task startup,
//! disk-rate record I/O, LAN-rate shuffle) fixed once in [`cost`] and never
//! tuned per experiment.
//!
//! ## Programming model
//!
//! The classic triple, plus the paper's "middle process":
//!
//! * [`Mapper`](mapper::Mapper) — `record → (key, value)*`
//! * [`Combiner`](mapper::Combiner) — per-map-task, per-key aggregation (how
//!   the paper's *local skyline computation* step slots between Map and
//!   Reduce when run map-side)
//! * [`Reducer`](reducer::Reducer) — `(key, values) → output*`
//!
//! Jobs are described by a [`JobSpec`](runtime::JobSpec) and executed with
//! [`run_job`](runtime::run_job); [`run_job_chain`](runtime::run_job_chain)
//! feeds one job's output into the next and chains their metrics.
//!
//! ```
//! use mini_mapreduce::prelude::*;
//!
//! // word count on a simulated 4-server cluster
//! let docs: Vec<String> = vec![
//!     "angular partitioning of the skyline".into(),
//!     "the skyline of the data space".into(),
//! ];
//! let spec: JobSpec<String, u64> =
//!     JobSpec::new("wordcount", ClusterConfig::new(4)).with_reducers(2);
//! let mapper = |doc: &String, _ctx: &mut TaskContext, out: &mut Emitter<String, u64>| {
//!     for word in doc.split_whitespace() {
//!         out.emit(word.to_string(), 1);
//!     }
//! };
//! let reducer = |word: &String, counts: Vec<u64>, _ctx: &mut TaskContext,
//!                out: &mut Vec<(String, u64)>| {
//!     out.push((word.clone(), counts.iter().sum()));
//! };
//! let result = run_job(&spec, &docs, &mapper, None, &reducer);
//! let totals: std::collections::HashMap<String, u64> =
//!     result.into_outputs().into_iter().collect();
//! assert_eq!(totals["the"], 3);
//! assert_eq!(totals["skyline"], 2);
//! ```
//!
//! ## Fault tolerance
//!
//! Deterministic failure injection ([`task::FailureConfig`]) re-runs failed
//! attempts up to a retry budget (charging simulated time for the wasted
//! attempts), and the scheduler models Hadoop-style speculative execution of
//! straggler tasks.

#![warn(missing_docs)]

pub mod cost;
pub mod dfs;
pub mod mapper;
pub mod metrics;
pub mod pool;
pub mod reducer;
pub mod runtime;
pub mod scheduler;
pub mod shuffle;
pub mod task;
pub mod timeline;
pub mod types;

pub use cost::CostModel;
pub use dfs::{BlockStore, SpillReader, SpillStore};
pub use mapper::{Combiner, Mapper};
pub use metrics::{JobMetrics, PeakMemBytes, PhaseMetrics};
pub use pool::{ExecutorMode, PoolLimit, PoolOverloaded};
pub use reducer::Reducer;
pub use runtime::{run_job, ClusterConfig, JobResult, JobSpec, LocalityConfig, SpillConfig};
pub use scheduler::{
    schedule_phase, schedule_phase_with_locality, PhaseSchedule, SpeculationConfig,
};
pub use shuffle::OwnedMergeFn;
pub use task::FailureConfig;
pub use timeline::render_timeline;
pub use types::{Emitter, TaskContext};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::cost::CostModel;
    pub use crate::mapper::{Combiner, Mapper};
    pub use crate::metrics::{JobMetrics, PhaseMetrics};
    pub use crate::reducer::Reducer;
    pub use crate::runtime::{run_job, ClusterConfig, JobResult, JobSpec, LocalityConfig};
    pub use crate::task::FailureConfig;
    pub use crate::types::{Emitter, TaskContext};
}
