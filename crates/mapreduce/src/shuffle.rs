//! The shuffle: routing intermediate pairs from map tasks to reduce tasks
//! and grouping them by key.

use crate::types::{DataT, KeyT};
use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::Hasher;
use std::sync::Arc;

/// Routes a key to one of `reducers` reduce tasks. Jobs may install a custom
/// router (e.g. "partition id modulo reducers" to keep routing transparent);
/// the default hashes the key.
pub type KeyRouter<K> = Arc<dyn Fn(&K, usize) -> usize + Send + Sync>;

/// The default router: stable hash of the key modulo the reducer count.
pub fn default_router<K: KeyT>() -> KeyRouter<K> {
    Arc::new(|key: &K, reducers: usize| {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() % reducers as u64) as usize
    })
}

/// Merges the routed value `incoming` into the accumulated value `acc` by
/// ownership transfer during the shuffle. Returning `None` means `incoming`
/// was absorbed (its buffers moved into `acc`); returning `Some(incoming)`
/// hands it back to be kept as a separate value — the row-shuffle behaviour.
///
/// The skyline pipeline installs a [`PointBlock`]-appending merge here so
/// whole flat coordinate buffers move from map output to reduce input with a
/// single `Vec::append`, instead of being re-materialized per row by the
/// reducer.
pub type OwnedMergeFn<V> = Arc<dyn Fn(&mut V, V) -> Option<V> + Send + Sync>;

/// Output of the shuffle for a single reduce task.
#[derive(Debug, Clone)]
pub struct ReduceInput<K, V> {
    /// Key groups in sorted key order, each with its full value list. Values
    /// keep (map-task index, emission order), making jobs deterministic.
    /// Under an [`OwnedMergeFn`] consecutive values are merged by ownership,
    /// so a group usually holds a single concatenated value.
    pub groups: Vec<(K, Vec<V>)>,
    /// Bytes fetched by this reduce task.
    pub bytes: u64,
    /// Number of map tasks that contributed at least one pair (fetch
    /// segments for the latency model).
    pub segments: u64,
    /// Pairs routed to this reduce task *before* any owned merge — the
    /// honest shuffle-record count regardless of how values were packed.
    pub records: u64,
    /// Indices of the map tasks that contributed at least one pair, in
    /// ascending order. `sources.len() == segments`; kept separately so the
    /// tracer can emit one causal shuffle edge per contributing map task.
    pub sources: Vec<u64>,
}

impl<K, V> Default for ReduceInput<K, V> {
    fn default() -> Self {
        Self {
            groups: Vec::new(),
            bytes: 0,
            segments: 0,
            records: 0,
            sources: Vec::new(),
        }
    }
}

/// Shuffles per-map-task outputs into per-reduce-task inputs.
///
/// `map_outputs[m]` is map task `m`'s pair list with its byte count. Pair
/// bytes are attributed to the receiving reducer proportionally by pair
/// count — exact when all pairs have equal wire size, which holds for the
/// skyline workloads (fixed dimensionality).
pub fn shuffle<K: KeyT, V: DataT>(
    map_outputs: Vec<(Vec<(K, V)>, u64)>,
    reducers: usize,
    router: &KeyRouter<K>,
) -> Vec<ReduceInput<K, V>> {
    shuffle_with(map_outputs, reducers, router, None)
}

/// [`shuffle`] with an optional ownership-transfer merge.
///
/// When `merge` is `Some`, each routed value is offered to the tail value of
/// its key group and absorbed in place (for the skyline jobs: flat
/// `PointBlock` buffers concatenated with `Vec::append`), so the reducer
/// receives one pre-concatenated value per key instead of a shard list. Byte
/// and segment attribution are computed from the routed pairs *before*
/// merging and are therefore identical in both modes, as is
/// [`ReduceInput::records`]. Merge order is (map-task index, emission
/// order) — the same order the row shuffle presents values in — so merged
/// and unmerged runs stay bit-identical downstream.
pub fn shuffle_with<K: KeyT, V: DataT>(
    map_outputs: Vec<(Vec<(K, V)>, u64)>,
    reducers: usize,
    router: &KeyRouter<K>,
    merge: Option<&OwnedMergeFn<V>>,
) -> Vec<ReduceInput<K, V>> {
    assert!(reducers >= 1, "need at least one reducer");
    let mut grouped: Vec<BTreeMap<K, Vec<V>>> = (0..reducers).map(|_| BTreeMap::new()).collect();
    let mut bytes = vec![0u64; reducers];
    let mut segments = vec![0u64; reducers];
    let mut records = vec![0u64; reducers];
    let mut sources: Vec<Vec<u64>> = vec![Vec::new(); reducers];

    for (m, (pairs, task_bytes)) in map_outputs.into_iter().enumerate() {
        if pairs.is_empty() {
            continue;
        }
        let per_pair = task_bytes as f64 / pairs.len() as f64;
        let mut touched = vec![0u64; reducers];
        for (k, v) in pairs {
            let r = router(&k, reducers);
            assert!(r < reducers, "router returned out-of-range reducer {r}");
            touched[r] += 1;
            let group = grouped[r].entry(k).or_default();
            match (merge, group.last_mut()) {
                (Some(m), Some(acc)) => {
                    if let Some(unmerged) = m(acc, v) {
                        group.push(unmerged);
                    }
                }
                _ => group.push(v),
            }
        }
        for r in 0..reducers {
            if touched[r] > 0 {
                segments[r] += 1;
                bytes[r] += (touched[r] as f64 * per_pair).round() as u64;
                records[r] += touched[r];
                sources[r].push(m as u64);
            }
        }
    }

    let mut sources = sources.into_iter();
    grouped
        .into_iter()
        .enumerate()
        .map(|(r, map)| ReduceInput {
            groups: map.into_iter().collect(),
            bytes: bytes[r],
            segments: segments[r],
            records: records[r],
            sources: sources.next().unwrap_or_default(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn modulo_router() -> KeyRouter<u64> {
        Arc::new(|k: &u64, r: usize| (*k % r as u64) as usize)
    }

    #[test]
    fn groups_by_key_sorted() {
        let map_outputs = vec![
            (vec![(2u64, "a"), (1, "b")], 20),
            (vec![(1u64, "c"), (3, "d")], 20),
        ];
        let out = shuffle(map_outputs, 1, &modulo_router());
        assert_eq!(out.len(), 1);
        let keys: Vec<u64> = out[0].groups.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![1, 2, 3], "sorted key order");
        let ones = &out[0].groups[0].1;
        assert_eq!(ones, &vec!["b", "c"], "map-task order preserved");
    }

    #[test]
    fn routing_respects_router() {
        let map_outputs = vec![(vec![(0u64, 0u8), (1, 0), (2, 0), (3, 0)], 40)];
        let out = shuffle(map_outputs, 2, &modulo_router());
        let keys0: Vec<u64> = out[0].groups.iter().map(|(k, _)| *k).collect();
        let keys1: Vec<u64> = out[1].groups.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys0, vec![0, 2]);
        assert_eq!(keys1, vec![1, 3]);
    }

    #[test]
    fn bytes_attributed_proportionally() {
        // 4 pairs, 100 bytes → 25 bytes/pair; reducer 0 gets 3, reducer 1 gets 1
        let map_outputs = vec![(vec![(0u64, ()), (2, ()), (4, ()), (1, ())], 100)];
        let out = shuffle(map_outputs, 2, &modulo_router());
        assert_eq!(out[0].bytes, 75);
        assert_eq!(out[1].bytes, 25);
        assert_eq!(out[0].segments, 1);
    }

    #[test]
    fn segments_count_contributing_map_tasks() {
        let map_outputs = vec![
            (vec![(0u64, ())], 10),
            (vec![(0u64, ())], 10),
            (vec![(1u64, ())], 10), // only contributes to reducer 1
        ];
        let out = shuffle(map_outputs, 2, &modulo_router());
        assert_eq!(out[0].segments, 2);
        assert_eq!(out[1].segments, 1);
    }

    #[test]
    fn sources_list_contributing_map_tasks_in_order() {
        let map_outputs = vec![
            (vec![(0u64, ())], 10),
            (vec![(1u64, ())], 10), // contributes only to reducer 1
            (vec![(0u64, ()), (1, ())], 20),
        ];
        let out = shuffle(map_outputs, 2, &modulo_router());
        assert_eq!(out[0].sources, vec![0, 2]);
        assert_eq!(out[1].sources, vec![1, 2]);
        for r in &out {
            assert_eq!(
                r.sources.len() as u64,
                r.segments,
                "sources mirror segments"
            );
        }
    }

    #[test]
    fn empty_map_outputs() {
        let out: Vec<ReduceInput<u64, ()>> = shuffle(vec![], 3, &modulo_router());
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|r| r.groups.is_empty() && r.bytes == 0));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn every_pair_routed_exactly_once(
                tasks in proptest::collection::vec(
                    proptest::collection::vec(0u64..20, 0..30),
                    0..6,
                ),
                reducers in 1usize..6,
            ) {
                let total_pairs: usize = tasks.iter().map(Vec::len).sum();
                let map_outputs: Vec<(Vec<(u64, u64)>, u64)> = tasks
                    .iter()
                    .map(|keys| {
                        let pairs: Vec<(u64, u64)> =
                            keys.iter().map(|&k| (k, k * 100)).collect();
                        let bytes = pairs.len() as u64 * 16;
                        (pairs, bytes)
                    })
                    .collect();
                let out = shuffle(map_outputs, reducers, &default_router::<u64>());
                prop_assert_eq!(out.len(), reducers);
                let routed: usize = out
                    .iter()
                    .flat_map(|r| r.groups.iter().map(|(_, v)| v.len()))
                    .sum();
                prop_assert_eq!(routed, total_pairs, "pairs conserved");
                // each key appears in exactly one reducer
                let mut seen = std::collections::HashMap::new();
                for (r, ri) in out.iter().enumerate() {
                    for (k, _) in &ri.groups {
                        prop_assert!(
                            seen.insert(*k, r).is_none(),
                            "key {} in two reducers", k
                        );
                    }
                }
                // keys sorted within each reducer
                for ri in &out {
                    for w in ri.groups.windows(2) {
                        prop_assert!(w[0].0 < w[1].0);
                    }
                }
            }

            #[test]
            fn byte_attribution_approximately_conserved(
                sizes in proptest::collection::vec(1usize..40, 1..5),
                reducers in 1usize..5,
            ) {
                let map_outputs: Vec<(Vec<(u64, ())>, u64)> = sizes
                    .iter()
                    .enumerate()
                    .map(|(t, &n)| {
                        let pairs: Vec<(u64, ())> =
                            (0..n).map(|i| ((t * 100 + i) as u64, ())).collect();
                        (pairs, n as u64 * 24)
                    })
                    .collect();
                let total_bytes: u64 = map_outputs.iter().map(|(_, b)| *b).sum();
                let out = shuffle(map_outputs, reducers, &default_router::<u64>());
                let routed_bytes: u64 = out.iter().map(|r| r.bytes).sum();
                // rounding per (task, reducer) segment: off by at most one
                // byte per segment
                let segments: u64 = out.iter().map(|r| r.segments).sum();
                prop_assert!(
                    routed_bytes.abs_diff(total_bytes) <= segments,
                    "{} vs {}", routed_bytes, total_bytes
                );
            }
        }
    }

    /// Owned merge over `Vec<u64>` values: absorb by append, the same shape
    /// the skyline pipeline uses for `PointBlock` buffers.
    fn vec_merge() -> OwnedMergeFn<Vec<u64>> {
        Arc::new(|acc: &mut Vec<u64>, mut v: Vec<u64>| {
            acc.append(&mut v);
            None
        })
    }

    #[test]
    fn owned_merge_concatenates_in_row_order() {
        let map_outputs = vec![
            (vec![(1u64, vec![10u64, 11]), (2, vec![20])], 24),
            (vec![(1u64, vec![12])], 8),
        ];
        let merged = shuffle_with(map_outputs.clone(), 1, &modulo_router(), Some(&vec_merge()));
        let rows = shuffle(map_outputs, 1, &modulo_router());
        // one concatenated value per key, in (map task, emission) order
        assert_eq!(merged[0].groups[0].0, 1);
        assert_eq!(merged[0].groups[0].1, vec![vec![10, 11, 12]]);
        assert_eq!(merged[0].groups[1].1, vec![vec![20]]);
        // the row shuffle sees the same rows as separate shards
        let flat: Vec<u64> = rows[0].groups[0].1.iter().flatten().copied().collect();
        assert_eq!(flat, vec![10, 11, 12]);
        // accounting identical in both modes
        assert_eq!(merged[0].bytes, rows[0].bytes);
        assert_eq!(merged[0].segments, rows[0].segments);
        assert_eq!(merged[0].records, rows[0].records);
        assert_eq!(merged[0].records, 3, "pre-merge routed pair count");
    }

    #[test]
    fn merge_can_decline_and_keep_values_separate() {
        // a merge that refuses to cross a capacity boundary of 2 rows
        let bounded: OwnedMergeFn<Vec<u64>> = Arc::new(|acc, mut v| {
            if acc.len() + v.len() > 2 {
                Some(v)
            } else {
                acc.append(&mut v);
                None
            }
        });
        let map_outputs = vec![(vec![(0u64, vec![1]), (0, vec![2]), (0, vec![3])], 24)];
        let out = shuffle_with(map_outputs, 1, &modulo_router(), Some(&bounded));
        assert_eq!(out[0].groups[0].1, vec![vec![1, 2], vec![3]]);
        assert_eq!(out[0].records, 3);
    }

    #[test]
    fn records_counts_routed_pairs() {
        let map_outputs = vec![
            (vec![(0u64, ()), (1, ()), (2, ())], 30),
            (vec![(0u64, ())], 10),
        ];
        let out = shuffle(map_outputs, 2, &modulo_router());
        assert_eq!(out[0].records, 3);
        assert_eq!(out[1].records, 1);
    }

    mod merge_properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// The owned merge is a pure repacking: flattening its groups
            /// gives exactly the row shuffle's value stream, and the
            /// bytes/segments/records attribution is unchanged.
            #[test]
            fn owned_merge_is_equivalent_to_row_shuffle(
                tasks in proptest::collection::vec(
                    proptest::collection::vec((0u64..10, 0u64..1000), 0..30),
                    0..6,
                ),
                reducers in 1usize..6,
            ) {
                type TaskOutput = (Vec<(u64, Vec<u64>)>, u64);
                let map_outputs: Vec<TaskOutput> = tasks
                    .iter()
                    .map(|pairs| {
                        let pairs: Vec<(u64, Vec<u64>)> = pairs
                            .iter()
                            .map(|&(k, v)| (k, vec![v, v + 1]))
                            .collect();
                        let bytes = pairs.len() as u64 * 24;
                        (pairs, bytes)
                    })
                    .collect();
                let rows = shuffle(map_outputs.clone(), reducers, &default_router::<u64>());
                let merged = shuffle_with(
                    map_outputs, reducers, &default_router::<u64>(), Some(&vec_merge()));
                prop_assert_eq!(rows.len(), merged.len());
                for (a, b) in rows.iter().zip(merged.iter()) {
                    prop_assert_eq!(a.bytes, b.bytes);
                    prop_assert_eq!(a.segments, b.segments);
                    prop_assert_eq!(a.records, b.records);
                    prop_assert_eq!(a.groups.len(), b.groups.len());
                    for ((ka, vsa), (kb, vsb)) in a.groups.iter().zip(b.groups.iter()) {
                        prop_assert_eq!(ka, kb);
                        prop_assert_eq!(vsb.len(), usize::from(!vsa.is_empty()),
                            "full absorption leaves at most one value");
                        let flat_a: Vec<u64> = vsa.iter().flatten().copied().collect();
                        let flat_b: Vec<u64> = vsb.iter().flatten().copied().collect();
                        prop_assert_eq!(flat_a, flat_b, "row order preserved");
                    }
                }
            }
        }
    }

    #[test]
    fn default_router_is_stable_and_in_range() {
        let router = default_router::<String>();
        for s in ["a", "b", "longer-key", ""] {
            let r1 = router(&s.to_string(), 7);
            let r2 = router(&s.to_string(), 7);
            assert_eq!(r1, r2);
            assert!(r1 < 7);
        }
    }
}
