//! The shuffle: routing intermediate pairs from map tasks to reduce tasks
//! and grouping them by key.

use crate::types::{DataT, KeyT};
use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::Hasher;
use std::sync::Arc;

/// Routes a key to one of `reducers` reduce tasks. Jobs may install a custom
/// router (e.g. "partition id modulo reducers" to keep routing transparent);
/// the default hashes the key.
pub type KeyRouter<K> = Arc<dyn Fn(&K, usize) -> usize + Send + Sync>;

/// The default router: stable hash of the key modulo the reducer count.
pub fn default_router<K: KeyT>() -> KeyRouter<K> {
    Arc::new(|key: &K, reducers: usize| {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() % reducers as u64) as usize
    })
}

/// Output of the shuffle for a single reduce task.
#[derive(Debug, Clone)]
pub struct ReduceInput<K, V> {
    /// Key groups in sorted key order, each with its full value list. Values
    /// keep (map-task index, emission order), making jobs deterministic.
    pub groups: Vec<(K, Vec<V>)>,
    /// Bytes fetched by this reduce task.
    pub bytes: u64,
    /// Number of map tasks that contributed at least one pair (fetch
    /// segments for the latency model).
    pub segments: u64,
}

impl<K, V> Default for ReduceInput<K, V> {
    fn default() -> Self {
        Self {
            groups: Vec::new(),
            bytes: 0,
            segments: 0,
        }
    }
}

/// Shuffles per-map-task outputs into per-reduce-task inputs.
///
/// `map_outputs[m]` is map task `m`'s pair list with its byte count. Pair
/// bytes are attributed to the receiving reducer proportionally by pair
/// count — exact when all pairs have equal wire size, which holds for the
/// skyline workloads (fixed dimensionality).
pub fn shuffle<K: KeyT, V: DataT>(
    map_outputs: Vec<(Vec<(K, V)>, u64)>,
    reducers: usize,
    router: &KeyRouter<K>,
) -> Vec<ReduceInput<K, V>> {
    assert!(reducers >= 1, "need at least one reducer");
    let mut grouped: Vec<BTreeMap<K, Vec<V>>> = (0..reducers).map(|_| BTreeMap::new()).collect();
    let mut bytes = vec![0u64; reducers];
    let mut segments = vec![0u64; reducers];

    for (pairs, task_bytes) in map_outputs {
        if pairs.is_empty() {
            continue;
        }
        let per_pair = task_bytes as f64 / pairs.len() as f64;
        let mut touched = vec![0u64; reducers];
        for (k, v) in pairs {
            let r = router(&k, reducers);
            assert!(r < reducers, "router returned out-of-range reducer {r}");
            touched[r] += 1;
            grouped[r].entry(k).or_default().push(v);
        }
        for r in 0..reducers {
            if touched[r] > 0 {
                segments[r] += 1;
                bytes[r] += (touched[r] as f64 * per_pair).round() as u64;
            }
        }
    }

    grouped
        .into_iter()
        .enumerate()
        .map(|(r, map)| ReduceInput {
            groups: map.into_iter().collect(),
            bytes: bytes[r],
            segments: segments[r],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn modulo_router() -> KeyRouter<u64> {
        Arc::new(|k: &u64, r: usize| (*k % r as u64) as usize)
    }

    #[test]
    fn groups_by_key_sorted() {
        let map_outputs = vec![
            (vec![(2u64, "a"), (1, "b")], 20),
            (vec![(1u64, "c"), (3, "d")], 20),
        ];
        let out = shuffle(map_outputs, 1, &modulo_router());
        assert_eq!(out.len(), 1);
        let keys: Vec<u64> = out[0].groups.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![1, 2, 3], "sorted key order");
        let ones = &out[0].groups[0].1;
        assert_eq!(ones, &vec!["b", "c"], "map-task order preserved");
    }

    #[test]
    fn routing_respects_router() {
        let map_outputs = vec![(vec![(0u64, 0u8), (1, 0), (2, 0), (3, 0)], 40)];
        let out = shuffle(map_outputs, 2, &modulo_router());
        let keys0: Vec<u64> = out[0].groups.iter().map(|(k, _)| *k).collect();
        let keys1: Vec<u64> = out[1].groups.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys0, vec![0, 2]);
        assert_eq!(keys1, vec![1, 3]);
    }

    #[test]
    fn bytes_attributed_proportionally() {
        // 4 pairs, 100 bytes → 25 bytes/pair; reducer 0 gets 3, reducer 1 gets 1
        let map_outputs = vec![(vec![(0u64, ()), (2, ()), (4, ()), (1, ())], 100)];
        let out = shuffle(map_outputs, 2, &modulo_router());
        assert_eq!(out[0].bytes, 75);
        assert_eq!(out[1].bytes, 25);
        assert_eq!(out[0].segments, 1);
    }

    #[test]
    fn segments_count_contributing_map_tasks() {
        let map_outputs = vec![
            (vec![(0u64, ())], 10),
            (vec![(0u64, ())], 10),
            (vec![(1u64, ())], 10), // only contributes to reducer 1
        ];
        let out = shuffle(map_outputs, 2, &modulo_router());
        assert_eq!(out[0].segments, 2);
        assert_eq!(out[1].segments, 1);
    }

    #[test]
    fn empty_map_outputs() {
        let out: Vec<ReduceInput<u64, ()>> = shuffle(vec![], 3, &modulo_router());
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|r| r.groups.is_empty() && r.bytes == 0));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn every_pair_routed_exactly_once(
                tasks in proptest::collection::vec(
                    proptest::collection::vec(0u64..20, 0..30),
                    0..6,
                ),
                reducers in 1usize..6,
            ) {
                let total_pairs: usize = tasks.iter().map(Vec::len).sum();
                let map_outputs: Vec<(Vec<(u64, u64)>, u64)> = tasks
                    .iter()
                    .map(|keys| {
                        let pairs: Vec<(u64, u64)> =
                            keys.iter().map(|&k| (k, k * 100)).collect();
                        let bytes = pairs.len() as u64 * 16;
                        (pairs, bytes)
                    })
                    .collect();
                let out = shuffle(map_outputs, reducers, &default_router::<u64>());
                prop_assert_eq!(out.len(), reducers);
                let routed: usize = out
                    .iter()
                    .flat_map(|r| r.groups.iter().map(|(_, v)| v.len()))
                    .sum();
                prop_assert_eq!(routed, total_pairs, "pairs conserved");
                // each key appears in exactly one reducer
                let mut seen = std::collections::HashMap::new();
                for (r, ri) in out.iter().enumerate() {
                    for (k, _) in &ri.groups {
                        prop_assert!(
                            seen.insert(*k, r).is_none(),
                            "key {} in two reducers", k
                        );
                    }
                }
                // keys sorted within each reducer
                for ri in &out {
                    for w in ri.groups.windows(2) {
                        prop_assert!(w[0].0 < w[1].0);
                    }
                }
            }

            #[test]
            fn byte_attribution_approximately_conserved(
                sizes in proptest::collection::vec(1usize..40, 1..5),
                reducers in 1usize..5,
            ) {
                let map_outputs: Vec<(Vec<(u64, ())>, u64)> = sizes
                    .iter()
                    .enumerate()
                    .map(|(t, &n)| {
                        let pairs: Vec<(u64, ())> =
                            (0..n).map(|i| ((t * 100 + i) as u64, ())).collect();
                        (pairs, n as u64 * 24)
                    })
                    .collect();
                let total_bytes: u64 = map_outputs.iter().map(|(_, b)| *b).sum();
                let out = shuffle(map_outputs, reducers, &default_router::<u64>());
                let routed_bytes: u64 = out.iter().map(|r| r.bytes).sum();
                // rounding per (task, reducer) segment: off by at most one
                // byte per segment
                let segments: u64 = out.iter().map(|r| r.segments).sum();
                prop_assert!(
                    routed_bytes.abs_diff(total_bytes) <= segments,
                    "{} vs {}", routed_bytes, total_bytes
                );
            }
        }
    }

    #[test]
    fn default_router_is_stable_and_in_range() {
        let router = default_router::<String>();
        for s in ["a", "b", "longer-key", ""] {
            let r1 = router(&s.to_string(), 7);
            let r2 = router(&s.to_string(), 7);
            assert_eq!(r1, r2);
            assert!(r1 < 7);
        }
    }
}
