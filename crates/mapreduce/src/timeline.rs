//! ASCII Gantt rendering of phase schedules — makes the discrete-event
//! simulator's decisions visible (waves, stragglers, speculative rescues).

use crate::scheduler::PhaseSchedule;
use std::fmt::Write;

/// Renders `schedule` as one row per slot, time flowing left to right across
/// `width` columns. Task cells show the task index modulo 10; speculative
/// completions are marked with `*` at their end column; idle time is `.`.
///
/// Returns an empty string for an empty schedule.
pub fn render_timeline(schedule: &PhaseSchedule, width: usize) -> String {
    assert!(width >= 10, "need at least 10 columns");
    if schedule.timeline.is_empty() {
        return String::new();
    }
    let slots = schedule.timeline.iter().map(|t| t.slot).max().unwrap_or(0) + 1;
    let span = (schedule.end - schedule.start).max(1e-9);
    let col_of =
        |t: f64| -> usize { (((t - schedule.start) / span) * (width - 1) as f64).round() as usize };

    let mut rows = vec![vec!['.'; width]; slots];
    for task in &schedule.timeline {
        let (c0, c1) = (col_of(task.start), col_of(task.end).max(col_of(task.start)));
        let ch = char::from_digit((task.task % 10) as u32, 10).unwrap_or('?');
        for cell in rows[task.slot].iter_mut().take(c1 + 1).skip(c0) {
            *cell = ch;
        }
        if task.speculative {
            rows[task.slot][c1.min(width - 1)] = '*';
        }
    }

    let mut out = String::new();
    for (slot, row) in rows.iter().enumerate() {
        let _ = writeln!(out, "slot {slot:>3} |{}|", row.iter().collect::<String>());
    }
    // Axis labels carry the phase's absolute start and end timestamps:
    // reduce phases start where the map phase ended, so labelling the right
    // edge with the *span* would misread as an end time.
    let left = format!("{:.1}s", schedule.start);
    let right = format!("{:.1}s", schedule.end);
    let pad = (width + 2).saturating_sub(left.len() + right.len());
    let _ = writeln!(out, "          {left}{}{right}", " ".repeat(pad));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{schedule_phase, SpeculationConfig};

    #[test]
    fn empty_schedule_renders_empty() {
        let s = schedule_phase(&[], 4, 0.0, &SpeculationConfig::default());
        assert!(render_timeline(&s, 40).is_empty());
    }

    #[test]
    fn rows_match_slots_and_waves_are_visible() {
        // 4 unit tasks on 2 slots: 2 waves
        let s = schedule_phase(&[1.0; 4], 2, 0.0, &SpeculationConfig::default());
        let rendered = render_timeline(&s, 40);
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 3, "2 slot rows + axis");
        assert!(lines[0].starts_with("slot   0"));
        // each slot row contains two distinct task digits
        let digits: std::collections::HashSet<char> =
            lines[0].chars().filter(char::is_ascii_digit).collect();
        assert!(digits.len() >= 2, "{rendered}");
    }

    #[test]
    fn speculative_completion_is_marked() {
        let mut durations = vec![1.0; 7];
        durations.push(30.0);
        let s = schedule_phase(&durations, 8, 0.0, &SpeculationConfig::enabled());
        let rendered = render_timeline(&s, 60);
        assert!(rendered.contains('*'), "{rendered}");
    }

    #[test]
    fn axis_shows_span() {
        let s = schedule_phase(&[2.0, 2.0], 2, 0.0, &SpeculationConfig::default());
        let rendered = render_timeline(&s, 40);
        assert!(rendered.contains("0.0s"), "{rendered}");
        assert!(rendered.contains("2.0s"), "{rendered}");
    }

    #[test]
    fn axis_labels_absolute_start_and_end_for_offset_phase() {
        // A reduce-style phase starting at t=100: the axis must read
        // 100.0s..102.0s, not 0s..2.0s (the span).
        let s = schedule_phase(&[1.0, 2.0], 2, 100.0, &SpeculationConfig::default());
        let rendered = render_timeline(&s, 40);
        let axis = rendered.lines().last().unwrap_or("");
        assert!(axis.contains("100.0s"), "{rendered}");
        assert!(axis.contains("102.0s"), "{rendered}");
        assert!(
            axis.trim_start().starts_with("100.0s"),
            "left edge must be the phase start, not 0: {rendered}"
        );
    }

    #[test]
    #[should_panic(expected = "at least 10 columns")]
    fn tiny_width_rejected() {
        let s = schedule_phase(&[1.0], 1, 0.0, &SpeculationConfig::default());
        let _ = render_timeline(&s, 3);
    }
}
