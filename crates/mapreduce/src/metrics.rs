//! Job- and phase-level metrics.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Aggregated counters and simulated timing of one phase (map or reduce).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseMetrics {
    /// Number of tasks in the phase.
    pub tasks: usize,
    /// Total task attempts including failed ones.
    pub attempts: u32,
    /// Input records across tasks.
    pub records_in: u64,
    /// Output records across tasks.
    pub records_out: u64,
    /// Output bytes across tasks (map phase: shuffle bytes produced).
    pub bytes_out: u64,
    /// Algorithm work units across tasks.
    pub work_units: u64,
    /// Simulated phase start (seconds since job submission).
    pub sim_start: f64,
    /// Simulated phase end.
    pub sim_end: f64,
    /// Per-task simulated durations (successful attempt, including retries'
    /// wasted time folded into the task's duration).
    pub task_durations: Vec<f64>,
    /// Speculative backups that won (scheduler model).
    pub speculative_wins: usize,
    /// Tasks that ran on a server holding their input block (only set when
    /// locality-aware scheduling is enabled; otherwise 0).
    pub data_local_tasks: usize,
    /// Named user counters summed across the phase's tasks.
    pub counters: BTreeMap<String, u64>,
}

impl PhaseMetrics {
    /// Simulated span of the phase.
    pub fn sim_span(&self) -> f64 {
        self.sim_end - self.sim_start
    }

    /// Folds another counter map into this phase's counters. Counters are
    /// monotonic, so additions saturate instead of wrapping — a counter
    /// pinned at `u64::MAX` is visibly wrong, an overflowed one silently
    /// small.
    pub fn merge_counters(&mut self, task_counters: &BTreeMap<&'static str, u64>) {
        for (&name, &value) in task_counters {
            let slot = self.counters.entry(name.to_string()).or_insert(0);
            *slot = slot.saturating_add(value);
        }
    }
}

/// High-water marks of the job's resident intermediate data, in logical
/// (wire-accounted) bytes. `map_out` is the peak of buffered map output
/// awaiting the shuffle; `reduce_in` is the peak of shuffled reduce input
/// resident in memory (spilled inputs leave this gauge while they sit on
/// disk and re-enter only while their reduce task runs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeakMemBytes {
    /// Peak resident map-output bytes.
    pub map_out: u64,
    /// Peak resident reduce-input bytes.
    pub reduce_in: u64,
}

impl PeakMemBytes {
    /// Element-wise maximum — the correct combination for jobs that run
    /// back to back (the plateaus do not coexist).
    pub fn max(self, other: PeakMemBytes) -> PeakMemBytes {
        PeakMemBytes {
            map_out: self.map_out.max(other.map_out),
            reduce_in: self.reduce_in.max(other.reduce_in),
        }
    }
}

/// Metrics of a completed job.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct JobMetrics {
    /// Job name (for reports).
    pub name: String,
    /// Map-phase metrics.
    pub map: PhaseMetrics,
    /// Reduce-phase metrics (shuffle time folded into `sim_start`..`sim_end`
    /// via per-task durations, matching Hadoop's copy+sort+reduce reporting).
    pub reduce: PhaseMetrics,
    /// Bytes that crossed the shuffle.
    pub shuffle_bytes: u64,
    /// Fixed job overhead charged by the cost model.
    pub job_overhead: f64,
    /// Simulated end-to-end job time (overhead + map span + reduce span).
    pub sim_total: f64,
    /// Real wall-clock seconds the host spent executing the job.
    pub wall_seconds: f64,
    /// Peak resident intermediate bytes observed during real execution.
    #[serde(default)]
    pub peak_mem: PeakMemBytes,
}

impl JobMetrics {
    /// Adds another job's metrics (for job chains), concatenating phase
    /// spans: the chained job starts when this one ends.
    ///
    /// # Inter-job gap convention
    ///
    /// The chained result keeps *this* job's `sim_start` on both phases and
    /// extends each `sim_end` by `next`'s phase span, so the second job's
    /// own clock (which restarts at 0) and any inter-job gap — the second
    /// job's submission overhead, and reduce-to-map turnaround — are **not**
    /// represented inside the phase windows. The gap is carried only by
    /// `sim_total`, which sums both jobs' overhead-inclusive totals; phase
    /// windows answer "how much time was spent mapping/reducing", not
    /// "when". Consequently `sim_span` is additive:
    /// `chained.map.sim_span() == a.map.sim_span() + b.map.sim_span()`
    /// (and likewise for reduce) — asserted by a property test below.
    pub fn chain(&self, next: &JobMetrics) -> JobMetrics {
        let mut out = self.clone();
        out.name = format!("{}+{}", self.name, next.name);
        out.map.tasks += next.map.tasks;
        out.map.attempts += next.map.attempts;
        out.map.records_in += next.map.records_in;
        out.map.records_out += next.map.records_out;
        out.map.bytes_out += next.map.bytes_out;
        out.map.work_units += next.map.work_units;
        out.map.sim_end += next.map.sim_span();
        out.map
            .task_durations
            .extend_from_slice(&next.map.task_durations);
        out.map.speculative_wins += next.map.speculative_wins;
        out.map.data_local_tasks += next.map.data_local_tasks;
        for (name, value) in &next.map.counters {
            let slot = out.map.counters.entry(name.clone()).or_insert(0);
            *slot = slot.saturating_add(*value);
        }
        out.reduce.tasks += next.reduce.tasks;
        out.reduce.attempts += next.reduce.attempts;
        out.reduce.records_in += next.reduce.records_in;
        out.reduce.records_out += next.reduce.records_out;
        out.reduce.bytes_out += next.reduce.bytes_out;
        out.reduce.work_units += next.reduce.work_units;
        out.reduce.sim_end += next.reduce.sim_span();
        out.reduce
            .task_durations
            .extend_from_slice(&next.reduce.task_durations);
        out.reduce.speculative_wins += next.reduce.speculative_wins;
        out.reduce.data_local_tasks += next.reduce.data_local_tasks;
        for (name, value) in &next.reduce.counters {
            let slot = out.reduce.counters.entry(name.clone()).or_insert(0);
            *slot = slot.saturating_add(*value);
        }
        out.shuffle_bytes += next.shuffle_bytes;
        out.job_overhead += next.job_overhead;
        out.sim_total += next.sim_total;
        out.wall_seconds += next.wall_seconds;
        out.peak_mem = out.peak_mem.max(next.peak_mem);
        out
    }

    /// Like [`JobMetrics::chain`], but credits `overlap_seconds` of the next
    /// job's execution as concurrent with this one: a streaming merge that
    /// starts consuming reduce outputs before the reduce barrier spends that
    /// much of the second job's time *inside* the first job's window, so the
    /// chained `sim_total` is reduced by the overlap (clamped so the next
    /// job's contribution never goes negative). Everything else — counters,
    /// phase spans, shuffle bytes — is plain accumulation, identical to
    /// `chain`; `chain_overlapped(next, 0.0)` *is* `chain(next)`.
    pub fn chain_overlapped(&self, next: &JobMetrics, overlap_seconds: f64) -> JobMetrics {
        let mut out = self.chain(next);
        let credit = overlap_seconds.max(0.0).min(next.sim_total);
        out.sim_total -= credit;
        out
    }

    /// Total simulated time attributed to the Map side of the pipeline
    /// (the "Map Time" bars of Figure 6).
    pub fn map_time(&self) -> f64 {
        self.map.sim_span()
    }

    /// Total simulated time attributed to the Reduce side (shuffle + merge —
    /// the "Reduce Time" bars of Figure 6).
    pub fn reduce_time(&self) -> f64 {
        self.reduce.sim_span()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phase(span: f64, tasks: usize) -> PhaseMetrics {
        PhaseMetrics {
            tasks,
            attempts: tasks as u32,
            records_in: 10,
            records_out: 5,
            bytes_out: 100,
            work_units: 50,
            sim_start: 0.0,
            sim_end: span,
            task_durations: vec![span / tasks.max(1) as f64; tasks],
            speculative_wins: 0,
            data_local_tasks: 0,
            counters: BTreeMap::new(),
        }
    }

    #[test]
    fn spans() {
        let p = phase(4.0, 2);
        assert_eq!(p.sim_span(), 4.0);
    }

    #[test]
    fn chain_adds_components() {
        let a = JobMetrics {
            name: "first".into(),
            map: phase(2.0, 2),
            reduce: phase(3.0, 1),
            shuffle_bytes: 100,
            job_overhead: 4.0,
            sim_total: 9.0,
            wall_seconds: 0.1,
            peak_mem: PeakMemBytes {
                map_out: 10,
                reduce_in: 30,
            },
        };
        let b = JobMetrics {
            name: "second".into(),
            map: phase(1.0, 1),
            reduce: phase(1.5, 1),
            shuffle_bytes: 50,
            job_overhead: 4.0,
            sim_total: 6.5,
            wall_seconds: 0.2,
            peak_mem: PeakMemBytes {
                map_out: 20,
                reduce_in: 15,
            },
        };
        let c = a.chain(&b);
        assert_eq!(c.name, "first+second");
        assert_eq!(c.map.tasks, 3);
        assert!((c.map_time() - 3.0).abs() < 1e-12);
        assert!((c.reduce_time() - 4.5).abs() < 1e-12);
        assert_eq!(c.shuffle_bytes, 150);
        assert!((c.sim_total - 15.5).abs() < 1e-12);
        assert!((c.wall_seconds - 0.3).abs() < 1e-12);
        assert_eq!(c.map.task_durations.len(), 3);
        // sequential jobs: peaks combine element-wise by max, not by sum
        assert_eq!(
            c.peak_mem,
            PeakMemBytes {
                map_out: 20,
                reduce_in: 30
            }
        );
    }

    #[test]
    fn merge_counters_empty_is_identity() {
        let mut p = phase(1.0, 1);
        p.counters.insert("kept".into(), 7);
        let before = p.counters.clone();
        p.merge_counters(&BTreeMap::new());
        assert_eq!(p.counters, before);
    }

    #[test]
    fn merge_counters_overlapping_and_new_keys() {
        let mut p = phase(1.0, 1);
        p.counters.insert("shared".into(), 10);
        let mut task: BTreeMap<&'static str, u64> = BTreeMap::new();
        task.insert("shared", 5);
        task.insert("fresh", 2);
        p.merge_counters(&task);
        assert_eq!(p.counters["shared"], 15);
        assert_eq!(p.counters["fresh"], 2);
        // merging twice keeps accumulating
        p.merge_counters(&task);
        assert_eq!(p.counters["shared"], 20);
        assert_eq!(p.counters["fresh"], 4);
    }

    #[test]
    fn merge_counters_saturates_instead_of_wrapping() {
        let mut p = phase(1.0, 1);
        p.counters.insert("big".into(), u64::MAX - 1);
        let mut task: BTreeMap<&'static str, u64> = BTreeMap::new();
        task.insert("big", 100);
        p.merge_counters(&task);
        assert_eq!(p.counters["big"], u64::MAX);
    }

    #[test]
    fn chain_counters_saturate() {
        let mut a = JobMetrics {
            name: "a".into(),
            map: phase(1.0, 1),
            reduce: phase(1.0, 1),
            shuffle_bytes: 0,
            job_overhead: 0.0,
            sim_total: 2.0,
            wall_seconds: 0.0,
            peak_mem: PeakMemBytes::default(),
        };
        a.map.counters.insert("c".into(), u64::MAX);
        let mut b = a.clone();
        b.map.counters.insert("c".into(), 1);
        let chained = a.chain(&b);
        assert_eq!(chained.map.counters["c"], u64::MAX);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_phase() -> impl Strategy<Value = PhaseMetrics> {
            (0.0f64..1000.0, 0.0f64..500.0, 1usize..20).prop_map(|(start, span, tasks)| {
                PhaseMetrics {
                    tasks,
                    attempts: tasks as u32,
                    records_in: 1,
                    records_out: 1,
                    bytes_out: 1,
                    work_units: 1,
                    sim_start: start,
                    sim_end: start + span,
                    task_durations: vec![span / tasks as f64; tasks],
                    speculative_wins: 0,
                    data_local_tasks: 0,
                    counters: BTreeMap::new(),
                }
            })
        }

        fn arb_job(name: &'static str) -> impl Strategy<Value = JobMetrics> {
            (arb_phase(), arb_phase(), 0.0f64..10.0).prop_map(move |(map, reduce, overhead)| {
                let sim_total = overhead + map.sim_span() + reduce.sim_span();
                JobMetrics {
                    name: name.to_string(),
                    map,
                    reduce,
                    shuffle_bytes: 10,
                    job_overhead: overhead,
                    sim_total,
                    wall_seconds: 0.0,
                    peak_mem: PeakMemBytes::default(),
                }
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            // The documented inter-job gap convention: phase windows absorb
            // only the next job's *span*, so sim_span is exactly additive
            // regardless of either job's sim_start offsets or overheads.
            #[test]
            fn chain_sim_span_is_additive(a in arb_job("a"), b in arb_job("b")) {
                let c = a.chain(&b);
                prop_assert!(
                    (c.map.sim_span() - (a.map.sim_span() + b.map.sim_span())).abs() < 1e-9
                );
                prop_assert!(
                    (c.reduce.sim_span() - (a.reduce.sim_span() + b.reduce.sim_span())).abs()
                        < 1e-9
                );
                // sim_start stays the first job's; the gap lives in sim_total only.
                prop_assert_eq!(c.map.sim_start, a.map.sim_start);
                prop_assert!((c.sim_total - (a.sim_total + b.sim_total)).abs() < 1e-9);
            }

            // Overlap credit only moves sim_total, is clamped to the next
            // job's total, and a zero overlap degenerates to plain chain.
            #[test]
            fn chain_overlapped_credits_sim_total_only(
                a in arb_job("a"),
                b in arb_job("b"),
                overlap in -5.0f64..2000.0,
            ) {
                let plain = a.chain(&b);
                let lapped = a.chain_overlapped(&b, overlap);
                let credit = overlap.max(0.0).min(b.sim_total);
                prop_assert!((lapped.sim_total - (plain.sim_total - credit)).abs() < 1e-9);
                prop_assert!(lapped.sim_total >= a.sim_total - 1e-9, "next job never negative");
                // everything but sim_total matches plain chaining
                let mut normalized = lapped.clone();
                normalized.sim_total = plain.sim_total;
                prop_assert_eq!(normalized, plain);
                // zero overlap is exactly chain()
                prop_assert_eq!(a.chain_overlapped(&b, 0.0), plain);
            }
        }
    }
}
