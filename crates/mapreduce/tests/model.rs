//! Model checks of the real `pool::run_indexed` cursor/slot handoff.
//! Compiled only with `RUSTFLAGS="--cfg mrsky_model"` (the CI
//! `model-check` job), where the sync facade is instrumented.
#![cfg(mrsky_model)]

use mini_mapreduce::pool::run_indexed;
use mrsky_model::{check_opts, CheckOptions};

fn opts() -> CheckOptions {
    CheckOptions {
        preemption_bound: 2,
        random_walks: 8,
        max_iterations: 5_000,
        ..CheckOptions::default()
    }
}

/// Every task index must be handed out exactly once and land in its
/// own slot, in order, on every explored schedule.
#[test]
fn model_pool_handoff_no_lost_results_no_double_execution() {
    let report = check_opts(&opts(), || {
        let executed = [
            mrsky_model::sync::AtomicUsize::new(0),
            mrsky_model::sync::AtomicUsize::new(0),
            mrsky_model::sync::AtomicUsize::new(0),
        ];
        let out = run_indexed(3, 2, |i| {
            executed[i].fetch_add(1, mrsky_model::sync::Ordering::Relaxed);
            i * 10
        });
        assert_eq!(out, vec![0, 10, 20], "results lost or misplaced");
        for (i, count) in executed.iter().enumerate() {
            assert_eq!(
                count.load(mrsky_model::sync::Ordering::Relaxed),
                1,
                "task {i} must run exactly once"
            );
        }
    });
    assert!(report.executions > 1, "the pool really branched");
}
