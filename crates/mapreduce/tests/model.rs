//! Model checks of the real `pool::run_indexed` deque handoff.
//! Compiled only with `RUSTFLAGS="--cfg mrsky_model"` (the CI
//! `model-check` job), where the sync facade is instrumented.
#![cfg(mrsky_model)]

use mini_mapreduce::pool::{run_indexed, run_indexed_mode, ExecutorMode};
use mrsky_model::{check_opts, CheckOptions};

fn opts() -> CheckOptions {
    CheckOptions {
        preemption_bound: 2,
        random_walks: 8,
        max_iterations: 5_000,
        ..CheckOptions::default()
    }
}

/// Every task index must be handed out exactly once and land in its
/// own slot, in order, on every explored schedule.
#[test]
fn model_pool_handoff_no_lost_results_no_double_execution() {
    let report = check_opts(&opts(), || {
        let executed = [
            mrsky_model::sync::AtomicUsize::new(0),
            mrsky_model::sync::AtomicUsize::new(0),
            mrsky_model::sync::AtomicUsize::new(0),
        ];
        let out = run_indexed(3, 2, |i| {
            executed[i].fetch_add(1, mrsky_model::sync::Ordering::Relaxed);
            i * 10
        });
        assert_eq!(out, vec![0, 10, 20], "results lost or misplaced");
        for (i, count) in executed.iter().enumerate() {
            assert_eq!(
                count.load(mrsky_model::sync::Ordering::Relaxed),
                1,
                "task {i} must run exactly once"
            );
        }
    });
    assert!(report.executions > 1, "the pool really branched");
}

/// The work-stealing deques under an uneven seed: 4 tasks on 3 workers
/// leaves worker 0 with two tasks, so some schedules make workers 1/2 go
/// dry and steal from worker 0's back while it pops its own front. No
/// interleaving may lose a task, run one twice, or misplace a slot.
#[test]
fn model_stealing_deque_no_lost_or_duplicated_tasks() {
    let report = check_opts(&opts(), || {
        let executed: Vec<mrsky_model::sync::AtomicUsize> = (0..4)
            .map(|_| mrsky_model::sync::AtomicUsize::new(0))
            .collect();
        let out = run_indexed_mode(4, 3, ExecutorMode::WorkStealing, |i| {
            executed[i].fetch_add(1, mrsky_model::sync::Ordering::Relaxed);
            i + 100
        });
        assert_eq!(out, vec![100, 101, 102, 103], "results lost or misplaced");
        for (i, count) in executed.iter().enumerate() {
            assert_eq!(
                count.load(mrsky_model::sync::Ordering::Relaxed),
                1,
                "task {i} must run exactly once"
            );
        }
    });
    assert!(report.executions > 1, "the stealing pool really branched");
}

/// The static baseline under the same model instrumentation: fixed chunks
/// never contend on the deques, but the slot writes still have to land
/// exactly once each.
#[test]
fn model_static_chunks_exact_once() {
    let report = check_opts(&opts(), || {
        let out = run_indexed_mode(3, 2, ExecutorMode::Static, |i| i * 7);
        assert_eq!(out, vec![0, 7, 14]);
    });
    assert!(report.executions >= 1);
}
